//! Ambient ocean noise (Wenz curves).
//!
//! Noise power spectral density at the receiver sets the SNR together with
//! transmission loss. We implement the standard four-component empirical
//! model (turbulence, distant shipping, wind/surface agitation, thermal) in
//! dB re µPa²/Hz, and integrate it over a receiver band to get total noise
//! power.

/// Shipping activity factor for the Wenz shipping component, 0 (none) to
/// 1 (heavy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shipping(f64);

impl Shipping {
    /// Creates a shipping factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= s <= 1.0`.
    pub fn new(s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "shipping factor must be in [0, 1], got {s}"
        );
        Shipping(s)
    }

    /// Moderate shipping (0.5), the usual default in UASN studies.
    pub fn moderate() -> Self {
        Shipping(0.5)
    }

    /// The raw factor.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for Shipping {
    fn default() -> Self {
        Shipping::moderate()
    }
}

/// Wind speed in m/s for the surface-agitation component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindSpeed(f64);

impl WindSpeed {
    /// Creates a wind speed.
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    pub fn new(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "wind speed must be finite and non-negative, got {ms}"
        );
        WindSpeed(ms)
    }

    /// Calm sea state (0 m/s).
    pub fn calm() -> Self {
        WindSpeed(0.0)
    }

    /// The raw speed in m/s.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for WindSpeed {
    fn default() -> Self {
        WindSpeed::new(5.0)
    }
}

/// Ambient noise model combining the four Wenz components.
///
/// # Examples
///
/// ```
/// use uasn_phy::noise::{AmbientNoise, Shipping, WindSpeed};
///
/// let noise = AmbientNoise::new(Shipping::moderate(), WindSpeed::new(5.0));
/// let psd = noise.psd_db(10.0); // at 10 kHz
/// assert!(psd > 20.0 && psd < 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AmbientNoise {
    shipping: Shipping,
    wind: WindSpeed,
}

impl AmbientNoise {
    /// Creates a noise model.
    pub fn new(shipping: Shipping, wind: WindSpeed) -> Self {
        AmbientNoise { shipping, wind }
    }

    /// Noise power spectral density at `f_khz`, in dB re µPa²/Hz.
    ///
    /// Sum (in linear power) of:
    /// - turbulence: `17 − 30 log f`
    /// - shipping: `40 + 20(s − 0.5) + 26 log f − 60 log(f + 0.03)`
    /// - wind: `50 + 7.5 √w + 20 log f − 40 log(f + 0.4)`
    /// - thermal: `−15 + 20 log f`
    ///
    /// # Panics
    ///
    /// Panics if `f_khz` is not finite and positive.
    pub fn psd_db(&self, f_khz: f64) -> f64 {
        assert!(
            f_khz.is_finite() && f_khz > 0.0,
            "frequency must be finite and positive, got {f_khz} kHz"
        );
        let f = f_khz;
        let log_f = f.log10();
        let nt = 17.0 - 30.0 * log_f;
        let ns =
            40.0 + 20.0 * (self.shipping.value() - 0.5) + 26.0 * log_f - 60.0 * (f + 0.03).log10();
        let nw = 50.0 + 7.5 * self.wind.value().sqrt() + 20.0 * log_f - 40.0 * (f + 0.4).log10();
        let nth = -15.0 + 20.0 * log_f;
        let linear = db_to_linear(nt) + db_to_linear(ns) + db_to_linear(nw) + db_to_linear(nth);
        linear_to_db(linear)
    }

    /// Total noise power over a band, in dB re µPa², approximating the PSD
    /// as flat at the band centre: `psd(fc) + 10 log BW`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is not finite and positive.
    pub fn band_level_db(&self, centre_khz: f64, bandwidth_hz: f64) -> f64 {
        assert!(
            bandwidth_hz.is_finite() && bandwidth_hz > 0.0,
            "bandwidth must be finite and positive, got {bandwidth_hz}"
        );
        self.psd_db(centre_khz) + 10.0 * bandwidth_hz.log10()
    }
}

/// dB → linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Linear power ratio → dB.
///
/// # Panics
///
/// Panics if `linear` is not positive.
pub fn linear_to_db(linear: f64) -> f64 {
    assert!(linear > 0.0, "linear power must be positive, got {linear}");
    10.0 * linear.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, 0.0, 3.0, 60.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
        assert!((db_to_linear(3.0) - 1.995).abs() < 0.01);
    }

    #[test]
    fn noise_decreases_through_mid_band() {
        // Between 1 kHz and 50 kHz ambient noise falls with frequency
        // (wind-dominated regime).
        let n = AmbientNoise::default();
        let a = n.psd_db(1.0);
        let b = n.psd_db(10.0);
        let c = n.psd_db(50.0);
        assert!(a > b && b > c, "{a} > {b} > {c} expected");
    }

    #[test]
    fn wind_raises_noise() {
        let calm = AmbientNoise::new(Shipping::moderate(), WindSpeed::calm());
        let storm = AmbientNoise::new(Shipping::moderate(), WindSpeed::new(20.0));
        assert!(storm.psd_db(10.0) > calm.psd_db(10.0));
    }

    #[test]
    fn shipping_raises_low_frequency_noise() {
        let quiet = AmbientNoise::new(Shipping::new(0.0), WindSpeed::calm());
        let busy = AmbientNoise::new(Shipping::new(1.0), WindSpeed::calm());
        // Shipping dominates around a few hundred Hz.
        assert!(busy.psd_db(0.3) > quiet.psd_db(0.3));
    }

    #[test]
    fn plausible_absolute_levels() {
        // Literature: ~10 kHz ambient noise at sea state ~2 is roughly
        // 40–60 dB re µPa²/Hz.
        let n = AmbientNoise::default();
        let psd = n.psd_db(10.0);
        assert!((30.0..70.0).contains(&psd), "10 kHz PSD {psd}");
    }

    #[test]
    fn band_level_adds_bandwidth_term() {
        let n = AmbientNoise::default();
        let psd = n.psd_db(10.0);
        let band = n.band_level_db(10.0, 10_000.0);
        assert!((band - (psd + 40.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_shipping_panics() {
        let _ = Shipping::new(1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bad_wind_panics() {
        let _ = WindSpeed::new(-1.0);
    }
}
