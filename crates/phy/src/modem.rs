//! Half-duplex acoustic modem model.
//!
//! Tracks the radio state of one node (idle-listening, transmitting, or
//! receiving), enforces the paper's antenna constraint — *"a sensor cannot
//! transmit and receive simultaneously"* — and converts packet sizes to
//! transmit durations at the configured bitrate. The reception ledger
//! detects overlapping arrivals (Eq 1 collisions) including partial
//! overlaps, and remembers whether a reception was corrupted by the node's
//! own transmission.

use uasn_sim::time::{SimDuration, SimTime};

/// Radio state of a modem at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModemState {
    /// Listening (the paper: "the antenna remains in the receive state when
    /// it is not transmitting").
    #[default]
    Idle,
    /// Actively transmitting.
    Transmitting,
    /// At least one arrival currently in progress.
    Receiving,
}

/// Identifier for one in-flight reception at a modem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReceptionId(u64);

#[derive(Debug, Clone)]
struct Reception {
    id: u64,
    /// Frames sharing a group are copies of the same transmission
    /// (direct path + multipath echoes): they never corrupt each other.
    group: u64,
    end: SimTime,
    corrupted: bool,
}

/// Link-speed configuration shared by every modem in a network.
///
/// # Examples
///
/// ```
/// use uasn_phy::modem::ModemSpec;
/// use uasn_sim::time::SimDuration;
///
/// // Table 2: 12 kbps, 64-bit control packets.
/// let spec = ModemSpec::new(12_000.0);
/// let omega = spec.tx_duration(64);
/// assert_eq!(omega, SimDuration::from_micros(5_333));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModemSpec {
    bitrate_bps: f64,
}

impl ModemSpec {
    /// Creates a spec at the given bitrate (bits/second).
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_bps` is not finite and positive.
    pub fn new(bitrate_bps: f64) -> Self {
        assert!(
            bitrate_bps.is_finite() && bitrate_bps > 0.0,
            "bitrate must be finite and positive, got {bitrate_bps}"
        );
        ModemSpec { bitrate_bps }
    }

    /// The configured bitrate in bits/second.
    pub fn bitrate_bps(&self) -> f64 {
        self.bitrate_bps
    }

    /// Time to transmit `bits` bits, rounded to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn tx_duration(&self, bits: u32) -> SimDuration {
        assert!(bits > 0, "cannot transmit a zero-bit packet");
        SimDuration::from_secs_f64(bits as f64 / self.bitrate_bps)
    }
}

/// The per-node half-duplex modem: transmit bookkeeping plus a ledger of
/// overlapping receptions.
///
/// The channel calls [`begin_reception`](Modem::begin_reception) /
/// [`end_reception`](Modem::end_reception) for every arriving frame and
/// [`begin_transmit`](Modem::begin_transmit) /
/// [`end_transmit`](Modem::end_transmit) around the node's own
/// transmissions; the modem answers whether each completed reception
/// survived.
///
/// # Examples
///
/// ```
/// use uasn_phy::modem::{Modem, ModemState};
/// use uasn_sim::time::{SimDuration, SimTime};
///
/// let mut modem = Modem::new();
/// let t0 = SimTime::ZERO;
/// let id = modem.begin_reception(t0, t0 + SimDuration::from_millis(100));
/// assert_eq!(modem.state(), ModemState::Receiving);
/// let ok = modem.end_reception(t0 + SimDuration::from_millis(100), id);
/// assert!(ok); // nothing overlapped
/// ```
#[derive(Debug, Clone, Default)]
pub struct Modem {
    transmitting_until: Option<SimTime>,
    receptions: Vec<Reception>,
    next_id: u64,
    collisions: u64,
    half_duplex_losses: u64,
}

impl Modem {
    /// Creates an idle modem.
    pub fn new() -> Self {
        Modem::default()
    }

    /// The radio state right now.
    pub fn state(&self) -> ModemState {
        if self.transmitting_until.is_some() {
            ModemState::Transmitting
        } else if self.receptions.is_empty() {
            ModemState::Idle
        } else {
            ModemState::Receiving
        }
    }

    /// Whether the modem is mid-transmission.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting_until.is_some()
    }

    /// Starts a transmission lasting until `until`.
    ///
    /// Any reception in progress is corrupted (half-duplex).
    ///
    /// # Panics
    ///
    /// Panics if a transmission is already in progress — the MAC layer must
    /// never double-book its own transmitter, so this is a protocol bug.
    pub fn begin_transmit(&mut self, now: SimTime, until: SimTime) {
        assert!(
            self.transmitting_until.is_none(),
            "transmit while already transmitting at {now}"
        );
        assert!(until > now, "transmission must have positive duration");
        for r in &mut self.receptions {
            if !r.corrupted {
                r.corrupted = true;
                self.half_duplex_losses += 1;
            }
        }
        self.transmitting_until = Some(until);
    }

    /// Ends the transmission.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in progress.
    pub fn end_transmit(&mut self, now: SimTime) {
        let until = self
            .transmitting_until
            .take()
            .expect("end_transmit without begin_transmit");
        debug_assert!(now >= until, "transmission ended early");
    }

    /// Registers a frame starting to arrive now and finishing at `end`.
    ///
    /// Marks the collision set: if any other reception is in progress, both
    /// this one and the in-progress ones are corrupted (Eq 1 — two packets
    /// overlapping at a receiver destroy each other). Arriving during the
    /// node's own transmission also corrupts the new arrival.
    pub fn begin_reception(&mut self, now: SimTime, end: SimTime) -> ReceptionId {
        self.begin_reception_grouped(now, end, u64::MAX)
    }

    /// Like [`begin_reception`](Self::begin_reception), but receptions
    /// sharing `group` (≠ `u64::MAX`) are path copies of one transmission —
    /// a direct arrival and its multipath echoes — and do not corrupt each
    /// other, while still corrupting (and being corrupted by) every other
    /// group.
    pub fn begin_reception_grouped(
        &mut self,
        now: SimTime,
        end: SimTime,
        group: u64,
    ) -> ReceptionId {
        assert!(end > now, "reception must have positive duration");
        let mut corrupted = false;
        if self.transmitting_until.is_some() {
            corrupted = true;
            self.half_duplex_losses += 1;
        }
        let clashes = self
            .receptions
            .iter()
            .any(|r| group == u64::MAX || r.group != group);
        if clashes {
            corrupted = true;
            self.collisions += 1;
            for r in &mut self.receptions {
                if !r.corrupted && (group == u64::MAX || r.group != group) {
                    r.corrupted = true;
                    self.collisions += 1;
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.receptions.push(Reception {
            id,
            group,
            end,
            corrupted,
        });
        ReceptionId(id)
    }

    /// Completes a reception; returns `true` if the frame survived (no
    /// overlap with other frames or own transmission for its whole
    /// duration).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not correspond to an in-progress reception.
    pub fn end_reception(&mut self, now: SimTime, id: ReceptionId) -> bool {
        let idx = self
            .receptions
            .iter()
            .position(|r| r.id == id.0)
            .expect("end_reception for unknown reception");
        let r = self.receptions.swap_remove(idx);
        debug_assert!(now >= r.end, "reception completed before its scheduled end");
        !r.corrupted
    }

    /// Marks every in-progress reception corrupted (used for external
    /// interference injection in tests).
    pub fn corrupt_all(&mut self) {
        for r in &mut self.receptions {
            r.corrupted = true;
        }
    }

    /// Number of receptions corrupted by overlapping arrivals so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Number of receptions corrupted by the node's own transmissions.
    pub fn half_duplex_losses(&self) -> u64 {
        self.half_duplex_losses
    }

    /// Number of receptions currently in progress.
    pub fn active_receptions(&self) -> usize {
        self.receptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1_000)
    }

    #[test]
    fn spec_durations_match_table2() {
        let spec = ModemSpec::new(12_000.0);
        // 64-bit control packet: 5.333 ms
        assert_eq!(spec.tx_duration(64).as_micros(), 5_333);
        // 2048-bit data packet: 170.667 ms
        assert_eq!(spec.tx_duration(2_048).as_micros(), 170_667);
    }

    #[test]
    #[should_panic(expected = "zero-bit")]
    fn zero_bit_duration_panics() {
        ModemSpec::new(12_000.0).tx_duration(0);
    }

    #[test]
    fn clean_reception_survives() {
        let mut m = Modem::new();
        let id = m.begin_reception(t(0), t(100));
        assert_eq!(m.state(), ModemState::Receiving);
        assert!(m.end_reception(t(100), id));
        assert_eq!(m.state(), ModemState::Idle);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn overlapping_receptions_destroy_each_other() {
        let mut m = Modem::new();
        let a = m.begin_reception(t(0), t(100));
        let b = m.begin_reception(t(50), t(150));
        assert!(!m.end_reception(t(100), a));
        assert!(!m.end_reception(t(150), b));
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn three_way_collision_destroys_all() {
        let mut m = Modem::new();
        let a = m.begin_reception(t(0), t(100));
        let b = m.begin_reception(t(10), t(110));
        let c = m.begin_reception(t(20), t(120));
        assert!(!m.end_reception(t(100), a));
        assert!(!m.end_reception(t(110), b));
        assert!(!m.end_reception(t(120), c));
    }

    #[test]
    fn sequential_receptions_both_survive() {
        let mut m = Modem::new();
        let a = m.begin_reception(t(0), t(100));
        assert!(m.end_reception(t(100), a));
        let b = m.begin_reception(t(100), t(200));
        assert!(m.end_reception(t(200), b));
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn arrival_during_transmit_is_lost() {
        let mut m = Modem::new();
        m.begin_transmit(t(0), t(50));
        let a = m.begin_reception(t(10), t(60));
        m.end_transmit(t(50));
        assert!(!m.end_reception(t(60), a));
        assert_eq!(m.half_duplex_losses(), 1);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn transmit_corrupts_reception_in_progress() {
        let mut m = Modem::new();
        let a = m.begin_reception(t(0), t(100));
        m.begin_transmit(t(10), t(20));
        m.end_transmit(t(20));
        assert!(!m.end_reception(t(100), a));
        assert_eq!(m.half_duplex_losses(), 1);
    }

    #[test]
    fn reception_after_transmit_ends_survives() {
        let mut m = Modem::new();
        m.begin_transmit(t(0), t(50));
        m.end_transmit(t(50));
        let a = m.begin_reception(t(50), t(150));
        assert!(m.end_reception(t(150), a));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_transmit_panics() {
        let mut m = Modem::new();
        m.begin_transmit(t(0), t(50));
        m.begin_transmit(t(10), t(60));
    }

    #[test]
    #[should_panic(expected = "unknown reception")]
    fn ending_unknown_reception_panics() {
        let mut m = Modem::new();
        let id = m.begin_reception(t(0), t(10));
        m.end_reception(t(10), id);
        m.end_reception(t(10), id);
    }

    #[test]
    fn state_reports_transmitting_over_receiving() {
        let mut m = Modem::new();
        let _ = m.begin_reception(t(0), t(100));
        m.begin_transmit(t(10), t(20));
        assert_eq!(m.state(), ModemState::Transmitting);
        m.end_transmit(t(20));
        assert_eq!(m.state(), ModemState::Receiving);
    }

    #[test]
    fn grouped_copies_do_not_corrupt_each_other() {
        // A direct arrival and its surface echo are one transmission.
        let mut m = Modem::new();
        let direct = m.begin_reception_grouped(t(0), t(100), 7);
        let echo = m.begin_reception_grouped(t(30), t(130), 7);
        assert!(m.end_reception(t(100), direct), "direct survives its echo");
        let _ = m.end_reception(t(130), echo); // echo outcome unused
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn grouped_copies_still_corrupt_other_frames() {
        let mut m = Modem::new();
        let direct = m.begin_reception_grouped(t(0), t(100), 7);
        let other = m.begin_reception_grouped(t(50), t(150), 8);
        assert!(!m.end_reception(t(100), direct));
        assert!(!m.end_reception(t(150), other));
        assert!(m.collisions() >= 2);
    }

    #[test]
    fn echo_tail_corrupts_later_frames() {
        let mut m = Modem::new();
        let direct = m.begin_reception_grouped(t(0), t(100), 7);
        assert!(m.end_reception(t(100), direct));
        let echo = m.begin_reception_grouped(t(80), t(180), 7);
        // A different frame landing inside the echo tail dies.
        let late = m.begin_reception_grouped(t(150), t(250), 9);
        assert!(!m.end_reception(t(180), echo));
        assert!(!m.end_reception(t(250), late));
    }

    #[test]
    fn corrupt_all_marks_everything() {
        let mut m = Modem::new();
        let a = m.begin_reception(t(0), t(100));
        m.corrupt_all();
        assert!(!m.end_reception(t(100), a));
    }
}
