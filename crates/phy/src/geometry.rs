//! 3-D geometry for underwater deployments.
//!
//! Coordinates are in metres. The convention throughout the workspace is
//! **z = depth**, positive downward: the surface (where sinks float) is
//! z = 0 and deeper sensors have larger z. "Shallower" therefore always
//! means "smaller z", which is the direction data flows (paper Figure 1).

use std::fmt;
use std::ops::{Add, Sub};

/// A point (or displacement) in metres; `z` is depth, positive down.
///
/// # Examples
///
/// ```
/// use uasn_phy::geometry::Point;
///
/// let a = Point::new(0.0, 0.0, 100.0);
/// let b = Point::new(300.0, 400.0, 100.0);
/// assert_eq!(a.distance(b), 500.0);
/// assert!(b.is_deeper_than(&Point::surface(0.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
    /// Depth in metres, positive downward.
    pub z: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not finite.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite() && z.is_finite(),
            "point coordinates must be finite: ({x}, {y}, {z})"
        );
        Point { x, y, z }
    }

    /// A point on the surface (depth 0).
    pub fn surface(x: f64, y: f64) -> Self {
        Point::new(x, y, 0.0)
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Horizontal (surface-projected) distance to `other`, in metres.
    pub fn horizontal_distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Depth in metres (alias of `z`).
    pub fn depth(self) -> f64 {
        self.z
    }

    /// Whether this point is strictly deeper than `other`.
    pub fn is_deeper_than(&self, other: &Point) -> bool {
        self.z > other.z
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1}, {:.1})m", self.x, self.y, self.z)
    }
}

/// An axis-aligned deployment volume: `[0, width] × [0, length] × [0, depth]`
/// in metres.
///
/// # Examples
///
/// ```
/// use uasn_phy::geometry::{Point, Region};
///
/// // The paper's 1000 km^3 region as a 10 km × 10 km × 10 km box.
/// let region = Region::new(10_000.0, 10_000.0, 10_000.0);
/// assert_eq!(region.volume_km3(), 1_000.0);
/// assert!(region.contains(Point::new(5_000.0, 5_000.0, 5_000.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    width: f64,
    length: f64,
    depth: f64,
}

impl Region {
    /// Creates a region from its extents in metres.
    ///
    /// # Panics
    ///
    /// Panics if any extent is not finite and positive.
    pub fn new(width: f64, length: f64, depth: f64) -> Self {
        for (name, v) in [("width", width), ("length", length), ("depth", depth)] {
            assert!(
                v.is_finite() && v > 0.0,
                "region {name} must be finite and positive, got {v}"
            );
        }
        Region {
            width,
            length,
            depth,
        }
    }

    /// A cube with the given edge in metres.
    pub fn cube(edge: f64) -> Self {
        Region::new(edge, edge, edge)
    }

    /// East extent in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// North extent in metres.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Vertical extent in metres.
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// Volume in cubic kilometres.
    pub fn volume_km3(&self) -> f64 {
        (self.width / 1_000.0) * (self.length / 1_000.0) * (self.depth / 1_000.0)
    }

    /// Whether `p` lies inside (inclusive of boundaries).
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.length).contains(&p.y)
            && (0.0..=self.depth).contains(&p.z)
    }

    /// Clamps `p` to the region boundary.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(0.0, self.width),
            p.y.clamp(0.0, self.length),
            p.z.clamp(0.0, self.depth),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_pythagoras() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        let c = Point::new(3.0, 4.0, 12.0);
        assert_eq!(a.distance(c), 13.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(-4.0, 5.0, 6.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn horizontal_distance_ignores_depth() {
        let a = Point::new(0.0, 0.0, 100.0);
        let b = Point::new(3.0, 4.0, 900.0);
        assert_eq!(a.horizontal_distance(b), 5.0);
    }

    #[test]
    fn deeper_comparison() {
        let deep = Point::new(0.0, 0.0, 500.0);
        let shallow = Point::new(0.0, 0.0, 100.0);
        assert!(deep.is_deeper_than(&shallow));
        assert!(!shallow.is_deeper_than(&deep));
        assert!(!deep.is_deeper_than(&deep));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_point_panics() {
        let _ = Point::new(f64::NAN, 0.0, 0.0);
    }

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(10.0, 20.0, 30.0);
        assert_eq!(a + b, Point::new(11.0, 22.0, 33.0));
        assert_eq!(b - a, Point::new(9.0, 18.0, 27.0));
    }

    #[test]
    fn region_volume_matches_paper() {
        // Table 2: deployment area 1000 km^3.
        let region = Region::cube(10_000.0);
        assert!((region.volume_km3() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn region_contains_and_clamp() {
        let r = Region::new(100.0, 200.0, 300.0);
        assert!(r.contains(Point::new(0.0, 0.0, 0.0)));
        assert!(r.contains(Point::new(100.0, 200.0, 300.0)));
        assert!(!r.contains(Point::new(100.1, 0.0, 0.0)));
        assert!(!r.contains(Point::new(0.0, 0.0, -0.1)));
        assert_eq!(
            r.clamp(Point::new(-5.0, 500.0, 150.0)),
            Point::new(0.0, 200.0, 150.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_region_panics() {
        let _ = Region::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Point::new(1.0, 2.0, 3.0).to_string(), "(1.0, 2.0, 3.0)m");
    }
}
