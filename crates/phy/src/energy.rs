//! Modem energy accounting.
//!
//! The paper evaluates "power consumption including the power for waiting,
//! transmitting, and receiving" (§5.2) and reports average power in mW. We
//! integrate time-in-state against a modem power profile, and additionally
//! meter *maintenance* energy — the cost of building and refreshing
//! neighbour tables — which the paper charges against ROPA and CS-MAC
//! (two-hop info) much more heavily than against EW-MAC (one-hop info).

use uasn_sim::time::{SimDuration, SimTime};

use crate::modem::ModemState;

/// Draw (in watts) of each modem state plus per-bit maintenance cost.
///
/// Defaults are WHOI-micro-modem class figures, the common reference point
/// in UASN energy studies.
///
/// # Examples
///
/// ```
/// use uasn_phy::energy::PowerProfile;
///
/// let p = PowerProfile::default();
/// assert!(p.tx_watts > p.rx_watts && p.rx_watts > p.idle_watts);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Transmit draw, W.
    pub tx_watts: f64,
    /// Receive draw, W.
    pub rx_watts: f64,
    /// Idle-listening draw, W.
    pub idle_watts: f64,
    /// Energy charged per bit of neighbour-maintenance information
    /// processed/stored, J/bit. This models the paper's "cost of accessing
    /// neighboring information \[and\] carrying more information" (§5.3).
    pub maintenance_j_per_bit: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        PowerProfile {
            tx_watts: 2.0,
            rx_watts: 0.75,
            idle_watts: 0.08,
            maintenance_j_per_bit: 2.0e-4,
        }
    }
}

impl PowerProfile {
    /// Validates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or not finite.
    pub fn validated(self) -> Self {
        for (name, v) in [
            ("tx_watts", self.tx_watts),
            ("rx_watts", self.rx_watts),
            ("idle_watts", self.idle_watts),
            ("maintenance_j_per_bit", self.maintenance_j_per_bit),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "power profile {name} must be finite and non-negative, got {v}"
            );
        }
        self
    }

    /// Draw in watts for a modem state.
    pub fn draw_watts(&self, state: ModemState) -> f64 {
        match state {
            ModemState::Idle => self.idle_watts,
            ModemState::Transmitting => self.tx_watts,
            ModemState::Receiving => self.rx_watts,
        }
    }
}

/// Per-node energy meter: integrates power over state dwell times.
///
/// # Examples
///
/// ```
/// use uasn_phy::energy::{EnergyMeter, PowerProfile};
/// use uasn_phy::modem::ModemState;
/// use uasn_sim::time::SimTime;
///
/// let mut meter = EnergyMeter::new(PowerProfile::default(), SimTime::ZERO);
/// meter.set_state(SimTime::from_secs(10), ModemState::Transmitting);
/// meter.set_state(SimTime::from_secs(11), ModemState::Idle);
/// let joules = meter.total_joules(SimTime::from_secs(11));
/// // 10 s idle at 0.08 W + 1 s tx at 2 W
/// assert!((joules - (10.0 * 0.08 + 2.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    profile: PowerProfile,
    state: ModemState,
    last_change: SimTime,
    accumulated_joules: f64,
    maintenance_joules: f64,
    tx_time: SimDuration,
    rx_time: SimDuration,
    idle_time: SimDuration,
}

impl EnergyMeter {
    /// Creates a meter starting in the idle state at `start`.
    pub fn new(profile: PowerProfile, start: SimTime) -> Self {
        EnergyMeter {
            profile: profile.validated(),
            state: ModemState::Idle,
            last_change: start,
            accumulated_joules: 0.0,
            maintenance_joules: 0.0,
            tx_time: SimDuration::ZERO,
            rx_time: SimDuration::ZERO,
            idle_time: SimDuration::ZERO,
        }
    }

    /// Records a state change at time `t`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the previous change.
    pub fn set_state(&mut self, t: SimTime, state: ModemState) {
        debug_assert!(t >= self.last_change, "energy meter update out of order");
        let dwell = t.duration_since(self.last_change);
        self.accumulated_joules += self.profile.draw_watts(self.state) * dwell.as_secs_f64();
        match self.state {
            ModemState::Idle => self.idle_time += dwell,
            ModemState::Transmitting => self.tx_time += dwell,
            ModemState::Receiving => self.rx_time += dwell,
        }
        self.state = state;
        self.last_change = t;
    }

    /// Charges maintenance energy for `bits` bits of neighbour information.
    pub fn charge_maintenance_bits(&mut self, bits: u64) {
        self.maintenance_joules += self.profile.maintenance_j_per_bit * bits as f64;
    }

    /// Charges an explicit amount of maintenance energy in joules (used for
    /// the active-listening surcharge of opportunistic protocols).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn charge_joules(&mut self, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy charge must be finite and non-negative, got {joules}"
        );
        self.maintenance_joules += joules;
    }

    /// Total energy consumed through `now`, in joules (state dwell +
    /// maintenance).
    pub fn total_joules(&self, now: SimTime) -> f64 {
        let pending = self.profile.draw_watts(self.state)
            * now.duration_since(self.last_change).as_secs_f64();
        self.accumulated_joules + self.maintenance_joules + pending
    }

    /// Maintenance-only energy, joules.
    pub fn maintenance_joules(&self) -> f64 {
        self.maintenance_joules
    }

    /// Average power through `now`, in milliwatts — the paper's Figure 9
    /// unit.
    pub fn average_power_mw(&self, start: SimTime, now: SimTime) -> f64 {
        let span = now.duration_since(start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.total_joules(now) / span * 1_000.0
        }
    }

    /// Cumulative dwell in each state through the last change:
    /// `(tx, rx, idle)`.
    pub fn dwell_times(&self) -> (SimDuration, SimDuration, SimDuration) {
        (self.tx_time, self.rx_time, self.idle_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_ordered() {
        let p = PowerProfile::default();
        assert!(p.tx_watts > p.rx_watts);
        assert!(p.rx_watts > p.idle_watts);
        assert!(p.idle_watts > 0.0);
    }

    #[test]
    fn integrates_each_state() {
        let p = PowerProfile {
            tx_watts: 2.0,
            rx_watts: 1.0,
            idle_watts: 0.1,
            maintenance_j_per_bit: 0.0,
        };
        let mut m = EnergyMeter::new(p, SimTime::ZERO);
        m.set_state(SimTime::from_secs(10), ModemState::Transmitting); // 10 s idle
        m.set_state(SimTime::from_secs(12), ModemState::Receiving); // 2 s tx
        m.set_state(SimTime::from_secs(15), ModemState::Idle); // 3 s rx
        let j = m.total_joules(SimTime::from_secs(20)); // +5 s idle
        let expected = 10.0 * 0.1 + 2.0 * 2.0 + 3.0 * 1.0 + 5.0 * 0.1;
        assert!((j - expected).abs() < 1e-9, "got {j}, want {expected}");
        let (tx, rx, idle) = m.dwell_times();
        assert_eq!(tx, SimDuration::from_secs(2));
        assert_eq!(rx, SimDuration::from_secs(3));
        assert_eq!(idle, SimDuration::from_secs(10)); // trailing idle not yet closed
    }

    #[test]
    fn maintenance_energy_is_separate() {
        let mut m = EnergyMeter::new(PowerProfile::default(), SimTime::ZERO);
        m.charge_maintenance_bits(10_000);
        let expected = 10_000.0 * PowerProfile::default().maintenance_j_per_bit;
        assert!((m.maintenance_joules() - expected).abs() < 1e-12);
        assert!(m.total_joules(SimTime::ZERO) >= expected);
    }

    #[test]
    fn average_power_mw_unit() {
        let p = PowerProfile {
            tx_watts: 0.0,
            rx_watts: 0.0,
            idle_watts: 0.1,
            maintenance_j_per_bit: 0.0,
        };
        let m = EnergyMeter::new(p, SimTime::ZERO);
        let mw = m.average_power_mw(SimTime::ZERO, SimTime::from_secs(300));
        assert!((mw - 100.0).abs() < 1e-9, "0.1 W = 100 mW, got {mw}");
    }

    #[test]
    fn zero_window_average_is_zero() {
        let m = EnergyMeter::new(PowerProfile::default(), SimTime::ZERO);
        assert_eq!(m.average_power_mw(SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_profile_panics() {
        let p = PowerProfile {
            tx_watts: -1.0,
            ..PowerProfile::default()
        };
        let _ = p.validated();
    }
}
