//! Uniform-grid spatial index over node positions.
//!
//! Partitions space into axis-aligned cubic cells of edge `cell_m` and maps
//! each node to the cell containing it. A candidate query gathers the 27-cell
//! neighbourhood (3×3×3) around a query point, which is a **superset** of
//! every node within `cell_m` of the point: a node outside the neighbourhood
//! differs from the query by at least two whole cells along some axis, so its
//! distance along that axis alone exceeds `cell_m`.
//!
//! The link-budget cache sizes cells at the channel's culling radius padded
//! by [`crate::cache::CULL_MARGIN`] **twice** (see
//! [`crate::channel::AcousticChannel::index_cell_m`]): once is the margin the
//! brute-force cull itself applies, and the second keeps a full 5% gap
//! between the neighbourhood boundary and the cull radius so no
//! floating-point edge case (cell binning divides, the cull multiplies) can
//! make the grid skip a node the brute-force scan would have kept. Skipped
//! nodes are therefore provably beyond the cull radius, and visiting only the
//! sorted candidates reproduces the brute-force scan's row — and its RNG
//! consumption — bit for bit. The differential property tests in
//! `crates/phy/tests/grid_diff.rs` enforce exactly this.

use std::collections::HashMap;

use crate::geometry::Point;
use crate::soa::PositionSource;

/// A uniform spatial hash of node indices, supporting incremental moves.
///
/// # Examples
///
/// ```
/// use uasn_phy::geometry::Point;
/// use uasn_phy::grid::SpatialGrid;
///
/// let positions = vec![
///     Point::new(0.0, 0.0, 0.0),
///     Point::new(500.0, 0.0, 0.0),
///     Point::new(50_000.0, 0.0, 0.0),
/// ];
/// let grid = SpatialGrid::build(1_000.0, &positions);
/// let mut near = Vec::new();
/// grid.candidates_into(positions[0], &mut near);
/// assert_eq!(near, [0, 1]); // the 50 km node is not a candidate
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_m: f64,
    cells: HashMap<(i64, i64, i64), Vec<u32>>,
    node_cell: Vec<(i64, i64, i64)>,
}

impl SpatialGrid {
    /// Builds the index over `positions` with cubic cells of edge `cell_m`.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m` is finite and positive.
    pub fn build<P: PositionSource + ?Sized>(cell_m: f64, positions: &P) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell edge must be finite and positive, got {cell_m}"
        );
        let n = positions.node_count();
        let mut grid = SpatialGrid {
            cell_m,
            cells: HashMap::new(),
            node_cell: Vec::with_capacity(n),
        };
        for i in 0..n {
            let cell = grid.cell_of(positions.position(i));
            grid.cells.entry(cell).or_default().push(i as u32);
            grid.node_cell.push(cell);
        }
        grid
    }

    /// The cell edge length, metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.node_cell.len()
    }

    /// Number of non-empty cells (occupancy statistic).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn cell_of(&self, p: Point) -> (i64, i64, i64) {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
            (p.z / self.cell_m).floor() as i64,
        )
    }

    /// Re-bins `node` after it moved to `p`. O(1) amortised; a no-op when
    /// the move stays within the node's current cell.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the indexed set.
    pub fn note_move(&mut self, node: u32, p: Point) {
        let new_cell = self.cell_of(p);
        let old_cell = self.node_cell[node as usize];
        if new_cell == old_cell {
            return;
        }
        let bucket = self
            .cells
            .get_mut(&old_cell)
            .expect("node's recorded cell exists");
        let at = bucket
            .iter()
            .position(|&m| m == node)
            .expect("node listed in its recorded cell");
        bucket.swap_remove(at);
        if bucket.is_empty() {
            self.cells.remove(&old_cell);
        }
        self.cells.entry(new_cell).or_default().push(node);
        self.node_cell[node as usize] = new_cell;
    }

    /// Collects into `out` every node in the 27-cell neighbourhood around
    /// `p`, sorted ascending by node index.
    ///
    /// The result is a superset of all indexed nodes within `cell_m` of `p`
    /// (including any node located exactly at `p`); nodes missing from it
    /// are guaranteed to lie strictly farther than `cell_m` away.
    pub fn candidates_into(&self, p: Point, out: &mut Vec<u32>) {
        out.clear();
        let (cx, cy, cz) = self.cell_of(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        out.extend_from_slice(bucket);
                    }
                }
            }
        }
        // Ascending order is part of the determinism contract: callers
        // visit candidates in the same order the brute-force scan would.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(positions: &[Point], p: Point, radius: f64) -> Vec<u32> {
        positions
            .iter()
            .enumerate()
            .filter(|(_, q)| p.distance(**q) <= radius)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn candidates_cover_everything_within_one_cell_edge() {
        let cell = 750.0;
        let positions: Vec<Point> = (0..40)
            .map(|i| {
                let f = i as f64;
                Point::new(f * 311.7 % 5_000.0, f * 173.3 % 5_000.0, f * 97.1 % 2_000.0)
            })
            .collect();
        let grid = SpatialGrid::build(cell, &positions);
        let mut cand = Vec::new();
        for &p in &positions {
            grid.candidates_into(p, &mut cand);
            for near in brute_within(&positions, p, cell) {
                assert!(cand.contains(&near), "grid dropped node {near} near {p}");
            }
            let sorted = {
                let mut c = cand.clone();
                c.sort_unstable();
                c
            };
            assert_eq!(cand, sorted, "candidates must come out ascending");
        }
    }

    #[test]
    fn note_move_rebins_incrementally() {
        let positions = vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(100.0, 0.0, 0.0),
            Point::new(10_000.0, 0.0, 0.0),
        ];
        let mut grid = SpatialGrid::build(1_000.0, &positions);
        let mut cand = Vec::new();
        grid.candidates_into(positions[0], &mut cand);
        assert_eq!(cand, [0, 1]);

        // Node 2 drifts next to node 0; node 1 leaves for the far corner.
        grid.note_move(2, Point::new(200.0, 0.0, 0.0));
        grid.note_move(1, Point::new(9_900.0, 9_900.0, 0.0));
        grid.candidates_into(positions[0], &mut cand);
        assert_eq!(cand, [0, 2]);

        // An incrementally maintained grid matches a fresh rebuild.
        let moved = vec![
            positions[0],
            Point::new(9_900.0, 9_900.0, 0.0),
            Point::new(200.0, 0.0, 0.0),
        ];
        let fresh = SpatialGrid::build(1_000.0, &moved);
        let mut fresh_cand = Vec::new();
        for &p in &moved {
            grid.candidates_into(p, &mut cand);
            fresh.candidates_into(p, &mut fresh_cand);
            assert_eq!(
                cand, fresh_cand,
                "incremental and fresh grids diverge at {p}"
            );
        }
    }

    #[test]
    fn within_cell_moves_are_no_ops() {
        let positions = vec![Point::new(10.0, 10.0, 10.0), Point::new(20.0, 20.0, 20.0)];
        let mut grid = SpatialGrid::build(1_000.0, &positions);
        let cells_before = grid.occupied_cells();
        grid.note_move(0, Point::new(900.0, 900.0, 900.0));
        assert_eq!(grid.occupied_cells(), cells_before);
        let mut cand = Vec::new();
        grid.candidates_into(Point::new(0.0, 0.0, 0.0), &mut cand);
        assert_eq!(cand, [0, 1]);
    }

    #[test]
    fn negative_coordinates_bin_correctly() {
        let positions = vec![
            Point::new(-10.0, -10.0, 5.0),
            Point::new(10.0, 10.0, 5.0),
            Point::new(-5_000.0, -5_000.0, 5.0),
        ];
        let grid = SpatialGrid::build(1_000.0, &positions);
        let mut cand = Vec::new();
        grid.candidates_into(positions[0], &mut cand);
        assert!(cand.contains(&0) && cand.contains(&1));
        assert!(!cand.contains(&2), "the -5 km node is two cells away");
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_cell_edge_is_rejected() {
        let positions: Vec<Point> = Vec::new();
        let _ = SpatialGrid::build(0.0, &positions);
    }
}
