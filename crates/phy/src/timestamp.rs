//! Frame timestamping at the modem boundary.
//!
//! §4.3 of the paper assumes every packet carries its sending timestamp and
//! that receivers difference it against the arrival instant. Real modems
//! complicate both halves: the transmitter stamps when the first bit leaves
//! (not when the MAC decided to send), and the receiver only *knows* about
//! a frame once the last bit is decoded, so the arrival reading must be
//! back-dated by the frame duration — which both sides know exactly from
//! the bit count and the bit rate. These helpers capture that arithmetic so
//! the simulator world and the audit tooling agree on it; the clock-error
//! contamination of the readings themselves lives in `uasn-clock`.

use crate::modem::ModemSpec;
use uasn_sim::time::{SimDuration, SimTime};

/// The transmit-side stamp: the (local-clock) instant the first bit leaves
/// the transducer. The MAC's decision instant and the departure instant
/// coincide in this simulator, so this is the identity — kept as a named
/// seam so a modeled MAC-to-transducer latency has exactly one home.
pub fn tx_stamp(first_bit_departure_local: SimTime) -> SimTime {
    first_bit_departure_local
}

/// The receive-side arrival reading: back-dates the (local-clock) decode
/// instant by the frame's exact on-air duration. Saturates at t = 0 when a
/// badly offset clock reads the decode instant earlier than the frame is
/// long.
pub fn rx_arrival(decode_end_local: SimTime, spec: ModemSpec, bits: u32) -> SimTime {
    decode_end_local
        .checked_sub(spec.tx_duration(bits))
        .unwrap_or(SimTime::ZERO)
}

/// The §4.3 delay measurement: receiver's arrival reading minus the
/// sender's stamp, saturating at zero when clock skew inverts the order.
/// With ideal clocks this is exactly the propagation delay.
pub fn measured_delay(tx_stamp_local: SimTime, rx_arrival_local: SimTime) -> SimDuration {
    SimDuration::from_micros(
        rx_arrival_local
            .as_micros()
            .saturating_sub(tx_stamp_local.as_micros()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModemSpec {
        ModemSpec::new(12_000.0)
    }

    #[test]
    fn round_trip_recovers_the_true_delay_with_ideal_clocks() {
        let sent = tx_stamp(SimTime::from_secs(10));
        let tau = SimDuration::from_millis(400);
        let dur = spec().tx_duration(2_048);
        let decode_end = sent + tau + dur;
        let arrival = rx_arrival(decode_end, spec(), 2_048);
        assert_eq!(arrival, sent + tau);
        assert_eq!(measured_delay(sent, arrival), tau);
    }

    #[test]
    fn rx_arrival_saturates_near_time_zero() {
        let arrival = rx_arrival(SimTime::from_micros(10), spec(), 2_048);
        assert_eq!(arrival, SimTime::ZERO);
    }

    #[test]
    fn inverted_readings_saturate_instead_of_underflowing() {
        // A receiver whose clock runs far behind the sender's can read an
        // arrival instant before the stamp; the measurement floors at zero.
        let sent = SimTime::from_secs(20);
        let arrival = SimTime::from_secs(19);
        assert_eq!(measured_delay(sent, arrival), SimDuration::ZERO);
    }
}
