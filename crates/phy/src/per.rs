//! Packet-error models.
//!
//! NS-3's UAN PHY offers a "default PER" (deterministic threshold on SINR)
//! and modulation-based error models. We mirror that split:
//!
//! * [`PerModel::RangeCutoff`] — the Default-PER-style deterministic model
//!   the headline figures use: inside the communication range a packet
//!   survives unless it collides; outside it is never heard.
//! * [`PerModel::SnrThreshold`] — deterministic on a dB threshold.
//! * [`PerModel::Modulation`] — probabilistic: SNR → Eb/N0 → BER (per
//!   modulation) → PER over the packet length. Used by the failure-injection
//!   tests and the lossy-channel extension experiments.

use crate::noise::db_to_linear;

/// Modulation schemes with closed-form AWGN bit-error rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modulation {
    /// Coherent binary phase-shift keying: `BER = Q(sqrt(2 Eb/N0))`.
    #[default]
    Bpsk,
    /// Non-coherent binary frequency-shift keying:
    /// `BER = 0.5 exp(−Eb/N0 / 2)` — the robust classic for acoustic modems.
    NcFsk,
    /// Differentially-coherent PSK: `BER = 0.5 exp(−Eb/N0)`.
    Dpsk,
}

impl Modulation {
    /// Bit-error rate at the given linear `Eb/N0`.
    ///
    /// # Panics
    ///
    /// Panics if `eb_n0` is negative or not finite.
    pub fn ber(self, eb_n0: f64) -> f64 {
        assert!(
            eb_n0.is_finite() && eb_n0 >= 0.0,
            "Eb/N0 must be finite and non-negative, got {eb_n0}"
        );
        match self {
            Modulation::Bpsk => q_function((2.0 * eb_n0).sqrt()),
            Modulation::NcFsk => 0.5 * (-eb_n0 / 2.0).exp(),
            Modulation::Dpsk => 0.5 * (-eb_n0).exp(),
        }
    }
}

/// The Gaussian tail function Q(x) via the complementary error function.
fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function, Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e-7 — far below anything that matters for a
/// PER model).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

/// A packet-error model: maps link conditions to a loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerModel {
    /// Deterministic: packets are always received inside `range_m`, never
    /// outside. This is the model behind the paper's headline figures.
    RangeCutoff {
        /// The communication range in metres (1 500 m in Table 2).
        range_m: f64,
    },
    /// Deterministic: received iff SNR ≥ `threshold_db`.
    SnrThreshold {
        /// Minimum workable SNR in dB.
        threshold_db: f64,
    },
    /// Probabilistic via modulation BER over the packet length.
    Modulation {
        /// Modulation scheme.
        scheme: Modulation,
        /// Processing gain BW/R applied to convert SNR to Eb/N0 (linear).
        bandwidth_over_bitrate: f64,
    },
}

impl Default for PerModel {
    fn default() -> Self {
        PerModel::RangeCutoff { range_m: 1_500.0 }
    }
}

impl PerModel {
    /// Probability that a `bits`-bit packet is **lost**, given the link
    /// distance and SNR.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative/not finite or `bits` is zero.
    pub fn loss_probability(&self, distance_m: f64, snr_db: f64, bits: u32) -> f64 {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        assert!(bits > 0, "packet must contain at least one bit");
        match *self {
            PerModel::RangeCutoff { range_m } => {
                if distance_m <= range_m {
                    0.0
                } else {
                    1.0
                }
            }
            PerModel::SnrThreshold { threshold_db } => {
                if snr_db >= threshold_db {
                    0.0
                } else {
                    1.0
                }
            }
            PerModel::Modulation {
                scheme,
                bandwidth_over_bitrate,
            } => {
                let eb_n0 = db_to_linear(snr_db) * bandwidth_over_bitrate;
                let ber = scheme.ber(eb_n0);
                1.0 - (1.0 - ber).powi(bits as i32)
            }
        }
    }

    /// Whether any packet can ever be heard at this distance/SNR (loss
    /// probability strictly below 1 for a 1-bit packet).
    pub fn is_audible(&self, distance_m: f64, snr_db: f64) -> bool {
        self.loss_probability(distance_m, snr_db, 1) < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn bpsk_reference_ber() {
        // Classic checkpoint: BPSK at Eb/N0 = 9.6 dB -> BER ~1e-5.
        let eb_n0 = db_to_linear(9.6);
        let ber = Modulation::Bpsk.ber(eb_n0);
        assert!((ber - 1e-5).abs() / 1e-5 < 0.2, "got {ber}");
    }

    #[test]
    fn ncfsk_reference_ber() {
        // NC-FSK: BER = 0.5 exp(-Eb/N0/2); at Eb/N0 = 10 (10 dB): 0.5 e^-5.
        let ber = Modulation::NcFsk.ber(10.0);
        assert!((ber - 0.5 * (-5.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn ber_decreases_with_snr_for_all_schemes() {
        for scheme in [Modulation::Bpsk, Modulation::NcFsk, Modulation::Dpsk] {
            let mut prev = 1.0;
            for snr in [0.1, 1.0, 4.0, 10.0, 30.0] {
                let ber = scheme.ber(snr);
                assert!(ber < prev, "{scheme:?} not monotone at {snr}");
                assert!((0.0..=0.5).contains(&ber));
                prev = ber;
            }
        }
    }

    #[test]
    fn range_cutoff_is_binary() {
        let m = PerModel::RangeCutoff { range_m: 1_500.0 };
        assert_eq!(m.loss_probability(1_500.0, 0.0, 2048), 0.0);
        assert_eq!(m.loss_probability(1_500.1, 100.0, 2048), 1.0);
        assert!(m.is_audible(1_000.0, -100.0));
        assert!(!m.is_audible(2_000.0, 100.0));
    }

    #[test]
    fn snr_threshold_is_binary() {
        let m = PerModel::SnrThreshold { threshold_db: 10.0 };
        assert_eq!(m.loss_probability(1.0, 10.0, 64), 0.0);
        assert_eq!(m.loss_probability(1.0, 9.99, 64), 1.0);
    }

    #[test]
    fn modulation_per_grows_with_packet_size() {
        let m = PerModel::Modulation {
            scheme: Modulation::NcFsk,
            bandwidth_over_bitrate: 1.0,
        };
        let short = m.loss_probability(100.0, 10.0, 64);
        let long = m.loss_probability(100.0, 10.0, 4_096);
        assert!(long > short);
        assert!((0.0..=1.0).contains(&short) && (0.0..=1.0).contains(&long));
    }

    #[test]
    fn modulation_per_limits() {
        let m = PerModel::Modulation {
            scheme: Modulation::Bpsk,
            bandwidth_over_bitrate: 1.0,
        };
        // Very high SNR -> essentially lossless.
        assert!(m.loss_probability(100.0, 40.0, 2_048) < 1e-9);
        // Very low SNR -> essentially certain loss for long packets.
        assert!(m.loss_probability(100.0, -20.0, 2_048) > 0.999);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        PerModel::default().loss_probability(1.0, 0.0, 0);
    }
}
