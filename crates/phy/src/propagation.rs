//! Acoustic transmission loss and link budget.
//!
//! Substitution note (DESIGN.md): the paper used NS-3's Bellhop-based UAN
//! channel. At the ranges and band in play (≤1.5 km, ~10 kHz) the MAC-level
//! behaviour depends on delay geometry and on whether a link closes, which
//! the standard analytic loss `TL = k·10 log r + a(f)·r` captures. We expose
//! the spreading exponent so both spherical (k = 2) and the practical
//! (k = 1.5) regimes are available.

use crate::absorption::thorp_db_per_km;
use crate::noise::{linear_to_db, AmbientNoise};

/// Geometric spreading law for transmission loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Spreading {
    /// Cylindrical spreading (k = 1), shallow-water ducted propagation.
    Cylindrical,
    /// The common in-between "practical" spreading (k = 1.5).
    #[default]
    Practical,
    /// Spherical spreading (k = 2), deep open water.
    Spherical,
}

impl Spreading {
    /// The spreading exponent `k`.
    pub fn exponent(self) -> f64 {
        match self {
            Spreading::Cylindrical => 1.0,
            Spreading::Practical => 1.5,
            Spreading::Spherical => 2.0,
        }
    }
}

/// Analytic transmission-loss model: spreading + Thorp absorption.
///
/// # Examples
///
/// ```
/// use uasn_phy::propagation::{Spreading, TransmissionLoss};
///
/// let tl = TransmissionLoss::new(Spreading::Practical, 10.0);
/// let near = tl.loss_db(100.0);
/// let far = tl.loss_db(1_500.0);
/// assert!(far > near);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionLoss {
    spreading: Spreading,
    frequency_khz: f64,
    absorption_db_per_km: f64,
}

impl TransmissionLoss {
    /// Creates a loss model at the given centre frequency in kHz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_khz` is not finite and positive.
    pub fn new(spreading: Spreading, frequency_khz: f64) -> Self {
        TransmissionLoss {
            spreading,
            frequency_khz,
            absorption_db_per_km: thorp_db_per_km(frequency_khz),
        }
    }

    /// The configured centre frequency in kHz.
    pub fn frequency_khz(&self) -> f64 {
        self.frequency_khz
    }

    /// One-way transmission loss in dB over `distance_m` metres.
    ///
    /// Distances below 1 m are clamped to 1 m (the reference distance of the
    /// source-level convention), so the loss is never negative.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative or not finite.
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        assert!(
            distance_m.is_finite() && distance_m >= 0.0,
            "distance must be finite and non-negative, got {distance_m}"
        );
        let r = distance_m.max(1.0);
        self.spreading.exponent() * 10.0 * r.log10() + self.absorption_db_per_km * r / 1_000.0
    }
}

/// A transmit source level plus the loss/noise environment: everything
/// needed to compute receiver SNR.
///
/// # Examples
///
/// ```
/// use uasn_phy::noise::AmbientNoise;
/// use uasn_phy::propagation::{LinkBudget, Spreading, TransmissionLoss};
///
/// let budget = LinkBudget::new(
///     170.0, // source level, dB re µPa @ 1 m
///     TransmissionLoss::new(Spreading::Practical, 10.0),
///     AmbientNoise::default(),
///     10_000.0, // receiver bandwidth, Hz
/// );
/// let snr_near = budget.snr_db(200.0);
/// let snr_far = budget.snr_db(1_500.0);
/// assert!(snr_near > snr_far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    source_level_db: f64,
    loss: TransmissionLoss,
    noise: AmbientNoise,
    bandwidth_hz: f64,
}

impl LinkBudget {
    /// Creates a link budget.
    ///
    /// `source_level_db` is in dB re µPa at 1 m; typical acoustic modems emit
    /// 165–190 dB.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is not finite and positive or
    /// `source_level_db` is not finite.
    pub fn new(
        source_level_db: f64,
        loss: TransmissionLoss,
        noise: AmbientNoise,
        bandwidth_hz: f64,
    ) -> Self {
        assert!(
            source_level_db.is_finite(),
            "source level must be finite, got {source_level_db}"
        );
        assert!(
            bandwidth_hz.is_finite() && bandwidth_hz > 0.0,
            "bandwidth must be finite and positive, got {bandwidth_hz}"
        );
        LinkBudget {
            source_level_db,
            loss,
            noise,
            bandwidth_hz,
        }
    }

    /// Received signal level at `distance_m`, dB re µPa.
    pub fn received_level_db(&self, distance_m: f64) -> f64 {
        self.source_level_db - self.loss.loss_db(distance_m)
    }

    /// Signal-to-noise ratio at `distance_m`, in dB:
    /// `SL − TL(r) − (NSD(fc) + 10 log BW)`.
    pub fn snr_db(&self, distance_m: f64) -> f64 {
        let noise_db = self
            .noise
            .band_level_db(self.loss.frequency_khz(), self.bandwidth_hz);
        self.received_level_db(distance_m) - noise_db
    }

    /// The distance at which the SNR drops to `threshold_db`, found by
    /// bisection over `[1 m, max_m]`; `None` if the SNR is still above the
    /// threshold at `max_m` (link closes everywhere) or already below it at
    /// 1 m (link closes nowhere).
    pub fn range_for_snr(&self, threshold_db: f64, max_m: f64) -> Option<f64> {
        let mut lo = 1.0;
        let mut hi = max_m;
        if self.snr_db(hi) >= threshold_db || self.snr_db(lo) < threshold_db {
            return None;
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.snr_db(mid) >= threshold_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Converts an SNR in dB into the per-bit `Eb/N0` ratio (linear) for a
    /// link at `bitrate_bps`: `Eb/N0 = SNR · BW / R`.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_bps` is not finite and positive.
    pub fn eb_n0_linear(&self, snr_db: f64, bitrate_bps: f64) -> f64 {
        assert!(
            bitrate_bps.is_finite() && bitrate_bps > 0.0,
            "bitrate must be finite and positive, got {bitrate_bps}"
        );
        crate::noise::db_to_linear(snr_db) * self.bandwidth_hz / bitrate_bps
    }

    /// Linear SNR back to dB (convenience re-export for callers building
    /// custom PER models).
    pub fn linear_to_db(linear: f64) -> f64 {
        linear_to_db(linear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{Shipping, WindSpeed};

    fn budget() -> LinkBudget {
        LinkBudget::new(
            170.0,
            TransmissionLoss::new(Spreading::Practical, 10.0),
            AmbientNoise::new(Shipping::moderate(), WindSpeed::new(5.0)),
            10_000.0,
        )
    }

    #[test]
    fn loss_monotone_in_distance() {
        let tl = TransmissionLoss::new(Spreading::Spherical, 10.0);
        let mut prev = -1.0;
        for r in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
            let l = tl.loss_db(r);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn loss_at_reference_distance_is_zero() {
        let tl = TransmissionLoss::new(Spreading::Spherical, 10.0);
        assert!(tl.loss_db(1.0).abs() < 0.01);
        // sub-metre clamps to the reference distance
        assert_eq!(tl.loss_db(0.0), tl.loss_db(1.0));
    }

    #[test]
    fn spreading_exponents_order_losses() {
        let r = 1_000.0;
        let cyl = TransmissionLoss::new(Spreading::Cylindrical, 10.0).loss_db(r);
        let pra = TransmissionLoss::new(Spreading::Practical, 10.0).loss_db(r);
        let sph = TransmissionLoss::new(Spreading::Spherical, 10.0).loss_db(r);
        assert!(cyl < pra && pra < sph);
    }

    #[test]
    fn spherical_loss_hand_value() {
        // 1 km spherical at 10 kHz: 20 log 1000 = 60 dB + ~1.1 dB absorption.
        let tl = TransmissionLoss::new(Spreading::Spherical, 10.0).loss_db(1_000.0);
        assert!((60.0..62.5).contains(&tl), "got {tl}");
    }

    #[test]
    fn snr_declines_with_range() {
        let b = budget();
        assert!(b.snr_db(100.0) > b.snr_db(500.0));
        assert!(b.snr_db(500.0) > b.snr_db(1_500.0));
    }

    #[test]
    fn modem_class_budget_closes_at_paper_range() {
        // A 170 dB source should comfortably close a 1.5 km link at 10 kHz
        // (the paper's communication range).
        let b = budget();
        assert!(
            b.snr_db(1_500.0) > 10.0,
            "SNR at 1.5 km = {}",
            b.snr_db(1_500.0)
        );
    }

    #[test]
    fn range_for_snr_brackets_threshold() {
        let b = budget();
        let r = b
            .range_for_snr(b.snr_db(800.0), 100_000.0)
            .expect("threshold crossed in range");
        assert!((r - 800.0).abs() < 1.0, "bisection found {r}");
    }

    #[test]
    fn range_for_snr_none_when_never_crossed() {
        let b = budget();
        assert_eq!(b.range_for_snr(-1_000.0, 10_000.0), None);
        assert_eq!(b.range_for_snr(1_000.0, 10_000.0), None);
    }

    #[test]
    fn eb_n0_scales_with_bitrate() {
        let b = budget();
        let low_rate = b.eb_n0_linear(10.0, 1_000.0);
        let high_rate = b.eb_n0_linear(10.0, 10_000.0);
        assert!((low_rate / high_rate - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics() {
        let _ = TransmissionLoss::new(Spreading::Practical, 10.0).loss_db(-5.0);
    }
}
