//! # uasn-phy — underwater acoustic physical-layer substrate
//!
//! Everything below the MAC in the EW-MAC reproduction:
//!
//! * [`geometry`] — 3-D points (z = depth, positive down) and deployment
//!   regions.
//! * [`sound`] — sound-speed profiles (constant, linear, Mackenzie) and
//!   propagation delays.
//! * [`absorption`] — Thorp and Fisher–Simmons frequency-dependent
//!   absorption.
//! * [`band`] — AN-product operating-band optimisation (Stojanovic 2007).
//! * [`noise`] — Wenz four-component ambient noise.
//! * [`propagation`] — spreading + absorption transmission loss and the
//!   receiver link budget.
//! * [`per`] — packet-error models: deterministic range cutoff (the paper's
//!   regime), SNR threshold, and modulation-based BER/PER.
//! * [`cache`] — per-pair link-budget memoization for the fan-out hot path.
//! * [`grid`] — uniform spatial index bounding each fan-out to neighbour
//!   cells.
//! * [`soa`] — struct-of-arrays position storage for the hot path.
//! * [`modem`] — the half-duplex modem with an overlap (collision) ledger.
//! * [`timestamp`] — §4.3 frame stamping and arrival back-dating arithmetic.
//! * [`energy`] — power-state energy metering in the paper's mW units.
//! * [`mobility`] — the paper's static/horizontal/vertical location models.
//! * [`channel`] — the assembled channel the network simulator queries.
//!
//! The substitution rationale for this analytic stack standing in for the
//! authors' NS-3/Bellhop setup is recorded in `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use uasn_phy::channel::AcousticChannel;
//! use uasn_phy::geometry::Point;
//!
//! let ch = AcousticChannel::paper_default();
//! let deep = Point::new(0.0, 0.0, 2_000.0);
//! let shallow = Point::new(400.0, 300.0, 1_000.0);
//! assert!(ch.is_audible(deep, shallow));
//! let tau = ch.propagation_delay(deep, shallow);
//! assert!(tau < ch.max_propagation_delay());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorption;
pub mod band;
pub mod cache;
pub mod channel;
pub mod energy;
pub mod geometry;
pub mod grid;
pub mod mobility;
pub mod modem;
pub mod noise;
pub mod per;
pub mod propagation;
pub mod soa;
pub mod sound;
pub mod timestamp;

pub use cache::{CacheStats, CachedLink, LinkBudgetCache};
pub use channel::AcousticChannel;
pub use energy::{EnergyMeter, PowerProfile};
pub use geometry::{Point, Region};
pub use grid::SpatialGrid;
pub use mobility::MobilityModel;
pub use modem::{Modem, ModemSpec, ModemState};
pub use per::{Modulation, PerModel};
pub use soa::{PositionSource, PositionTable};
pub use sound::SoundSpeedProfile;
