//! The assembled acoustic channel.
//!
//! [`AcousticChannel`] is the single object the network simulator queries:
//! given two positions it answers *when* a frame arrives (sound-speed
//! profile), and *whether* it can be heard (PER model over the link budget).
//! Collisions are **not** decided here — overlap detection lives in the
//! per-node [`Modem`](crate::modem::Modem) ledger, because whether two
//! frames overlap depends on the receiver's full arrival history.

use rand::Rng;

use uasn_sim::time::SimDuration;

use crate::geometry::Point;
use crate::noise::AmbientNoise;
use crate::per::PerModel;
use crate::propagation::{LinkBudget, Spreading, TransmissionLoss};
use crate::sound::SoundSpeedProfile;

/// Two-ray multipath: every transmission also reaches receivers via a
/// surface bounce — the image-source path — delayed by the longer geometry
/// and attenuated by the reflection. The echo carries no usable data; it
/// occupies the receiver and interferes with *other* frames (inter-symbol
/// style reverberation), which is the dominant MAC-visible effect of
/// shallow-water multipath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRayMultipath {
    /// Extra loss of the surface bounce, dB (scattering at the air-water
    /// interface; 3–10 dB typical for moderate sea states).
    pub surface_loss_db: f64,
}

/// Immutable channel configuration shared by the whole network.
///
/// # Examples
///
/// ```
/// use uasn_phy::channel::AcousticChannel;
/// use uasn_phy::geometry::Point;
///
/// let ch = AcousticChannel::paper_default();
/// let a = Point::new(0.0, 0.0, 1_000.0);
/// let b = Point::new(1_500.0, 0.0, 1_000.0);
/// // 1.5 km at 1.5 km/s -> 1 s
/// assert_eq!(ch.propagation_delay(a, b).as_micros(), 1_000_000);
/// assert!(ch.is_audible(a, b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcousticChannel {
    sound: SoundSpeedProfile,
    budget: LinkBudget,
    per: PerModel,
    max_range_m: f64,
    multipath: Option<TwoRayMultipath>,
}

impl AcousticChannel {
    /// Creates a channel.
    ///
    /// `max_range_m` is the nominal communication range used for neighbour
    /// discovery and slot sizing (Table 2: 1 500 m).
    ///
    /// # Panics
    ///
    /// Panics if `max_range_m` is not finite and positive.
    pub fn new(
        sound: SoundSpeedProfile,
        budget: LinkBudget,
        per: PerModel,
        max_range_m: f64,
    ) -> Self {
        assert!(
            max_range_m.is_finite() && max_range_m > 0.0,
            "max range must be finite and positive, got {max_range_m}"
        );
        AcousticChannel {
            sound,
            budget,
            per,
            max_range_m,
            multipath: None,
        }
    }

    /// Enables two-ray surface-bounce multipath with the given reflection
    /// loss.
    pub fn with_two_ray(mut self, surface_loss_db: f64) -> Self {
        assert!(
            surface_loss_db.is_finite() && surface_loss_db >= 0.0,
            "surface loss must be finite and non-negative, got {surface_loss_db}"
        );
        self.multipath = Some(TwoRayMultipath { surface_loss_db });
        self
    }

    /// The configured multipath model, if any.
    pub fn multipath(&self) -> Option<TwoRayMultipath> {
        self.multipath
    }

    /// Length of the surface-bounce path between two points (image-source
    /// construction: reflect the source across the surface).
    pub fn echo_path_m(&self, from: Point, to: Point) -> f64 {
        // Image source: reflect the transmitter across the surface (z = 0).
        let dx = from.x - to.x;
        let dy = from.y - to.y;
        let dz = -from.z - to.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Propagation delay of the surface echo.
    pub fn echo_delay(&self, from: Point, to: Point) -> SimDuration {
        let secs = self
            .sound
            .propagation_delay_secs(self.echo_path_m(from, to), 0.0, to.depth());
        SimDuration::from_secs_f64(secs)
    }

    /// Whether the surface echo of a transmission is strong enough to
    /// occupy the receiver (audible after the bounce loss).
    pub fn echo_audible(&self, from: Point, to: Point) -> bool {
        let Some(mp) = self.multipath else {
            return false;
        };
        let path = self.echo_path_m(from, to);
        let snr = self.budget.snr_db(path) - mp.surface_loss_db;
        match self.per {
            PerModel::RangeCutoff { range_m } => {
                // Emulate the bounce loss as extra effective distance:
                // every 6 dB of loss ≈ a range factor of 2 under practical
                // spreading; keep it simple and require the echo path plus
                // a loss-scaled margin inside the range.
                path * (1.0 + mp.surface_loss_db / 20.0) <= range_m
            }
            _ => self.per.is_audible(path, snr),
        }
    }

    /// The channel used for the paper's headline experiments: constant
    /// 1.5 km/s sound speed, practical spreading at 10 kHz, moderate Wenz
    /// noise over a 12 kHz band, and the deterministic 1.5 km range-cutoff
    /// PER (the NS-3 "default PER" analogue).
    pub fn paper_default() -> Self {
        AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                170.0,
                TransmissionLoss::new(Spreading::Practical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::RangeCutoff { range_m: 1_500.0 },
            1_500.0,
        )
    }

    /// Nominal communication range, metres.
    pub fn max_range_m(&self) -> f64 {
        self.max_range_m
    }

    /// The sound-speed profile.
    pub fn sound(&self) -> &SoundSpeedProfile {
        &self.sound
    }

    /// The packet-error model.
    pub fn per_model(&self) -> &PerModel {
        &self.per
    }

    /// Worst-case one-hop propagation delay (τmax): the nominal range
    /// traversed at the slowest surface-to-max-depth mean speed.
    pub fn max_propagation_delay(&self) -> SimDuration {
        // Conservative: evaluate the mean speed at the surface where typical
        // profiles are slowest; for the constant profile this is exact.
        let secs = self
            .sound
            .propagation_delay_secs(self.max_range_m, 0.0, 0.0);
        SimDuration::from_secs_f64(secs)
    }

    /// One-way propagation delay between two positions.
    pub fn propagation_delay(&self, from: Point, to: Point) -> SimDuration {
        let secs = self
            .sound
            .propagation_delay_secs(from.distance(to), from.depth(), to.depth());
        SimDuration::from_secs_f64(secs)
    }

    /// SNR of a transmission from `from` heard at `to`, in dB.
    pub fn snr_db(&self, from: Point, to: Point) -> f64 {
        self.budget.snr_db(from.distance(to))
    }

    /// The link budget (source level, loss model, noise, bandwidth).
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// Probability that a `bits`-bit frame from `from` is lost at `to`
    /// (before considering collisions).
    pub fn loss_probability(&self, from: Point, to: Point, bits: u32) -> f64 {
        let d = from.distance(to);
        self.loss_probability_at(d, self.budget.snr_db(d), bits)
    }

    /// [`loss_probability`](Self::loss_probability) for a pre-computed
    /// distance and SNR — the entry point used by the
    /// [`LinkBudgetCache`](crate::cache::LinkBudgetCache) fast path. Feeding
    /// back the exact `(distance, snr)` pair this channel computed for a
    /// link yields a bit-identical probability.
    pub fn loss_probability_at(&self, distance_m: f64, snr_db: f64, bits: u32) -> f64 {
        self.per.loss_probability(distance_m, snr_db, bits)
    }

    /// Whether `to` can hear transmissions from `from` at all.
    pub fn is_audible(&self, from: Point, to: Point) -> bool {
        let d = from.distance(to);
        self.per.is_audible(d, self.budget.snr_db(d))
    }

    /// Draws whether a specific frame survives the channel (PER only; the
    /// receiver's modem ledger decides collisions separately).
    pub fn draw_delivery<R: Rng>(&self, rng: &mut R, from: Point, to: Point, bits: u32) -> bool {
        let d = from.distance(to);
        self.draw_delivery_at(rng, d, self.budget.snr_db(d), bits)
    }

    /// [`draw_delivery`](Self::draw_delivery) for a pre-computed distance
    /// and SNR. Consumes RNG draws exactly when the position-based form
    /// would (only for probabilities strictly inside (0, 1)), which is what
    /// keeps cached and uncached runs on the same random stream.
    pub fn draw_delivery_at<R: Rng>(
        &self,
        rng: &mut R,
        distance_m: f64,
        snr_db: f64,
        bits: u32,
    ) -> bool {
        let p_loss = self.loss_probability_at(distance_m, snr_db, bits);
        if p_loss <= 0.0 {
            true
        } else if p_loss >= 1.0 {
            false
        } else {
            rng.gen_range(0.0..1.0) >= p_loss
        }
    }

    /// A radius guaranteed to contain every audible receiver, if one can be
    /// derived from the PER model: any receiver strictly beyond the returned
    /// distance is provably inaudible (loss probability 1), so range culling
    /// may skip it without checking. `None` means no sound bound exists
    /// (e.g. modulation-based PER, where loss stays below 1 at any range)
    /// and callers must fall back to exact per-pair audibility checks.
    pub fn detection_radius_m(&self) -> Option<f64> {
        match self.per {
            // Exact: audible iff distance ≤ range_m.
            PerModel::RangeCutoff { range_m } => Some(range_m),
            // SNR declines monotonically with range (spreading + absorption
            // both grow), so the threshold crossing bounds audibility. The
            // bisection is approximate; callers add CULL_MARGIN on top.
            PerModel::SnrThreshold { threshold_db } => {
                let cap = 100.0 * self.max_range_m;
                if self.budget.snr_db(1.0) < threshold_db {
                    // Link closes nowhere: every receiver is inaudible.
                    Some(0.0)
                } else {
                    // None here means the link still closes at the cap —
                    // no useful bound, fall back to exact checks.
                    self.budget.range_for_snr(threshold_db, cap)
                }
            }
            // 1 − (1 − BER)^bits < 1 for any finite range: no cutoff.
            PerModel::Modulation { .. } => None,
        }
    }

    /// Cell edge for a uniform spatial index over this channel, metres.
    ///
    /// The edge is [`detection_radius_m`](Self::detection_radius_m) padded by
    /// [`crate::cache::CULL_MARGIN`] twice: the first factor is the margin
    /// the squared-distance cull itself applies, the second keeps the 27-cell
    /// neighbourhood boundary a full 5% beyond the cull radius so binning
    /// arithmetic (a floored division) can never skip a node the cull's
    /// multiply-compare would have kept. `None` when the PER model admits no
    /// sound radius — or a zero one, where culling already rejects every
    /// pair — meaning an index cannot help and callers must scan linearly.
    pub fn index_cell_m(&self) -> Option<f64> {
        let r = self.detection_radius_m()?;
        if r > 0.0 {
            let margin = crate::cache::CULL_MARGIN;
            Some(r * margin * margin)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::per::Modulation;
    use rand::SeedableRng;

    #[test]
    fn paper_default_delay_numbers() {
        let ch = AcousticChannel::paper_default();
        assert_eq!(ch.max_propagation_delay(), SimDuration::from_secs(1));
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(750.0, 0.0, 0.0);
        assert_eq!(ch.propagation_delay(a, b), SimDuration::from_millis(500));
    }

    #[test]
    fn delay_is_symmetric() {
        let ch = AcousticChannel::paper_default();
        let a = Point::new(10.0, 20.0, 500.0);
        let b = Point::new(900.0, 40.0, 1_200.0);
        assert_eq!(ch.propagation_delay(a, b), ch.propagation_delay(b, a));
    }

    #[test]
    fn audibility_obeys_range_cutoff() {
        let ch = AcousticChannel::paper_default();
        let a = Point::new(0.0, 0.0, 100.0);
        assert!(ch.is_audible(a, Point::new(1_499.0, 0.0, 100.0)));
        assert!(!ch.is_audible(a, Point::new(1_501.0, 0.0, 100.0)));
    }

    #[test]
    fn range_cutoff_delivery_is_deterministic() {
        let ch = AcousticChannel::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Point::new(0.0, 0.0, 0.0);
        let near = Point::new(1_000.0, 0.0, 0.0);
        let far = Point::new(5_000.0, 0.0, 0.0);
        for _ in 0..32 {
            assert!(ch.draw_delivery(&mut rng, a, near, 2_048));
            assert!(!ch.draw_delivery(&mut rng, a, far, 2_048));
        }
    }

    #[test]
    fn modulation_channel_is_probabilistic_mid_range() {
        let ch = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                140.0, // weak source so mid-range sits in the lossy regime
                TransmissionLoss::new(Spreading::Spherical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::Modulation {
                scheme: Modulation::NcFsk,
                bandwidth_over_bitrate: 1.0,
            },
            1_500.0,
        );
        let a = Point::new(0.0, 0.0, 0.0);
        // Find some distance with a genuinely mixed outcome.
        let mut found_mixed = false;
        // The NC-FSK PER knee is only a few dB wide, so scan finely.
        for d in (50..3_000).step_by(5) {
            let b = Point::new(d as f64, 0.0, 0.0);
            let p = ch.loss_probability(a, b, 512);
            if (0.05..0.95).contains(&p) {
                found_mixed = true;
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                let deliveries = (0..400)
                    .filter(|_| ch.draw_delivery(&mut rng, a, b, 512))
                    .count();
                assert!(
                    deliveries > 0 && deliveries < 400,
                    "expected mixed outcomes at {d} m (p_loss={p}), got {deliveries}/400"
                );
                break;
            }
        }
        assert!(
            found_mixed,
            "no mid-PER distance found — budget misconfigured"
        );
    }

    #[test]
    fn loss_probability_grows_with_packet_size_on_lossy_channel() {
        let ch = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                140.0,
                TransmissionLoss::new(Spreading::Spherical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::Modulation {
                scheme: Modulation::NcFsk,
                bandwidth_over_bitrate: 1.0,
            },
            1_500.0,
        );
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(1_200.0, 0.0, 0.0);
        assert!(ch.loss_probability(a, b, 4_096) >= ch.loss_probability(a, b, 64));
    }

    #[test]
    fn echo_geometry_is_longer_than_direct() {
        let ch = AcousticChannel::paper_default().with_two_ray(6.0);
        let a = Point::new(0.0, 0.0, 800.0);
        let b = Point::new(500.0, 0.0, 600.0);
        assert!(ch.echo_path_m(a, b) > a.distance(b));
        assert!(ch.echo_delay(a, b) > ch.propagation_delay(a, b));
    }

    #[test]
    fn shallow_nodes_have_audible_echoes_deep_ones_do_not() {
        let ch = AcousticChannel::paper_default().with_two_ray(6.0);
        let a = Point::new(0.0, 0.0, 100.0);
        let b = Point::new(300.0, 0.0, 150.0);
        assert!(ch.echo_audible(a, b), "short bounce path stays in range");
        let deep_a = Point::new(0.0, 0.0, 2_000.0);
        let deep_b = Point::new(300.0, 0.0, 2_100.0);
        assert!(
            !ch.echo_audible(deep_a, deep_b),
            "a 4 km bounce exceeds the 1.5 km range"
        );
    }

    #[test]
    fn no_multipath_means_no_echo() {
        let ch = AcousticChannel::paper_default();
        let a = Point::new(0.0, 0.0, 100.0);
        let b = Point::new(200.0, 0.0, 120.0);
        assert!(ch.multipath().is_none());
        assert!(!ch.echo_audible(a, b));
    }

    #[test]
    fn index_cell_exceeds_the_cull_radius_or_is_absent() {
        use crate::cache::CULL_MARGIN;
        let ch = AcousticChannel::paper_default();
        let cell = ch.index_cell_m().expect("range cutoff has a radius");
        let cull = ch.detection_radius_m().unwrap() * CULL_MARGIN;
        assert!(
            cell > cull,
            "cell edge {cell} must clear the cull radius {cull}"
        );

        // Modulation PER has no sound radius, hence no cell size.
        let lossy = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                140.0,
                TransmissionLoss::new(Spreading::Spherical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::Modulation {
                scheme: Modulation::NcFsk,
                bandwidth_over_bitrate: 1.0,
            },
            1_500.0,
        );
        assert_eq!(lossy.index_cell_m(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_panics() {
        let _ = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                170.0,
                TransmissionLoss::new(Spreading::Practical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::default(),
            0.0,
        );
    }
}
