//! Per-pair link-budget memoization for the transmission fan-out hot path.
//!
//! Every transmission in the network simulator asks the channel, for each
//! potential receiver: distance, SNR (which re-evaluates the four-component
//! Wenz noise integral every call), propagation delay, audibility, and —
//! when multipath is configured — the surface-echo geometry. On a static
//! topology none of that changes between transmissions, so
//! [`LinkBudgetCache`] computes each transmitter's audible-receiver row once
//! and replays it until a mobility epoch invalidates it.
//!
//! Correctness contract (enforced by the differential tests in
//! `crates/phy/tests` and the golden-trace suite in `crates/bench/tests`):
//! a cached row must list **exactly** the receivers the uncached loop would
//! visit, in the same (ascending) order, with bit-identical `(distance,
//! snr)` pairs — because the channel RNG is consumed per audible receiver
//! in that order, any divergence desynchronizes the random stream and
//! changes the run.

use uasn_sim::time::SimDuration;

use crate::channel::AcousticChannel;
use crate::geometry::Point;
use crate::grid::SpatialGrid;
use crate::soa::PositionSource;

/// Safety factor applied on top of [`AcousticChannel::detection_radius_m`]
/// before culling a receiver without an exact audibility check.
///
/// The radius is exact for the range-cutoff PER and a 64-iteration bisection
/// for the SNR-threshold PER, so the honest requirement is only "strictly
/// greater than 1"; 5% also absorbs the last-ULP difference between the
/// culling test's squared-distance comparison and the exact
/// `Point::distance` the audibility check uses.
pub const CULL_MARGIN: f64 = 1.05;

/// One memoized transmitter→receiver link.
///
/// `distance_m` and `snr_db` are exactly the values
/// [`AcousticChannel::loss_probability`] would recompute from positions, so
/// feeding them to [`AcousticChannel::draw_delivery_at`] reproduces the
/// uncached delivery draw bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedLink {
    /// Receiver node index.
    pub rx: u32,
    /// Direct-path distance, metres.
    pub distance_m: f64,
    /// Direct-path SNR, dB.
    pub snr_db: f64,
    /// Direct-path propagation delay.
    pub delay: SimDuration,
    /// Surface-echo propagation delay, present iff the echo is audible
    /// under the channel's multipath model.
    pub echo_delay: Option<SimDuration>,
}

/// One transmitter's cached fan-out row.
#[derive(Debug, Clone, Default)]
struct Row {
    /// Epoch the row was built at; 0 means never built (epochs start at 1).
    epoch: u64,
    links: Vec<CachedLink>,
}

/// Lifetime effectiveness counters for a [`LinkBudgetCache`].
///
/// Deterministic for a given run (they count structural decisions, not wall
/// time), so they can ride in profile reports without perturbing anything.
/// Maintained unconditionally: five integer adds per row build are noise
/// next to the noise-integral evaluations they sit beside.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `ensure_row` calls answered by a fresh row (epoch matched).
    pub hits: u64,
    /// `ensure_row` calls that had to (re)build the row.
    pub misses: u64,
    /// `invalidate` calls (mobility epochs).
    pub invalidations: u64,
    /// Candidate receivers rejected by the squared-distance cull during row
    /// builds, skipping the exact link-budget arithmetic.
    pub cull_rejects: u64,
    /// Candidate receivers that survived the cull but failed the exact
    /// audibility check.
    pub audibility_rejects: u64,
}

impl CacheStats {
    /// Fraction of `ensure_row` calls served without a rebuild.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Fraction of rejected candidates the cheap cull caught before the
    /// exact arithmetic ran.
    pub fn cull_rate(&self) -> f64 {
        let rejected = self.cull_rejects + self.audibility_rejects;
        if rejected > 0 {
            self.cull_rejects as f64 / rejected as f64
        } else {
            0.0
        }
    }
}

/// Memoizes each transmitter's audible receivers with their link budgets.
///
/// Rows are built lazily (a node that never transmits never pays) and
/// invalidated in O(1) by bumping the global epoch when node positions
/// change.
///
/// # Examples
///
/// ```
/// use uasn_phy::cache::LinkBudgetCache;
/// use uasn_phy::channel::AcousticChannel;
/// use uasn_phy::geometry::Point;
///
/// let ch = AcousticChannel::paper_default();
/// let positions = vec![
///     Point::new(0.0, 0.0, 100.0),
///     Point::new(1_000.0, 0.0, 100.0),
///     Point::new(9_000.0, 0.0, 100.0), // out of range
/// ];
/// let mut cache = LinkBudgetCache::new(&ch, positions.len());
/// cache.ensure_row(&ch, &positions, 0);
/// assert_eq!(cache.row_len(0), 1); // only node 1 is audible
/// assert_eq!(cache.link_at(0, 0).rx, 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinkBudgetCache {
    epoch: u64,
    /// Squared cull radius (margin applied), `None` when the PER model
    /// admits no sound bound and every pair needs an exact check.
    cull_radius_sq: Option<f64>,
    rows: Vec<Row>,
    stats: CacheStats,
    /// Optional spatial index: when present, row builds visit only the
    /// 27-cell neighbourhood around the transmitter instead of all N nodes.
    grid: Option<SpatialGrid>,
    /// Scratch buffer for grid candidate queries (kept to avoid a per-build
    /// allocation).
    scratch: Vec<u32>,
}

impl LinkBudgetCache {
    /// Creates an empty cache for `node_count` nodes, deriving the culling
    /// radius from the channel's PER model.
    pub fn new(channel: &AcousticChannel, node_count: usize) -> Self {
        let cull_radius_sq = channel.detection_radius_m().map(|r| {
            let padded = r * CULL_MARGIN;
            padded * padded
        });
        LinkBudgetCache {
            epoch: 1,
            cull_radius_sq,
            rows: vec![Row::default(); node_count],
            stats: CacheStats::default(),
            grid: None,
            scratch: Vec::new(),
        }
    }

    /// Like [`LinkBudgetCache::new`], but additionally builds a
    /// [`SpatialGrid`] over `positions` so row builds only visit
    /// candidate-neighbour cells.
    ///
    /// When the channel's PER model admits no sound detection radius (see
    /// [`AcousticChannel::index_cell_m`]) no grid is built and the cache
    /// behaves exactly like the unindexed one — every pair gets an exact
    /// check. Either way, rows (and therefore the channel-RNG consumption of
    /// anything replaying them) are bit-identical to the unindexed cache's.
    pub fn with_index<P: PositionSource + ?Sized>(
        channel: &AcousticChannel,
        positions: &P,
    ) -> Self {
        let mut cache = Self::new(channel, positions.node_count());
        cache.grid = channel
            .index_cell_m()
            .map(|cell_m| SpatialGrid::build(cell_m, positions));
        cache
    }

    /// Whether a spatial index is attached.
    pub fn has_index(&self) -> bool {
        self.grid.is_some()
    }

    /// Re-bins `node` in the spatial index after a position change. A no-op
    /// without an index. Callers must still [`invalidate`](Self::invalidate)
    /// once per mobility epoch; this only keeps the index itself fresh.
    pub fn note_move(&mut self, node: u32, p: Point) {
        if let Some(grid) = &mut self.grid {
            grid.note_move(node, p);
        }
    }

    /// Current mobility epoch (starts at 1; rows stamped with an older
    /// epoch are stale).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidates every row in O(1); call after any position update.
    pub fn invalidate(&mut self) {
        self.epoch += 1;
        self.stats.invalidations += 1;
    }

    /// Lifetime effectiveness counters (hits, misses, cull rejects, ...).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Builds (or refreshes) transmitter `tx`'s row from current positions.
    ///
    /// The row enumerates receivers in ascending index order — the same
    /// order the uncached fan-out visits them — keeping every receiver the
    /// uncached loop would keep and nothing else. The cull radius only
    /// short-circuits pairs that are provably inaudible; every surviving
    /// pair still goes through the exact audibility arithmetic. With a
    /// spatial index attached, nodes outside the transmitter's 27-cell
    /// neighbourhood are skipped without even the squared-distance test —
    /// the cell edge exceeds the cull radius, so every skipped node is one
    /// the cull would have rejected, and it is counted as such to keep the
    /// statistics layout-independent.
    pub fn ensure_row<P: PositionSource + ?Sized>(
        &mut self,
        channel: &AcousticChannel,
        positions: &P,
        tx: usize,
    ) {
        let n = positions.node_count();
        if self.rows.len() != n {
            self.rows.resize(n, Row::default());
        }
        if self.rows[tx].epoch == self.epoch {
            self.stats.hits += 1;
            return;
        }
        self.stats.misses += 1;
        self.rows[tx].links.clear();
        let from = positions.position(tx);
        if let Some(grid) = &self.grid {
            debug_assert_eq!(
                grid.node_count(),
                n,
                "spatial index covers a different node set"
            );
            let mut scratch = std::mem::take(&mut self.scratch);
            grid.candidates_into(from, &mut scratch);
            // Everything the neighbourhood query skipped is provably beyond
            // the cull radius (cell edge > cull radius); account for it as a
            // cull so stats match the unindexed build exactly. `tx` itself
            // is always among the candidates, so the skip count never
            // includes it.
            self.stats.cull_rejects += (n - scratch.len()) as u64;
            for &cand in &scratch {
                let j = cand as usize;
                self.consider_link(channel, from, positions.position(j), tx, j);
            }
            scratch.clear();
            self.scratch = scratch;
        } else {
            for j in 0..n {
                self.consider_link(channel, from, positions.position(j), tx, j);
            }
        }
        self.rows[tx].epoch = self.epoch;
    }

    /// One candidate-receiver step of a row build: cull, exact audibility,
    /// then append. Shared verbatim between the indexed and linear scans so
    /// they cannot drift apart.
    #[inline]
    fn consider_link(
        &mut self,
        channel: &AcousticChannel,
        from: Point,
        to: Point,
        tx: usize,
        j: usize,
    ) {
        if j == tx {
            return;
        }
        if let Some(r2) = self.cull_radius_sq {
            let dx = from.x - to.x;
            let dy = from.y - to.y;
            let dz = from.z - to.z;
            if dx * dx + dy * dy + dz * dz > r2 {
                self.stats.cull_rejects += 1;
                return;
            }
        }
        let distance_m = from.distance(to);
        let snr_db = channel.budget().snr_db(distance_m);
        // Same arithmetic as `AcousticChannel::is_audible`, reusing the
        // distance and SNR just computed.
        if channel.loss_probability_at(distance_m, snr_db, 1) >= 1.0 {
            self.stats.audibility_rejects += 1;
            return;
        }
        let echo_delay = channel
            .echo_audible(from, to)
            .then(|| channel.echo_delay(from, to));
        self.rows[tx].links.push(CachedLink {
            rx: j as u32,
            distance_m,
            snr_db,
            delay: channel.propagation_delay(from, to),
            echo_delay,
        });
    }

    /// Number of audible receivers in `tx`'s row (the node's degree).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the row is stale — call
    /// [`ensure_row`](Self::ensure_row) first.
    pub fn row_len(&self, tx: usize) -> usize {
        debug_assert_eq!(self.rows[tx].epoch, self.epoch, "row {tx} is stale");
        self.rows[tx].links.len()
    }

    /// The `k`-th cached link of transmitter `tx`.
    ///
    /// Returned by value (`CachedLink` is `Copy`) so callers can interleave
    /// lookups with mutation of their own state during the fan-out.
    pub fn link_at(&self, tx: usize, k: usize) -> CachedLink {
        debug_assert_eq!(self.rows[tx].epoch, self.epoch, "row {tx} is stale");
        self.rows[tx].links[k]
    }

    /// The full row as a slice (for tests and bulk inspection).
    pub fn row(&self, tx: usize) -> &[CachedLink] {
        debug_assert_eq!(self.rows[tx].epoch, self.epoch, "row {tx} is stale");
        &self.rows[tx].links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing_m: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing_m, 0.0, 500.0))
            .collect()
    }

    #[test]
    fn row_matches_uncached_audible_set_in_order() {
        let ch = AcousticChannel::paper_default();
        let positions = line(8, 600.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        for tx in 0..positions.len() {
            cache.ensure_row(&ch, &positions, tx);
            let expected: Vec<u32> = (0..positions.len())
                .filter(|&j| j != tx && ch.is_audible(positions[tx], positions[j]))
                .map(|j| j as u32)
                .collect();
            let got: Vec<u32> = cache.row(tx).iter().map(|l| l.rx).collect();
            assert_eq!(got, expected, "tx {tx}");
        }
    }

    #[test]
    fn cached_values_are_bit_identical_to_recomputation() {
        let ch = AcousticChannel::paper_default();
        let positions = line(6, 700.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        cache.ensure_row(&ch, &positions, 2);
        for link in cache.row(2) {
            let to = positions[link.rx as usize];
            let d = positions[2].distance(to);
            assert_eq!(link.distance_m.to_bits(), d.to_bits());
            assert_eq!(link.snr_db.to_bits(), ch.budget().snr_db(d).to_bits());
            assert_eq!(link.delay, ch.propagation_delay(positions[2], to));
        }
    }

    #[test]
    fn invalidate_rebuilds_after_positions_move() {
        let ch = AcousticChannel::paper_default();
        let mut positions = line(3, 1_000.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        cache.ensure_row(&ch, &positions, 0);
        assert_eq!(cache.row_len(0), 1, "only the 1 km neighbour is audible");
        // Node 2 drifts into range; without invalidation the row is stale
        // by design, after invalidation it must pick the move up.
        positions[2] = Point::new(1_400.0, 0.0, 500.0);
        cache.invalidate();
        cache.ensure_row(&ch, &positions, 0);
        assert_eq!(cache.row_len(0), 2);
    }

    #[test]
    fn stats_count_hits_misses_and_rejects() {
        let ch = AcousticChannel::paper_default();
        // 600 m spacing: near neighbours audible, the far end of the line
        // beyond the cull radius.
        let positions = line(10, 600.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        assert_eq!(cache.stats(), CacheStats::default());

        cache.ensure_row(&ch, &positions, 0);
        let built = cache.stats();
        assert_eq!((built.hits, built.misses), (0, 1));
        assert!(
            built.cull_rejects > 0,
            "the 5.4 km end of the line must be culled: {built:?}"
        );

        // Replays are pure hits; nothing else moves.
        cache.ensure_row(&ch, &positions, 0);
        cache.ensure_row(&ch, &positions, 0);
        let replayed = cache.stats();
        assert_eq!(replayed.hits, 2);
        assert_eq!(replayed.misses, built.misses);
        assert_eq!(replayed.cull_rejects, built.cull_rejects);
        assert!(replayed.hit_rate() > 0.6 && replayed.hit_rate() < 0.7);

        // Invalidation is counted and forces a rebuild.
        cache.invalidate();
        cache.ensure_row(&ch, &positions, 0);
        let rebuilt = cache.stats();
        assert_eq!(rebuilt.invalidations, 1);
        assert_eq!(rebuilt.misses, 2);
    }

    #[test]
    fn no_cull_bound_means_no_cull_rejects() {
        use crate::noise::AmbientNoise;
        use crate::per::{Modulation, PerModel};
        use crate::propagation::{LinkBudget, Spreading, TransmissionLoss};
        use crate::sound::SoundSpeedProfile;

        let ch = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                140.0,
                TransmissionLoss::new(Spreading::Spherical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::Modulation {
                scheme: Modulation::NcFsk,
                bandwidth_over_bitrate: 1.0,
            },
            1_500.0,
        );
        assert_eq!(ch.detection_radius_m(), None);
        let positions = line(5, 2_000.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        cache.ensure_row(&ch, &positions, 0);
        let stats = cache.stats();
        assert_eq!(stats.cull_rejects, 0, "no radius, nothing to cull");
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn empty_stats_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.cull_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            cull_rejects: 9,
            audibility_rejects: 3,
            ..CacheStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.cull_rate(), 0.75);
    }

    #[test]
    fn echo_delays_cached_when_multipath_enabled() {
        let ch = AcousticChannel::paper_default().with_two_ray(6.0);
        let positions = vec![Point::new(0.0, 0.0, 100.0), Point::new(300.0, 0.0, 150.0)];
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        cache.ensure_row(&ch, &positions, 0);
        let link = cache.link_at(0, 0);
        assert_eq!(
            link.echo_delay,
            Some(ch.echo_delay(positions[0], positions[1]))
        );
        // Without multipath no echo is ever recorded.
        let dry = AcousticChannel::paper_default();
        let mut cache = LinkBudgetCache::new(&dry, positions.len());
        cache.ensure_row(&dry, &positions, 0);
        assert_eq!(cache.link_at(0, 0).echo_delay, None);
    }

    #[test]
    fn modulation_per_disables_culling_but_row_is_still_exact() {
        use crate::noise::AmbientNoise;
        use crate::per::{Modulation, PerModel};
        use crate::propagation::{LinkBudget, Spreading, TransmissionLoss};
        use crate::sound::SoundSpeedProfile;

        let ch = AcousticChannel::new(
            SoundSpeedProfile::default(),
            LinkBudget::new(
                140.0,
                TransmissionLoss::new(Spreading::Spherical, 10.0),
                AmbientNoise::default(),
                12_000.0,
            ),
            PerModel::Modulation {
                scheme: Modulation::NcFsk,
                bandwidth_over_bitrate: 1.0,
            },
            1_500.0,
        );
        assert_eq!(ch.detection_radius_m(), None);
        let positions = line(5, 2_000.0);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        cache.ensure_row(&ch, &positions, 0);
        // Probabilistic PER never reaches loss 1: everyone is audible.
        assert_eq!(cache.row_len(0), positions.len() - 1);
    }
}
