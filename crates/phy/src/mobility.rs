//! Node mobility.
//!
//! The paper's location models (§5): *"non-moved, moved horizontal, or moved
//! vertical. The location of each sensor is changed by randomly selecting
//! one of these models."* We implement exactly those three plus a bounded
//! random-walk extension, with drift magnitudes typical of slow ocean
//! currents. Positions are updated at a fixed cadence by the simulator and
//! clamped to the deployment region.

use rand::Rng;

use crate::geometry::{Point, Region};

/// Which way a node drifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Anchored; never moves (paper: "non-moved").
    Static,
    /// Horizontal drift at fixed speed on a fixed surface heading
    /// (paper: "moved horizontal").
    Horizontal {
        /// Drift speed, m/s.
        speed_ms: f64,
        /// Heading in radians (0 = +x).
        heading_rad: f64,
    },
    /// Vertical drift (paper: "moved vertical"); positive speed sinks.
    Vertical {
        /// Drift speed, m/s; positive moves deeper.
        speed_ms: f64,
    },
    /// Extension: random walk re-drawing a horizontal heading each step.
    RandomWalk {
        /// Drift speed, m/s.
        speed_ms: f64,
    },
}

impl MobilityModel {
    /// Draws one of the paper's three models uniformly at random, with a
    /// drift speed drawn from `0.1..=max_speed_ms` for the moving variants.
    ///
    /// # Panics
    ///
    /// Panics if `max_speed_ms` is not finite and positive.
    pub fn random_paper_model<R: Rng>(rng: &mut R, max_speed_ms: f64) -> Self {
        assert!(
            max_speed_ms.is_finite() && max_speed_ms > 0.0,
            "max speed must be finite and positive, got {max_speed_ms}"
        );
        let speed = rng.gen_range(0.1..=max_speed_ms.max(0.1 + f64::EPSILON));
        match rng.gen_range(0..3u8) {
            0 => MobilityModel::Static,
            1 => MobilityModel::Horizontal {
                speed_ms: speed,
                heading_rad: rng.gen_range(0.0..std::f64::consts::TAU),
            },
            _ => MobilityModel::Vertical {
                // Sink or rise with equal probability.
                speed_ms: if rng.gen_bool(0.5) { speed } else { -speed },
            },
        }
    }

    /// Advances `position` by `dt_secs` seconds of drift, clamped to
    /// `region`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` is negative or not finite.
    pub fn step<R: Rng>(
        &self,
        rng: &mut R,
        position: Point,
        region: &Region,
        dt_secs: f64,
    ) -> Point {
        assert!(
            dt_secs.is_finite() && dt_secs >= 0.0,
            "time step must be finite and non-negative, got {dt_secs}"
        );
        let moved = match *self {
            MobilityModel::Static => position,
            MobilityModel::Horizontal {
                speed_ms,
                heading_rad,
            } => Point::new(
                position.x + speed_ms * heading_rad.cos() * dt_secs,
                position.y + speed_ms * heading_rad.sin() * dt_secs,
                position.z,
            ),
            MobilityModel::Vertical { speed_ms } => {
                Point::new(position.x, position.y, position.z + speed_ms * dt_secs)
            }
            MobilityModel::RandomWalk { speed_ms } => {
                let heading = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::new(
                    position.x + speed_ms * heading.cos() * dt_secs,
                    position.y + speed_ms * heading.sin() * dt_secs,
                    position.z,
                )
            }
        };
        region.clamp(moved)
    }

    /// Whether this model ever changes position.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, MobilityModel::Static)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn region() -> Region {
        Region::new(10_000.0, 10_000.0, 10_000.0)
    }

    #[test]
    fn static_never_moves() {
        let p = Point::new(100.0, 200.0, 300.0);
        let out = MobilityModel::Static.step(&mut rng(), p, &region(), 1_000.0);
        assert_eq!(out, p);
        assert!(!MobilityModel::Static.is_mobile());
    }

    #[test]
    fn horizontal_moves_along_heading_only() {
        let p = Point::new(100.0, 100.0, 500.0);
        let m = MobilityModel::Horizontal {
            speed_ms: 2.0,
            heading_rad: 0.0,
        };
        let out = m.step(&mut rng(), p, &region(), 10.0);
        assert!((out.x - 120.0).abs() < 1e-9);
        assert!((out.y - 100.0).abs() < 1e-9);
        assert_eq!(out.z, 500.0);
        assert!(m.is_mobile());
    }

    #[test]
    fn vertical_changes_depth_only() {
        let p = Point::new(100.0, 100.0, 500.0);
        let sink = MobilityModel::Vertical { speed_ms: 0.5 };
        let out = sink.step(&mut rng(), p, &region(), 100.0);
        assert_eq!((out.x, out.y), (100.0, 100.0));
        assert!((out.z - 550.0).abs() < 1e-9);

        let rise = MobilityModel::Vertical { speed_ms: -0.5 };
        let out = rise.step(&mut rng(), p, &region(), 100.0);
        assert!((out.z - 450.0).abs() < 1e-9);
    }

    #[test]
    fn drift_is_clamped_to_region() {
        let p = Point::new(9_990.0, 100.0, 500.0);
        let m = MobilityModel::Horizontal {
            speed_ms: 10.0,
            heading_rad: 0.0,
        };
        let out = m.step(&mut rng(), p, &region(), 1_000.0);
        assert_eq!(out.x, 10_000.0);
    }

    #[test]
    fn random_walk_moves_at_speed() {
        let p = Point::new(5_000.0, 5_000.0, 500.0);
        let m = MobilityModel::RandomWalk { speed_ms: 1.0 };
        let out = m.step(&mut rng(), p, &region(), 60.0);
        let dist = p.distance(out);
        assert!((dist - 60.0).abs() < 1e-6, "walked {dist}");
        assert_eq!(out.z, 500.0);
    }

    #[test]
    fn random_paper_model_covers_all_variants() {
        let mut rng = rng();
        let mut saw = [false; 3];
        for _ in 0..200 {
            match MobilityModel::random_paper_model(&mut rng, 1.0) {
                MobilityModel::Static => saw[0] = true,
                MobilityModel::Horizontal { speed_ms, .. } => {
                    assert!(speed_ms > 0.0 && speed_ms <= 1.0);
                    saw[1] = true;
                }
                MobilityModel::Vertical { speed_ms } => {
                    assert!(speed_ms.abs() > 0.0 && speed_ms.abs() <= 1.0);
                    saw[2] = true;
                }
                MobilityModel::RandomWalk { .. } => unreachable!("paper models only"),
            }
        }
        assert!(
            saw.iter().all(|&s| s),
            "all three paper models drawn: {saw:?}"
        );
    }

    #[test]
    fn zero_dt_is_identity() {
        let p = Point::new(1.0, 2.0, 3.0);
        let m = MobilityModel::Horizontal {
            speed_ms: 5.0,
            heading_rad: 1.0,
        };
        assert_eq!(m.step(&mut rng(), p, &region(), 0.0), p);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dt_panics() {
        MobilityModel::Static.step(&mut rng(), Point::default(), &region(), -1.0);
    }
}
