//! Differential properties of [`LinkBudgetCache`] against direct channel
//! recomputation, over random topologies and all three PER models.
//!
//! The cache feeds the network layer's fan-out fast path, whose determinism
//! contract is exact: the cached row must contain **exactly** the receivers
//! the uncached loop would visit, in ascending order, with bit-identical
//! link budgets — otherwise the channel RNG stream desynchronizes and runs
//! diverge. These properties pin each clause of that contract, including
//! the one the acceptance gate singles out: acoustic-range culling never
//! drops a receiver whose packet-error rate is below 1.

use proptest::prelude::*;

use uasn_phy::cache::{LinkBudgetCache, CULL_MARGIN};
use uasn_phy::channel::AcousticChannel;
use uasn_phy::geometry::Point;
use uasn_phy::noise::AmbientNoise;
use uasn_phy::per::{Modulation, PerModel};
use uasn_phy::propagation::{LinkBudget, Spreading, TransmissionLoss};
use uasn_phy::sound::SoundSpeedProfile;

/// A channel for PER-model index `model` (0 = range cutoff, 1 = SNR
/// threshold, 2 = probabilistic modulation), with a configurable cutoff so
/// the proptest sweep exercises different audible-set shapes.
fn channel_for(model: u8, cutoff: f64) -> AcousticChannel {
    let per = match model {
        0 => PerModel::RangeCutoff { range_m: cutoff },
        1 => PerModel::SnrThreshold {
            threshold_db: cutoff / 100.0,
        },
        _ => PerModel::Modulation {
            scheme: Modulation::NcFsk,
            bandwidth_over_bitrate: 1.0,
        },
    };
    AcousticChannel::new(
        SoundSpeedProfile::default(),
        LinkBudget::new(
            170.0,
            TransmissionLoss::new(Spreading::Spherical, 10.0),
            AmbientNoise::default(),
            12_000.0,
        ),
        per,
        1_500.0,
    )
}

/// Random node positions inside a 6 km × 6 km × 1 km box.
fn positions_strategy() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..6_000.0, 0.0f64..6_000.0, 0.0f64..1_000.0), 2..12).prop_map(
        |coords| {
            coords
                .into_iter()
                .map(|(x, y, z)| Point::new(x, y, z))
                .collect()
        },
    )
}

proptest! {
    /// The row is exactly the uncached audible set, ascending, and the
    /// cached numbers are the recomputed numbers to the last ULP.
    #[test]
    fn cached_rows_match_direct_recomputation(
        positions in positions_strategy(),
        model in 0u8..3,
        cutoff in 400.0f64..4_000.0,
    ) {
        let ch = channel_for(model, cutoff);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        for tx in 0..positions.len() {
            cache.ensure_row(&ch, &positions, tx);
            let from = positions[tx];
            let expected: Vec<usize> = (0..positions.len())
                .filter(|&j| j != tx && ch.is_audible(from, positions[j]))
                .collect();
            let got: Vec<usize> =
                cache.row(tx).iter().map(|l| l.rx as usize).collect();
            prop_assert_eq!(&got, &expected, "audible set mismatch for tx {}", tx);
            for link in cache.row(tx) {
                let to = positions[link.rx as usize];
                let d = from.distance(to);
                prop_assert_eq!(link.distance_m.to_bits(), d.to_bits());
                prop_assert_eq!(
                    link.snr_db.to_bits(),
                    ch.budget().snr_db(d).to_bits()
                );
                prop_assert_eq!(link.delay, ch.propagation_delay(from, to));
                prop_assert_eq!(link.echo_delay, None, "no multipath configured");
            }
        }
    }

    /// Culling soundness: no receiver with a packet-error rate below 1 is
    /// ever culled, for any PER model and any geometry.
    #[test]
    fn culling_never_drops_a_deliverable_receiver(
        positions in positions_strategy(),
        model in 0u8..3,
        cutoff in 400.0f64..4_000.0,
        bits in 1u32..2_048,
    ) {
        let ch = channel_for(model, cutoff);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        for tx in 0..positions.len() {
            cache.ensure_row(&ch, &positions, tx);
            let from = positions[tx];
            for (j, &to) in positions.iter().enumerate() {
                if j == tx {
                    continue;
                }
                if ch.loss_probability(from, to, bits) < 1.0 {
                    prop_assert!(
                        cache.row(tx).iter().any(|l| l.rx as usize == j),
                        "tx {} culled deliverable receiver {}", tx, j
                    );
                }
            }
        }
    }

    /// The padded cull radius really over-approximates the detection
    /// radius: anything audible sits inside it, with margin to spare.
    #[test]
    fn detection_radius_bounds_every_audible_pair(
        positions in positions_strategy(),
        model in 0u8..2, // only the deterministic models define a radius
        cutoff in 400.0f64..4_000.0,
    ) {
        let ch = channel_for(model, cutoff);
        prop_assume!(ch.detection_radius_m().is_some());
        let radius = ch.detection_radius_m().unwrap();
        for (i, &from) in positions.iter().enumerate() {
            for (j, &to) in positions.iter().enumerate() {
                if i != j && ch.is_audible(from, to) {
                    prop_assert!(
                        from.distance(to) <= radius * CULL_MARGIN,
                        "audible pair ({}, {}) at {} m outside padded radius {} m",
                        i, j, from.distance(to), radius * CULL_MARGIN
                    );
                }
            }
        }
    }

    /// Echo delays are cached exactly when the channel's multipath model
    /// makes the surface echo audible.
    #[test]
    fn multipath_rows_cache_exact_echo_delays(
        positions in positions_strategy(),
        surface_loss_db in 1.0f64..12.0,
    ) {
        let ch = channel_for(0, 2_500.0).with_two_ray(surface_loss_db);
        let mut cache = LinkBudgetCache::new(&ch, positions.len());
        for tx in 0..positions.len() {
            cache.ensure_row(&ch, &positions, tx);
            let from = positions[tx];
            for link in cache.row(tx) {
                let to = positions[link.rx as usize];
                let expected = ch
                    .echo_audible(from, to)
                    .then(|| ch.echo_delay(from, to));
                prop_assert_eq!(link.echo_delay, expected);
            }
        }
    }
}
