//! Differential properties of the spatial grid index against the
//! brute-force O(N) scan, over random geometries and all three PER models.
//!
//! The index accelerates [`LinkBudgetCache`] row builds by visiting only
//! the transmitter's 27-cell neighbourhood. Its contract is exact: for any
//! geometry, mobility history, and PER model, the indexed cache must
//! produce **bit-identical** rows — same receivers, same order, same link
//! budgets, same statistics — as the unindexed cache, because the network
//! layer's channel-RNG stream is consumed per row entry. These properties
//! pin the two clauses the acceptance gate singles out: the candidate set
//! is always a superset of the audible set (no receiver with PER < 1 is
//! ever skipped), and indexed rows equal brute-force rows exactly.

use proptest::prelude::*;

use uasn_phy::cache::LinkBudgetCache;
use uasn_phy::channel::AcousticChannel;
use uasn_phy::geometry::Point;
use uasn_phy::grid::SpatialGrid;
use uasn_phy::noise::AmbientNoise;
use uasn_phy::per::{Modulation, PerModel};
use uasn_phy::propagation::{LinkBudget, Spreading, TransmissionLoss};
use uasn_phy::soa::PositionTable;
use uasn_phy::sound::SoundSpeedProfile;

/// A channel for PER-model index `model` (0 = range cutoff, 1 = SNR
/// threshold, 2 = probabilistic modulation), with a configurable cutoff so
/// the sweep exercises different audible-set shapes. The modulation model
/// admits no detection radius, so `with_index` must degrade to the
/// unindexed scan there — the properties cover that path too.
fn channel_for(model: u8, cutoff: f64) -> AcousticChannel {
    let per = match model {
        0 => PerModel::RangeCutoff { range_m: cutoff },
        1 => PerModel::SnrThreshold {
            threshold_db: cutoff / 100.0,
        },
        _ => PerModel::Modulation {
            scheme: Modulation::NcFsk,
            bandwidth_over_bitrate: 1.0,
        },
    };
    AcousticChannel::new(
        SoundSpeedProfile::default(),
        LinkBudget::new(
            170.0,
            TransmissionLoss::new(Spreading::Spherical, 10.0),
            AmbientNoise::default(),
            12_000.0,
        ),
        per,
        1_500.0,
    )
}

/// Raw per-node draws: `(x, y, depth fraction, layer jitter)`.
fn raw_nodes() -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (0.0f64..4_000.0, 0.0f64..4_000.0, 0.0f64..1.0, -0.2f64..0.2),
        2..14,
    )
}

/// Realizes one of the two geometry families from raw node draws:
/// `geom == 0` is a uniform 6 km × 6 km × 1 km box, `geom == 1` a
/// layered column (nodes snapped to depth layers with ±20% jitter — the
/// paper's Figure-1 deployment family, whose stratified depths stress grid
/// binning along one axis).
fn build_geometry(geom: u8, layers: u32, spacing: f64, raw: &[(f64, f64, f64, f64)]) -> Vec<Point> {
    raw.iter()
        .map(|&(x, y, u, jitter)| {
            if geom == 0 {
                Point::new(x * 1.5, y * 1.5, u * 1_000.0)
            } else {
                let layer = (u * layers as f64).floor().min(layers as f64 - 1.0);
                Point::new(x, y, (layer + 1.0 + jitter) * spacing)
            }
        })
        .collect()
}

/// Bounded per-node displacements standing in for mobility-epoch steps.
fn moves() -> impl Strategy<Value = Vec<(usize, f64, f64, f64)>> {
    proptest::collection::vec(
        (
            0usize..14,
            -800.0f64..800.0,
            -800.0f64..800.0,
            -200.0f64..200.0,
        ),
        0..8,
    )
}

/// Asserts two caches hold bit-identical rows and statistics for every
/// transmitter (rows must already be built on both). Panics on divergence,
/// which the proptest runner reports with the failing case's seed.
fn assert_rows_identical(a: &LinkBudgetCache, b: &LinkBudgetCache, n: usize) {
    for tx in 0..n {
        let (ra, rb) = (a.row(tx), b.row(tx));
        assert_eq!(ra.len(), rb.len(), "row length mismatch for tx {tx}");
        for (la, lb) in ra.iter().zip(rb.iter()) {
            assert_eq!(la.rx, lb.rx, "receiver set diverged for tx {tx}");
            assert_eq!(la.distance_m.to_bits(), lb.distance_m.to_bits());
            assert_eq!(la.snr_db.to_bits(), lb.snr_db.to_bits());
            assert_eq!(la.delay, lb.delay);
            assert_eq!(la.echo_delay, lb.echo_delay);
        }
    }
    assert_eq!(a.stats(), b.stats(), "cache statistics diverged");
}

proptest! {
    /// Grid candidate sets are a superset of the brute-force audible set:
    /// for arbitrary geometry and any PER model that admits an index, no
    /// receiver with packet-error rate < 1 is outside the transmitter's
    /// 27-cell neighbourhood.
    #[test]
    fn candidates_are_a_superset_of_the_audible_set(
        geom in 0u8..2,
        layers in 2u32..6,
        spacing in 300.0f64..1_200.0,
        raw in raw_nodes(),
        model in 0u8..2, // the probabilistic model builds no index
        cutoff in 400.0f64..4_000.0,
        bits in 1u32..2_048,
    ) {
        let positions = build_geometry(geom, layers, spacing, &raw);
        let ch = channel_for(model, cutoff);
        prop_assume!(ch.index_cell_m().is_some());
        let grid = SpatialGrid::build(ch.index_cell_m().unwrap(), positions.as_slice());
        let mut cand = Vec::new();
        for tx in 0..positions.len() {
            grid.candidates_into(positions[tx], &mut cand);
            for (j, &to) in positions.iter().enumerate() {
                if j == tx {
                    continue;
                }
                if ch.loss_probability(positions[tx], to, bits) < 1.0 {
                    prop_assert!(
                        cand.binary_search(&(j as u32)).is_ok(),
                        "grid dropped deliverable receiver {} of tx {}", j, tx
                    );
                }
            }
        }
    }

    /// Indexed and unindexed caches produce bit-identical rows and
    /// statistics on static geometries, for all three PER models.
    #[test]
    fn indexed_rows_match_brute_force_rows(
        geom in 0u8..2,
        layers in 2u32..6,
        spacing in 300.0f64..1_200.0,
        raw in raw_nodes(),
        model in 0u8..3,
        cutoff in 400.0f64..4_000.0,
    ) {
        let positions = build_geometry(geom, layers, spacing, &raw);
        let ch = channel_for(model, cutoff);
        let mut plain = LinkBudgetCache::new(&ch, positions.len());
        let mut indexed = LinkBudgetCache::with_index(&ch, &positions);
        prop_assert_eq!(indexed.has_index(), ch.index_cell_m().is_some());
        for tx in 0..positions.len() {
            plain.ensure_row(&ch, &positions, tx);
            indexed.ensure_row(&ch, &positions, tx);
        }
        assert_rows_identical(&plain, &indexed, positions.len());
    }

    /// Mobility epochs: after arbitrary moves kept fresh via `note_move` +
    /// `invalidate`, the incrementally maintained index still yields rows
    /// bit-identical to both a fresh unindexed cache and a fresh index
    /// built from the final geometry.
    #[test]
    fn incremental_index_survives_mobility_epochs(
        geom in 0u8..2,
        layers in 2u32..6,
        spacing in 300.0f64..1_200.0,
        raw in raw_nodes(),
        model in 0u8..3,
        cutoff in 400.0f64..4_000.0,
        steps in moves(),
    ) {
        let mut positions = build_geometry(geom, layers, spacing, &raw);
        let ch = channel_for(model, cutoff);
        let n = positions.len();
        let mut incremental = LinkBudgetCache::with_index(&ch, &positions);
        // Warm every row so the epoch bumps below really exercise stale
        // invalidation, not first builds.
        for tx in 0..n {
            incremental.ensure_row(&ch, &positions, tx);
        }
        for &(node, dx, dy, dz) in &steps {
            let node = node % n;
            let p = positions[node];
            let moved = Point::new(p.x + dx, p.y + dy, (p.z + dz).max(0.0));
            positions[node] = moved;
            incremental.note_move(node as u32, moved);
            incremental.invalidate();
        }
        let mut fresh_plain = LinkBudgetCache::new(&ch, n);
        let mut fresh_indexed = LinkBudgetCache::with_index(&ch, &positions);
        for tx in 0..n {
            incremental.ensure_row(&ch, &positions, tx);
            fresh_plain.ensure_row(&ch, &positions, tx);
            fresh_indexed.ensure_row(&ch, &positions, tx);
        }
        // Lifetime stats necessarily differ (the incremental cache lived
        // through the epochs), so compare its rows only, then the two
        // fresh caches in full.
        for tx in 0..n {
            let (ri, rf) = (incremental.row(tx), fresh_indexed.row(tx));
            prop_assert_eq!(ri.len(), rf.len(), "row length mismatch for tx {}", tx);
            for (a, b) in ri.iter().zip(rf.iter()) {
                prop_assert_eq!(a.rx, b.rx);
                prop_assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
            }
        }
        assert_rows_identical(&fresh_plain, &fresh_indexed, n);
    }

    /// The struct-of-arrays position table drives the cache to the exact
    /// rows the `Vec<Point>` layout produces: layout is invisible to the
    /// link-budget arithmetic.
    #[test]
    fn soa_layout_is_bit_identical_to_aos(
        geom in 0u8..2,
        layers in 2u32..6,
        spacing in 300.0f64..1_200.0,
        raw in raw_nodes(),
        model in 0u8..3,
        cutoff in 400.0f64..4_000.0,
    ) {
        let positions = build_geometry(geom, layers, spacing, &raw);
        let ch = channel_for(model, cutoff);
        let table = PositionTable::from_points(&positions);
        let mut from_vec = LinkBudgetCache::with_index(&ch, &positions);
        let mut from_table = LinkBudgetCache::with_index(&ch, &table);
        for tx in 0..positions.len() {
            from_vec.ensure_row(&ch, &positions, tx);
            from_table.ensure_row(&ch, &table, tx);
        }
        assert_rows_identical(&from_vec, &from_table, positions.len());
    }
}
