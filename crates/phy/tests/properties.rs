//! Property-based tests for the acoustic PHY: metric symmetry and
//! monotonicity, PER sanity, and the modem's collision ledger checked
//! against a brute-force interval-overlap oracle.

use proptest::prelude::*;

use uasn_phy::channel::AcousticChannel;
use uasn_phy::geometry::{Point, Region};
use uasn_phy::mobility::MobilityModel;
use uasn_phy::modem::Modem;
use uasn_phy::per::{Modulation, PerModel};
use uasn_phy::sound::SoundSpeedProfile;
use uasn_sim::time::SimTime;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..10_000.0, 0.0f64..10_000.0, 0.0f64..5_000.0).prop_map(|(x, y, z)| Point::new(x, y, z))
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(a) < 1e-12);
        // triangle inequality
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn propagation_delay_is_symmetric_and_positive(a in arb_point(), b in arb_point()) {
        let ch = AcousticChannel::paper_default();
        prop_assert_eq!(ch.propagation_delay(a, b), ch.propagation_delay(b, a));
        if a.distance(b) > 1.0 {
            prop_assert!(!ch.propagation_delay(a, b).is_zero());
        }
        // Never exceeds τmax within the nominal range.
        if a.distance(b) <= ch.max_range_m() {
            prop_assert!(ch.propagation_delay(a, b) <= ch.max_propagation_delay());
        }
    }

    #[test]
    fn audibility_matches_range_cutoff(a in arb_point(), b in arb_point()) {
        let ch = AcousticChannel::paper_default();
        prop_assert_eq!(ch.is_audible(a, b), a.distance(b) <= 1_500.0);
        prop_assert_eq!(ch.is_audible(a, b), ch.is_audible(b, a));
    }

    #[test]
    fn snr_never_increases_with_distance(
        d1 in 1.0f64..20_000.0,
        d2 in 1.0f64..20_000.0,
    ) {
        let ch = AcousticChannel::paper_default();
        let a = Point::new(0.0, 0.0, 100.0);
        let near = Point::new(d1.min(d2), 0.0, 100.0);
        let far = Point::new(d1.max(d2), 0.0, 100.0);
        prop_assert!(ch.snr_db(a, near) >= ch.snr_db(a, far) - 1e-9);
    }

    #[test]
    fn per_is_a_probability_and_monotone_in_size(
        snr in -30.0f64..40.0,
        bits_small in 1u32..2_000,
        extra in 1u32..2_000,
    ) {
        let m = PerModel::Modulation {
            scheme: Modulation::NcFsk,
            bandwidth_over_bitrate: 1.0,
        };
        let p_small = m.loss_probability(100.0, snr, bits_small);
        let p_big = m.loss_probability(100.0, snr, bits_small + extra);
        prop_assert!((0.0..=1.0).contains(&p_small));
        prop_assert!((0.0..=1.0).contains(&p_big));
        prop_assert!(p_big >= p_small - 1e-12, "PER must grow with packet size");
    }

    #[test]
    fn ber_is_monotone_in_snr_for_all_schemes(
        lo in 0.0f64..50.0,
        delta in 0.01f64..50.0,
    ) {
        for scheme in [Modulation::Bpsk, Modulation::NcFsk, Modulation::Dpsk] {
            prop_assert!(scheme.ber(lo + delta) <= scheme.ber(lo) + 1e-15);
        }
    }

    /// The modem ledger must agree with a brute-force pairwise interval
    /// overlap oracle: a reception survives iff no other reception (and no
    /// own transmission) overlaps it in time.
    #[test]
    fn modem_ledger_matches_overlap_oracle(
        intervals in proptest::collection::vec((0u64..10_000, 1u64..2_000), 1..20),
    ) {
        let spans: Vec<(u64, u64)> = intervals.iter().map(|&(s, d)| (s, s + d)).collect();

        // Drive the ledger the way the simulator does: begin/end events in
        // chronological order, ends before begins at equal instants
        // (receptions are half-open intervals).
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Kind {
            End,
            Begin,
        }
        let mut events: Vec<(u64, Kind, usize)> = Vec::new();
        for (i, &(s, e)) in spans.iter().enumerate() {
            events.push((s, Kind::Begin, i));
            events.push((e, Kind::End, i));
        }
        events.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));

        let mut m = Modem::new();
        let mut ids = vec![None; spans.len()];
        let mut survived = vec![false; spans.len()];
        for (t, kind, i) in events {
            match kind {
                Kind::Begin => {
                    ids[i] = Some(m.begin_reception(
                        SimTime::from_micros(t),
                        SimTime::from_micros(spans[i].1),
                    ));
                }
                Kind::End => {
                    survived[i] =
                        m.end_reception(SimTime::from_micros(t), ids[i].expect("began"));
                }
            }
        }

        for i in 0..spans.len() {
            let overlaps_any = (0..spans.len()).any(|j| {
                j != i && spans[i].0 < spans[j].1 && spans[j].0 < spans[i].1
            });
            prop_assert_eq!(
                survived[i],
                !overlaps_any,
                "span {} {:?} oracle mismatch", i, spans[i]
            );
        }
    }

    #[test]
    fn mobility_never_escapes_the_region(
        start in arb_point(),
        speed in 0.0f64..10.0,
        heading in 0.0f64..std::f64::consts::TAU,
        dt in 0.0f64..10_000.0,
    ) {
        let region = Region::new(10_000.0, 10_000.0, 5_000.0);
        let start = region.clamp(start);
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        for model in [
            MobilityModel::Static,
            MobilityModel::Horizontal { speed_ms: speed, heading_rad: heading },
            MobilityModel::Vertical { speed_ms: speed },
        ] {
            let moved = model.step(&mut rng, start, &region, dt);
            prop_assert!(region.contains(moved), "{model:?} escaped to {moved}");
        }
    }

    #[test]
    fn mean_speed_lies_between_endpoint_speeds(
        d1 in 0.0f64..5_000.0,
        d2 in 0.0f64..5_000.0,
    ) {
        let ssp = SoundSpeedProfile::Mackenzie {
            temperature_c: 8.0,
            salinity_ppt: 35.0,
        };
        let (a, b) = (ssp.speed_at(d1), ssp.speed_at(d2));
        let mean = ssp.mean_speed(d1, d2);
        prop_assert!(mean >= a.min(b) - 1e-9 && mean <= a.max(b) + 1e-9);
    }
}
