//! Unslotted ALOHA with acknowledgements — not one of the paper's
//! comparison protocols, but the classic sanity floor: transmit the moment
//! you have data, retransmit on a missing Ack with binary exponential
//! backoff. Any slotted collision-avoidance protocol should beat it at
//! moderate-to-high load in a long-propagation-delay channel; the test
//! suite uses it to validate that the simulator punishes unmanaged
//! contention.

use std::collections::VecDeque;

use rand::Rng;

use uasn_net::mac::{MacContext, MacProtocol, MaintenanceProfile, Reception, TimerToken};
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::slots::SlotIndex;
use uasn_sim::time::SimDuration;

/// Ack wait expired.
const TIMER_ACK: TimerToken = TimerToken(30);
/// Backoff expired — transmit now.
const TIMER_RETRY: TimerToken = TimerToken(31);

/// The ALOHA instance bound to one node.
///
/// # Examples
///
/// ```
/// use uasn_baselines::Aloha;
/// use uasn_net::mac::MacProtocol;
/// use uasn_net::node::NodeId;
///
/// let mac = Aloha::new(NodeId::new(0));
/// assert_eq!(mac.name(), "ALOHA");
/// ```
#[derive(Debug)]
pub struct Aloha {
    id: NodeId,
    queue: VecDeque<(Sdu, u32)>,
    /// Data in flight, waiting for an Ack.
    awaiting_ack: bool,
    /// A retry timer is pending.
    backing_off: bool,
    backoff_secs: f64,
    max_retries: u32,
}

impl Aloha {
    /// Creates an ALOHA instance for node `id`.
    pub fn new(id: NodeId) -> Self {
        Aloha {
            id,
            queue: VecDeque::new(),
            awaiting_ack: false,
            backing_off: false,
            backoff_secs: 2.0,
            max_retries: 7,
        }
    }

    fn transmit_head(&mut self, ctx: &mut MacContext<'_>) {
        let Some(&(sdu, retries)) = self.queue.front() else {
            return;
        };
        if self.awaiting_ack || self.backing_off {
            return;
        }
        let mut frame = Frame::data(FrameKind::Data, self.id, sdu);
        if retries > 0 {
            frame = frame.as_retransmission();
        }
        let td = ctx.tx_duration(frame.bits);
        ctx.send_frame_now(frame);
        self.awaiting_ack = true;
        // One round trip at worst-case delay plus the data itself.
        let timeout = td + ctx.clock().tau_max() * 2 + ctx.omega() * 2;
        ctx.set_timer_after(timeout, TIMER_ACK);
    }
}

impl MacProtocol for Aloha {
    fn name(&self) -> &'static str {
        "ALOHA"
    }

    fn maintenance(&self) -> MaintenanceProfile {
        MaintenanceProfile::none()
    }

    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, _slot: SlotIndex) {
        // ALOHA is unslotted; the boundary is just a convenient opportunity
        // to kick a stalled queue.
        self.transmit_head(ctx);
    }

    fn on_enqueue(&mut self, ctx: &mut MacContext<'_>, sdu: Sdu) {
        self.queue.push_back((sdu, 0));
        self.transmit_head(ctx);
    }

    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let frame = rx.frame;
        if !rx.addressed_to(self.id) {
            return;
        }
        match frame.kind {
            FrameKind::Data => {
                let ack = Frame::control(FrameKind::Ack, self.id, frame.src, ctx.control_bits());
                ctx.send_frame_now(ack);
            }
            FrameKind::Ack if self.awaiting_ack => {
                ctx.cancel_timer(TIMER_ACK);
                self.awaiting_ack = false;
                self.backoff_secs = 2.0;
                self.queue.pop_front();
                self.transmit_head(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut MacContext<'_>, token: TimerToken) {
        match token {
            TIMER_ACK => {
                if !self.awaiting_ack {
                    return;
                }
                self.awaiting_ack = false;
                let drop = if let Some(head) = self.queue.front_mut() {
                    head.1 += 1;
                    head.1 > self.max_retries
                } else {
                    false
                };
                if drop {
                    if let Some((sdu, _)) = self.queue.pop_front() {
                        ctx.report_drop(sdu.id);
                    }
                    self.backoff_secs = 2.0;
                    self.transmit_head(ctx);
                } else {
                    self.backing_off = true;
                    let wait = ctx.rng().gen_range(0.0..self.backoff_secs);
                    self.backoff_secs = (self.backoff_secs * 2.0).min(64.0);
                    ctx.set_timer_after(SimDuration::from_secs_f64(wait.max(0.01)), TIMER_RETRY);
                }
            }
            TIMER_RETRY => {
                self.backing_off = false;
                self.transmit_head(ctx);
            }
            _ => {}
        }
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn state_label(&self) -> &'static str {
        if self.awaiting_ack {
            "awaiting-ack"
        } else if self.backing_off {
            "backing-off"
        } else {
            "idle"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uasn_net::mac::MacCommand;
    use uasn_net::slots::SlotClock;
    use uasn_phy::modem::ModemSpec;
    use uasn_sim::time::SimTime;

    fn drive<F: FnOnce(&mut Aloha, &mut MacContext<'_>)>(
        mac: &mut Aloha,
        now: SimTime,
        commands: &mut Vec<MacCommand>,
        f: F,
    ) {
        let mut rng = StdRng::seed_from_u64(1);
        let clock = SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1));
        let mut ctx = MacContext::new(
            now,
            mac.id,
            clock,
            ModemSpec::new(12_000.0),
            64,
            &mut rng,
            commands,
        );
        f(mac, &mut ctx);
    }

    fn sdu(next: u32) -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(0),
            next_hop: NodeId::new(next),
            bits: 2_048,
            created: SimTime::ZERO,
            attempt: 0,
        }
    }

    #[test]
    fn transmits_immediately_on_enqueue() {
        let mut mac = Aloha::new(NodeId::new(0));
        let mut cmds = Vec::new();
        drive(&mut mac, SimTime::ZERO, &mut cmds, |m, ctx| {
            m.on_enqueue(ctx, sdu(5))
        });
        let frames: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c, MacCommand::SendFrame { .. }))
            .collect();
        assert_eq!(frames.len(), 1);
        assert!(mac.awaiting_ack);
    }

    #[test]
    fn acks_incoming_data_and_finishes_on_ack() {
        let mut mac = Aloha::new(NodeId::new(5));
        let mut cmds = Vec::new();
        let mut data = Frame::data(FrameKind::Data, NodeId::new(0), sdu(5));
        data.timestamp = SimTime::ZERO;
        drive(&mut mac, SimTime::from_secs(1), &mut cmds, |m, ctx| {
            let rx = Reception {
                frame: &data,
                arrival_start: SimTime::from_secs(1),
                prop_delay: SimDuration::from_millis(300),
            };
            m.on_frame_received(ctx, &rx);
        });
        let kinds: Vec<FrameKind> = cmds
            .iter()
            .filter_map(|c| match c {
                MacCommand::SendFrame { frame, .. } => Some(frame.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, [FrameKind::Ack]);
    }

    #[test]
    fn ack_timeout_backs_off_then_retries() {
        let mut mac = Aloha::new(NodeId::new(0));
        let mut cmds = Vec::new();
        drive(&mut mac, SimTime::ZERO, &mut cmds, |m, ctx| {
            m.on_enqueue(ctx, sdu(5))
        });
        cmds.clear();
        drive(&mut mac, SimTime::from_secs(4), &mut cmds, |m, ctx| {
            m.on_timer(ctx, TIMER_ACK)
        });
        assert!(mac.backing_off);
        assert_eq!(mac.queue.front().unwrap().1, 1);
        cmds.clear();
        drive(&mut mac, SimTime::from_secs(6), &mut cmds, |m, ctx| {
            m.on_timer(ctx, TIMER_RETRY)
        });
        let retx = cmds.iter().any(|c| {
            matches!(c, MacCommand::SendFrame { frame, .. } if frame.kind == FrameKind::Data && frame.retx)
        });
        assert!(retx, "retransmission flagged");
    }

    #[test]
    fn drops_after_max_retries() {
        let mut mac = Aloha::new(NodeId::new(0));
        mac.max_retries = 0;
        let mut cmds = Vec::new();
        drive(&mut mac, SimTime::ZERO, &mut cmds, |m, ctx| {
            m.on_enqueue(ctx, sdu(5))
        });
        drive(&mut mac, SimTime::from_secs(4), &mut cmds, |m, ctx| {
            m.on_timer(ctx, TIMER_ACK)
        });
        assert_eq!(mac.queue_len(), 0);
    }
}
