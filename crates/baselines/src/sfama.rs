//! Slotted FAMA (Molins & Stojanovic, OCEANS 2006), as characterised in
//! §5 of the paper: the plain slotted RTS/CTS/Data/Ack handshake where
//! *"each transmission reserves a maximal propagation delay"* and no idle
//! window is ever reused. S-FAMA is the paper's baseline for overhead
//! (ratio 1) and efficiency (index 1): it maintains no neighbour state and
//! piggybacks nothing.

use uasn_net::mac::{MacContext, MacProtocol, MaintenanceProfile, Reception};
use uasn_net::node::NodeId;
use uasn_net::packet::Sdu;
use uasn_net::slots::SlotIndex;

use crate::common::{CoreConfig, SlottedCore};

/// The S-FAMA instance bound to one node.
///
/// # Examples
///
/// ```
/// use uasn_baselines::SFama;
/// use uasn_net::mac::MacProtocol;
/// use uasn_net::node::NodeId;
///
/// let mac = SFama::new(NodeId::new(0));
/// assert_eq!(mac.name(), "S-FAMA");
/// ```
#[derive(Debug)]
pub struct SFama {
    core: SlottedCore,
}

impl SFama {
    /// Creates an S-FAMA instance for node `id`.
    pub fn new(id: NodeId) -> Self {
        SFama {
            core: SlottedCore::new(
                id,
                CoreConfig {
                    announce_delays: false,
                    ..CoreConfig::default()
                },
            ),
        }
    }
}

impl MacProtocol for SFama {
    fn name(&self) -> &'static str {
        "S-FAMA"
    }

    fn maintenance(&self) -> MaintenanceProfile {
        // §5.3: "S-FAMA does not require additional computation or storage".
        MaintenanceProfile::none()
    }

    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        let _ = self.core.on_slot_start(ctx, slot);
    }

    fn on_enqueue(&mut self, _ctx: &mut MacContext<'_>, sdu: Sdu) {
        self.core.on_enqueue(sdu);
    }

    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let _ = self.core.on_frame_received(ctx, rx);
    }

    fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    fn state_label(&self) -> &'static str {
        self.core.role.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uasn_net::mac::NeighborInfoScope;

    #[test]
    fn is_free_of_maintenance() {
        let mac = SFama::new(NodeId::new(3));
        let p = mac.maintenance();
        assert_eq!(p.scope, NeighborInfoScope::None);
        assert_eq!(p.piggyback_bits, 0);
        assert!(p.periodic_refresh.is_none());
    }

    #[test]
    fn starts_with_empty_queue() {
        assert_eq!(SFama::new(NodeId::new(0)).queue_len(), 0);
    }
}
