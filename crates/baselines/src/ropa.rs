//! ROPA — Reverse Opportunistic Packet Appending (Ng, Soh & Motani, 2013),
//! as characterised in §5 of the paper: *"each sender sends the RTS packet
//! including the propagation delay time between the sender and receiver. If
//! a neighbor of the sender intends to communicate with the sender, then
//! the neighbor can send an RTA packet (i.e., extra RTS) during the wait
//! time of the sender if the RTA packet does not interfere with the arrival
//! of the CTS packet."* The appended neighbour's uplink data is collected
//! by the sender right after its own exchange — sender-side reuse only,
//! which is why ROPA lands between S-FAMA and the receiver-aware protocols
//! in throughput, and why the paper charges it two-hop neighbour
//! maintenance.

use uasn_net::mac::{
    DropReason, MacContext, MacProtocol, MaintenanceProfile, NeighborInfoScope, Reception,
    TimerToken,
};
use uasn_net::neighbor::TwoHopTable;
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::slots::SlotIndex;
use uasn_sim::time::{SimDuration, SimTime};

use crate::common::{CoreConfig, CoreEvent, CoreRole, SlottedCore};

/// Waiting too long for the append poll.
const TIMER_POLL: TimerToken = TimerToken(10);
/// (Collector side) the appended data never arrived.
const TIMER_APPEND_DATA: TimerToken = TimerToken(11);
/// (Appender side) the Ack for our appended data never arrived.
const TIMER_APPEND_ACK: TimerToken = TimerToken(12);

/// Appender-side progress.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AppendSide {
    /// RTA sent to `target`; waiting to be polled.
    WaitingPoll { target: NodeId },
    /// Polled; our data goes out at `data_slot`.
    SendingAppended {
        target: NodeId,
        data_slot: SlotIndex,
    },
    /// Data sent; waiting for the Ack.
    WaitingAck { target: NodeId },
}

/// Collector-side (the original sender) progress.
#[derive(Debug, Clone)]
struct CollectState {
    /// Appenders to poll, in arrival order: `(node, data duration, τ)`.
    pending: Vec<(NodeId, SimDuration, SimDuration)>,
    /// The appender currently being served.
    current: Option<(NodeId, SimDuration, SimDuration)>,
    /// Eq-5 Ack slot for the current appended data.
    ack_slot: Option<SlotIndex>,
    /// Whether the current appended data arrived.
    data_received: bool,
}

/// The ROPA instance bound to one node.
///
/// # Examples
///
/// ```
/// use uasn_baselines::Ropa;
/// use uasn_net::mac::MacProtocol;
/// use uasn_net::node::NodeId;
///
/// let mac = Ropa::new(NodeId::new(0));
/// assert_eq!(mac.name(), "ROPA");
/// ```
#[derive(Debug)]
pub struct Ropa {
    core: SlottedCore,
    two_hop: TwoHopTable,
    append: Option<AppendSide>,
    collect: Option<CollectState>,
    guard: SimDuration,
}

impl Ropa {
    /// Creates a ROPA instance for node `id`.
    pub fn new(id: NodeId) -> Self {
        Ropa {
            core: SlottedCore::new(
                id,
                CoreConfig {
                    announce_delays: true,
                    announce_table: true,
                    ..CoreConfig::default()
                },
            ),
            two_hop: TwoHopTable::new(),
            append: None,
            collect: None,
            guard: SimDuration::from_millis(2),
        }
    }

    fn id(&self) -> NodeId {
        self.core.id
    }

    /// After our own exchange ends, freeze the core so queued appenders can
    /// be served at the next slot boundary. A *failed* exchange drops its
    /// appenders instead: the reservation their transfer was riding on no
    /// longer exists.
    fn after_core_event(&mut self, ev: CoreEvent) {
        match ev {
            CoreEvent::SendSucceeded { .. }
                if self
                    .collect
                    .as_ref()
                    .is_some_and(|c| c.current.is_some() || !c.pending.is_empty()) =>
            {
                self.core.hold = true;
            }
            CoreEvent::SendFailed { .. }
                if self.collect.as_ref().is_some_and(|c| c.current.is_none()) =>
            {
                self.collect = None;
                if self.append.is_none() {
                    self.core.hold = false;
                }
            }
            _ => {}
        }
    }

    fn release_append(&mut self, ctx: &mut MacContext<'_>, failed: bool) {
        self.append = None;
        self.core.hold = self.collect.is_some();
        if failed {
            self.core.attempt_failed(ctx, DropReason::RetryExhausted);
        }
    }

    /// Appender side: react to an overheard RTS from our intended next hop.
    fn maybe_append(&mut self, ctx: &mut MacContext<'_>, info: crate::common::OverheardInfo) {
        if self.append.is_some()
            || self.collect.is_some()
            || self.core.hold
            || self.core.role != CoreRole::Idle
        {
            return;
        }
        if info.kind != FrameKind::Rts {
            return; // ROPA appends only during a *sender's* RTS→CTS wait
        }
        let Some(head) = self.core.queue.front() else {
            return;
        };
        if head.sdu.next_hop != info.src {
            return; // we only append data destined for that sender
        }
        let Some(pair_delay) = info.pair_delay else {
            return;
        };
        let Some(tau) = self.core.neighbors.delay_of(info.src) else {
            return;
        };
        // The RTA must be fully received at the sender before the CTS
        // starts arriving (the paper's non-interference condition).
        let clock = ctx.clock();
        let now = ctx.now();
        let cts_arrival = clock.start_of(info.control_slot + 1) + pair_delay;
        if now + tau + ctx.omega() + self.guard > cts_arrival {
            return;
        }
        let td = ctx.tx_duration(head.sdu.bits);
        let rta = Frame::control(FrameKind::Rta, self.id(), info.src, ctx.control_bits())
            .with_data_duration(td)
            .with_pair_delay(tau);
        ctx.send_frame_now(rta);
        self.append = Some(AppendSide::WaitingPoll { target: info.src });
        self.core.hold = true;
        // The poll comes after the sender's whole exchange; allow a
        // generous window before giving up (about 8 slots at τmax).
        ctx.set_timer_after(clock.slot_len() * 8, TIMER_POLL);
    }

    /// Collector side: begin serving the next appender (called at a slot
    /// boundary once our own exchange completed).
    fn poll_next(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        if self.core.role != CoreRole::Idle {
            return; // our own exchange still running
        }
        let Some(collect) = &mut self.collect else {
            return;
        };
        if collect.current.is_some() {
            return;
        }
        if collect.pending.is_empty() {
            self.collect = None;
            self.core.hold = false;
            return;
        }
        let (peer, td, tau) = collect.pending.remove(0);
        let my_id = self.core.id;
        let collect = self.collect.as_mut().expect("checked above");
        let poll = Frame::control(FrameKind::Cts, my_id, peer, ctx.control_bits())
            .with_pair_delay(tau)
            .with_data_duration(td);
        ctx.send_frame_now(poll);
        self.core.boundary_taken = true;
        let clock = ctx.clock();
        // Appended data arrives in the next slot; Ack per Eq 5.
        let ack_slot = clock.ack_slot(slot + 1, td, tau);
        collect.current = Some((peer, td, tau));
        collect.ack_slot = Some(ack_slot);
        collect.data_received = false;
        ctx.set_timer_at(clock.start_of(ack_slot + 1), TIMER_APPEND_DATA);
    }
}

impl MacProtocol for Ropa {
    fn name(&self) -> &'static str {
        "ROPA"
    }

    fn maintenance(&self) -> MaintenanceProfile {
        // §5.3: ROPA keeps two-hop info but communicates comparatively
        // rarely — overhead ≈ 1.5× S-FAMA.
        MaintenanceProfile {
            scope: NeighborInfoScope::TwoHop,
            piggyback_bits: 8,
            periodic_refresh: Some(SimDuration::from_secs(120)),
            // Appending requires watching *every* neighbour's RTS→CTS wait
            // (§5.2: ROPA's waiting energy is the highest of the group).
            listen_mw_per_neighbor: 3.0,
        }
    }

    fn install_neighbors(&mut self, neighbors: &[(NodeId, SimDuration)]) {
        for &(id, delay) in neighbors {
            self.core.neighbors.observe(id, delay, SimTime::ZERO);
        }
    }

    fn install_two_hop(&mut self, tables: &[(NodeId, Vec<(NodeId, SimDuration)>)]) {
        for (neighbor, list) in tables {
            let mut table = uasn_net::neighbor::OneHopTable::new();
            for &(id, delay) in list {
                table.observe(id, delay, SimTime::ZERO);
            }
            self.two_hop.install(*neighbor, table);
        }
    }

    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        // Collector duties first: ack appended data at its Eq-5 slot.
        let mut finished_current = false;
        if let Some(collect) = &mut self.collect {
            if let (Some((peer, _, _)), Some(ack_slot)) = (collect.current, collect.ack_slot) {
                if slot == ack_slot && collect.data_received {
                    let ack = Frame::control(FrameKind::Ack, self.id(), peer, ctx.control_bits());
                    ctx.send_frame_now(ack);
                    finished_current = true;
                    self.core.boundary_taken = true;
                }
            }
        }
        if finished_current {
            if let Some(collect) = &mut self.collect {
                collect.current = None;
                collect.ack_slot = None;
            }
            ctx.cancel_timer(TIMER_APPEND_DATA);
        } else {
            // The Ack (if any) owns this boundary; polling waits a slot.
            self.poll_next(ctx, slot);
        }

        // Appender duties: transmit granted appended data at its slot.
        if let Some(AppendSide::SendingAppended { target, data_slot }) = self.append {
            if slot == data_slot {
                if let Some(head) = self.core.queue.front() {
                    let mut sdu = head.sdu;
                    sdu.next_hop = target;
                    let mut frame = Frame::data(FrameKind::Data, self.id(), sdu);
                    if head.retries > 0 {
                        frame = frame.as_retransmission();
                    }
                    ctx.send_frame_now(frame);
                    self.core.boundary_taken = true;
                    self.append = Some(AppendSide::WaitingAck { target });
                    ctx.set_timer_after(ctx.clock().slot_len() * 4, TIMER_APPEND_ACK);
                } else {
                    self.release_append(ctx, false);
                }
            }
        }

        let ev = self.core.on_slot_start(ctx, slot);
        self.after_core_event(ev);
    }

    fn on_enqueue(&mut self, _ctx: &mut MacContext<'_>, sdu: Sdu) {
        self.core.on_enqueue(sdu);
    }

    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let frame = rx.frame;
        let to_me = rx.addressed_to(self.id());

        // Assemble the two-hop view from piggybacked announcements.
        if !frame.announced.is_empty() {
            let mut table = uasn_net::neighbor::OneHopTable::new();
            for &(id, delay) in &frame.announced {
                table.observe(id, delay, ctx.now());
            }
            self.two_hop.install(frame.src, table);
        }

        // Protocol-specific paths first.
        match frame.kind {
            FrameKind::Rta if to_me => {
                self.core
                    .neighbors
                    .observe(frame.src, rx.prop_delay, ctx.now());
                // Accept an append only during the actual RTS→CTS wait —
                // the window ROPA exploits ("the period between sending
                // RTSs and receiving CTSs").
                let sender_busy = matches!(self.core.role, CoreRole::Contending { .. });
                if sender_busy {
                    let td = frame
                        .data_duration
                        .unwrap_or_else(|| ctx.tx_duration(2_048));
                    let collect = self.collect.get_or_insert(CollectState {
                        pending: Vec::new(),
                        current: None,
                        ack_slot: None,
                        data_received: false,
                    });
                    // One appended packet per exchange: the reuse window is
                    // the sender's own wait, not an open-ended poll train.
                    if collect.pending.is_empty() && collect.current.is_none() {
                        collect.pending.push((frame.src, td, rx.prop_delay));
                    }
                }
                return;
            }
            FrameKind::Cts if to_me && self.append.is_some() => {
                // The append poll (we are not contending, so the core would
                // ignore this CTS).
                if let Some(AppendSide::WaitingPoll { target }) = self.append {
                    if frame.src == target {
                        self.core
                            .neighbors
                            .observe(frame.src, rx.prop_delay, ctx.now());
                        ctx.cancel_timer(TIMER_POLL);
                        let data_slot = ctx.clock().slot_of(frame.timestamp) + 1;
                        self.append = Some(AppendSide::SendingAppended { target, data_slot });
                        return;
                    }
                }
            }
            FrameKind::Ack if to_me => {
                if let Some(AppendSide::WaitingAck { target }) = self.append {
                    if frame.src == target {
                        self.core
                            .neighbors
                            .observe(frame.src, rx.prop_delay, ctx.now());
                        ctx.cancel_timer(TIMER_APPEND_ACK);
                        self.core.succeed();
                        self.release_append(ctx, false);
                        return;
                    }
                }
            }
            _ => {}
        }

        let ev = self.core.on_frame_received(ctx, rx);
        self.after_core_event(ev);
        match ev {
            CoreEvent::Overheard(info) => self.maybe_append(ctx, info),
            CoreEvent::UnexpectedData => {
                // Appended data reaching us as the collector.
                if let Some(collect) = &mut self.collect {
                    if let Some((peer, _, _)) = collect.current {
                        if frame.src == peer && to_me {
                            collect.data_received = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut MacContext<'_>, token: TimerToken) {
        match token {
            TIMER_POLL => {
                if matches!(self.append, Some(AppendSide::WaitingPoll { .. })) {
                    // Never polled: fall back to normal contention.
                    self.release_append(ctx, false);
                    self.core.backoff(ctx);
                }
            }
            TIMER_APPEND_ACK => {
                if matches!(self.append, Some(AppendSide::WaitingAck { .. })) {
                    self.release_append(ctx, true);
                }
            }
            TIMER_APPEND_DATA => {
                if let Some(collect) = &mut self.collect {
                    if collect.current.is_some() && !collect.data_received {
                        collect.current = None;
                        collect.ack_slot = None;
                    }
                }
            }
            _ => {}
        }
    }

    fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    fn state_label(&self) -> &'static str {
        if self.append.is_some() {
            "appending"
        } else if self.collect.is_some() {
            "collecting"
        } else {
            self.core.role.label()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uasn_net::mac::MacCommand;
    use uasn_net::slots::SlotClock;
    use uasn_phy::modem::ModemSpec;

    struct H {
        mac: Ropa,
        rng: StdRng,
        clock: SlotClock,
        spec: ModemSpec,
        commands: Vec<MacCommand>,
    }

    impl H {
        fn new(id: u32) -> Self {
            H {
                mac: Ropa::new(NodeId::new(id)),
                rng: StdRng::seed_from_u64(5),
                clock: SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1)),
                spec: ModemSpec::new(12_000.0),
                commands: Vec::new(),
            }
        }

        fn slot(&mut self, slot: SlotIndex) {
            let now = self.clock.start_of(slot);
            let mut ctx = MacContext::new(
                now,
                self.mac.id(),
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            self.mac.on_slot_start(&mut ctx, slot);
        }

        fn recv(&mut self, frame: Frame, delay: SimDuration) {
            let arrival = frame.timestamp + delay;
            let now = arrival + self.spec.tx_duration(frame.bits);
            let mut ctx = MacContext::new(
                now,
                self.mac.id(),
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            let rx = Reception {
                frame: &frame,
                arrival_start: arrival,
                prop_delay: delay,
            };
            self.mac.on_frame_received(&mut ctx, &rx);
        }

        fn sent(&mut self) -> Vec<Frame> {
            std::mem::take(&mut self.commands)
                .into_iter()
                .filter_map(|c| match c {
                    MacCommand::SendFrame { frame, .. } => Some(frame),
                    _ => None,
                })
                .collect()
        }
    }

    fn stamp(mut f: Frame, clock: &SlotClock, slot: SlotIndex) -> Frame {
        f.timestamp = clock.start_of(slot);
        f
    }

    fn sdu(next: u32) -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(0),
            next_hop: NodeId::new(next),
            bits: 2_048,
            created: SimTime::ZERO,
            attempt: 0,
        }
    }

    #[test]
    fn appender_sends_rta_when_target_is_a_sender() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        h.mac.core.on_enqueue(sdu(5));

        // Overhear RTS(5 -> 9) with a far receiver (τ = 900 ms).
        let rts = stamp(
            Frame::control(FrameKind::Rts, NodeId::new(5), NodeId::new(9), 64)
                .with_pair_delay(SimDuration::from_millis(900))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(200));
        let sent = h.sent();
        assert_eq!(sent.len(), 1, "RTA expected, got {sent:?}");
        assert_eq!(sent[0].kind, FrameKind::Rta);
        assert_eq!(sent[0].dst, NodeId::new(5));
        assert!(h.mac.core.hold);
    }

    #[test]
    fn appender_skips_when_rta_cannot_beat_cts() {
        let mut h = H::new(0);
        let clock = h.clock;
        // Very close pair: CTS returns almost immediately after slot 1.
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(950))]);
        h.mac.core.on_enqueue(sdu(5));
        let rts = stamp(
            Frame::control(FrameKind::Rts, NodeId::new(5), NodeId::new(9), 64)
                .with_pair_delay(SimDuration::from_millis(10))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(950));
        assert!(h.sent().is_empty(), "no RTA when the window is too tight");
        assert!(h.mac.append.is_none());
    }

    #[test]
    fn collector_polls_appender_after_its_own_exchange() {
        let mut h = H::new(5);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(9), SimDuration::from_millis(900))]);
        h.mac.core.on_enqueue(sdu(9));
        h.slot(0); // RTS(5->9)
        assert_eq!(h.sent().len(), 1);

        // RTA from node 2 arrives during the wait.
        let mut rta = Frame::control(FrameKind::Rta, NodeId::new(2), NodeId::new(5), 64)
            .with_data_duration(SimDuration::from_micros(170_667))
            .with_pair_delay(SimDuration::from_millis(300));
        rta.timestamp = clock.start_of(0) + SimDuration::from_millis(400);
        h.recv(rta, SimDuration::from_millis(300));
        assert!(h.mac.collect.is_some());

        // CTS back, data out, ack in: the normal exchange completes.
        let cts = stamp(
            Frame::control(FrameKind::Cts, NodeId::new(9), NodeId::new(5), 64)
                .with_pair_delay(SimDuration::from_millis(900))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(900));
        h.slot(2);
        let kinds: Vec<FrameKind> = h.sent().iter().map(|f| f.kind).collect();
        assert_eq!(kinds, [FrameKind::Data]);
        // Ack (TD+τ = 1.07 s -> ack slot 4).
        let ack = stamp(
            Frame::control(FrameKind::Ack, NodeId::new(9), NodeId::new(5), 64),
            &clock,
            4,
        );
        h.recv(ack, SimDuration::from_millis(900));
        assert_eq!(h.mac.queue_len(), 0);

        // Next slot: the poll goes out to node 2.
        h.slot(5);
        let sent = h.sent();
        let poll = sent
            .iter()
            .find(|f| f.kind == FrameKind::Cts)
            .expect("poll");
        assert_eq!(poll.dst, NodeId::new(2));
    }

    #[test]
    fn polled_appender_sends_data_and_finishes_on_ack() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        h.mac.core.on_enqueue(sdu(5));
        let rts = stamp(
            Frame::control(FrameKind::Rts, NodeId::new(5), NodeId::new(9), 64)
                .with_pair_delay(SimDuration::from_millis(900))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(200));
        h.sent();

        // The poll arrives (slot 5).
        let poll = stamp(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                .with_pair_delay(SimDuration::from_millis(200))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            5,
        );
        h.recv(poll, SimDuration::from_millis(200));
        assert!(matches!(
            h.mac.append,
            Some(AppendSide::SendingAppended { data_slot: 6, .. })
        ));
        h.slot(6);
        let kinds: Vec<FrameKind> = h.sent().iter().map(|f| f.kind).collect();
        assert_eq!(kinds, [FrameKind::Data]);

        let ack = stamp(
            Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64),
            &clock,
            7,
        );
        h.recv(ack, SimDuration::from_millis(200));
        assert_eq!(h.mac.queue_len(), 0);
        assert!(h.mac.append.is_none());
        assert!(!h.mac.core.hold);
    }

    #[test]
    fn poll_timeout_falls_back_to_contention() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        h.mac.core.on_enqueue(sdu(5));
        let rts = stamp(
            Frame::control(FrameKind::Rts, NodeId::new(5), NodeId::new(9), 64)
                .with_pair_delay(SimDuration::from_millis(900))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(200));
        h.sent();
        // Fire the poll timeout.
        let now = clock.start_of(9);
        let mut ctx_cmds = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = MacContext::new(now, h.mac.id(), clock, h.spec, 64, &mut rng, &mut ctx_cmds);
        h.mac.on_timer(&mut ctx, TIMER_POLL);
        assert!(h.mac.append.is_none());
        assert!(!h.mac.core.hold);
        assert_eq!(h.mac.queue_len(), 1, "SDU kept for normal contention");
    }

    #[test]
    fn maintenance_is_two_hop_periodic() {
        let p = Ropa::new(NodeId::new(0)).maintenance();
        assert_eq!(p.scope, NeighborInfoScope::TwoHop);
        assert!(p.periodic_refresh.is_some());
        assert!(p.piggyback_bits > 0);
    }
}
