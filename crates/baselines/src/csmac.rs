//! CS-MAC — the Channel Stealing MAC (Chen et al., OCEANS 2011), as
//! characterised in §5 of the paper: *"a neighbor forces utilization of the
//! waiting resources by directly sending data packets when it knows the
//! wait time is sufficient"* — no extra negotiation, just a computed gap
//! and a direct data transmission, validated only against the overheard
//! pair (never against the receiver's other neighbours). That omission is
//! CS-MAC's defining trade-off: cheapest reuse at low load, growing
//! interference (and collapsing throughput) past ~0.8 kbps offered load
//! (Fig 6). CS-MAC carries two-hop neighbour information in its control
//! packets, which the paper charges heavily in §5.3.

use uasn_net::mac::{
    DropReason, MacContext, MacProtocol, MaintenanceProfile, NeighborInfoScope, Reception,
    TimerToken,
};
use uasn_net::neighbor::TwoHopTable;
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::slots::SlotIndex;
use uasn_sim::time::{SimDuration, SimTime};

use crate::common::{CoreConfig, CoreEvent, CoreRole, OverheardInfo, SlottedCore};

/// The Ack for a stolen transmission never arrived.
const TIMER_STEAL_ACK: TimerToken = TimerToken(20);

/// The CS-MAC instance bound to one node.
///
/// # Examples
///
/// ```
/// use uasn_baselines::CsMac;
/// use uasn_net::mac::MacProtocol;
/// use uasn_net::node::NodeId;
///
/// let mac = CsMac::new(NodeId::new(0));
/// assert_eq!(mac.name(), "CS-MAC");
/// ```
#[derive(Debug)]
pub struct CsMac {
    core: SlottedCore,
    two_hop: TwoHopTable,
    /// A stolen transmission is in flight, awaiting its Ack.
    stealing: bool,
    guard: SimDuration,
    steals_attempted: u64,
    steals_succeeded: u64,
}

impl CsMac {
    /// Creates a CS-MAC instance for node `id`.
    pub fn new(id: NodeId) -> Self {
        CsMac {
            core: SlottedCore::new(
                id,
                CoreConfig {
                    announce_delays: true,
                    announce_table: true,
                    ..CoreConfig::default()
                },
            ),
            two_hop: TwoHopTable::new(),
            stealing: false,
            guard: SimDuration::from_millis(2),
            steals_attempted: 0,
            steals_succeeded: 0,
        }
    }

    fn id(&self) -> NodeId {
        self.core.id
    }

    /// Steal attempts so far (diagnostics).
    pub fn steals_attempted(&self) -> u64 {
        self.steals_attempted
    }

    /// Steals acknowledged so far (diagnostics).
    pub fn steals_succeeded(&self) -> u64 {
        self.steals_succeeded
    }

    /// Decide whether to steal the channel on an overheard negotiation.
    ///
    /// The check is deliberately exactly as shallow as the paper describes:
    /// the stolen data must finish arriving at *our* receiver before the
    /// negotiated data could reach it **from the negotiating sender** — if
    /// we know that delay from our two-hop table. Our receiver's *other*
    /// neighbours are never consulted ("without assessing how transmission
    /// will interfere with other neighbors", §5.1).
    fn maybe_steal(&mut self, ctx: &mut MacContext<'_>, info: OverheardInfo) {
        if self.stealing || self.core.hold || self.core.role != CoreRole::Idle {
            return;
        }
        let Some(head) = self.core.queue.front() else {
            return;
        };
        let target = head.sdu.next_hop;
        // The negotiating pair itself is off-limits: both are busy.
        if target == info.src || target == info.dst {
            return;
        }
        let Some(tau_target) = self.core.neighbors.delay_of(target) else {
            return;
        };
        let clock = ctx.clock();
        let now = ctx.now();
        let td = ctx.tx_duration(head.sdu.bits);
        // The published CS-MAC operating assumption (§2 of the paper):
        // "the data packet transmission time is less than the propagation
        // time between two packets such as an RTS/CTS pair". Short pair
        // delays — dense deployments — leave no stealable gap, which is
        // exactly the paper's Figure-7 density argument.
        let Some(pair_delay) = info.pair_delay else {
            return;
        };
        if td + self.guard > pair_delay {
            return;
        }
        // The stolen data must clear the air before the pair's *next*
        // packet goes out at the following slot boundary: CS-MAC squeezes
        // into the inter-packet gap, not into the multi-slot future.
        let gap_close = clock.start_of(info.control_slot + 1);
        if now + tau_target + td + self.guard > gap_close {
            return;
        }
        let data_slot = if info.kind == FrameKind::Cts {
            info.control_slot + 1
        } else {
            info.control_slot + 2
        };
        // Who will transmit the negotiated data: the CTS's addressee, or
        // the RTS's sender (speculatively — the RTS may never be granted,
        // which is part of CS-MAC's recklessness).
        let data_sender = if info.kind == FrameKind::Cts {
            info.dst
        } else {
            info.src
        };
        // The steal is computed from two-hop knowledge: our data must be
        // fully received at our receiver before the negotiated transmission
        // reaches it. No knowledge, no steal — but the check still consults
        // only the overheard pair, never the receiver's other neighbours.
        let Some(tau_cross) = self.two_hop.delay_between(target, data_sender) else {
            return;
        };
        let negotiated_arrival = clock.start_of(data_slot) + tau_cross;
        if now + tau_target + td + self.guard > negotiated_arrival {
            return;
        }
        // Pair protection: the steal must also be fully received at the
        // negotiated *receiver* before its Data starts arriving, else the
        // steal destroys the exchange it is drafting behind. (Other
        // neighbours are still never consulted — the §5.1 blind spot.)
        let pair_receiver = if info.kind == FrameKind::Cts {
            info.src
        } else {
            info.dst
        };
        if let Some(tau_jr) = self.core.neighbors.delay_of(pair_receiver) {
            let pair_data_arrival = clock.start_of(data_slot) + pair_delay;
            if now + tau_jr + td + self.guard > pair_data_arrival {
                return;
            }
        }
        // Also don't steal into our own past: data must at least fit before
        // the exchange's conservative end (else we gain nothing).
        let mut sdu = head.sdu;
        sdu.next_hop = target;
        let mut frame = Frame::data(FrameKind::Data, self.id(), sdu);
        if head.retries > 0 {
            frame = frame.as_retransmission();
        }
        ctx.send_frame_now(frame);
        self.stealing = true;
        self.steals_attempted += 1;
        self.core.hold = true;
        let timeout = now + td + clock.slot_len() + tau_target + tau_target + ctx.omega() * 4;
        ctx.set_timer_at(timeout, TIMER_STEAL_ACK);
    }
}

impl MacProtocol for CsMac {
    fn name(&self) -> &'static str {
        "CS-MAC"
    }

    fn maintenance(&self) -> MaintenanceProfile {
        // §5.3: "CS-MAC control packets include two-hop neighbor
        // information; its overhead is much greater than that of EW-MAC".
        MaintenanceProfile {
            scope: NeighborInfoScope::TwoHop,
            piggyback_bits: 24,
            periodic_refresh: Some(SimDuration::from_secs(120)),
            // Gap tracking for stealing monitors neighbours continuously,
            // though the steal itself is fire-and-forget.
            listen_mw_per_neighbor: 2.2,
        }
    }

    fn install_neighbors(&mut self, neighbors: &[(NodeId, SimDuration)]) {
        for &(id, delay) in neighbors {
            self.core.neighbors.observe(id, delay, SimTime::ZERO);
        }
    }

    fn install_two_hop(&mut self, tables: &[(NodeId, Vec<(NodeId, SimDuration)>)]) {
        for (neighbor, list) in tables {
            let mut table = uasn_net::neighbor::OneHopTable::new();
            for &(id, delay) in list {
                table.observe(id, delay, SimTime::ZERO);
            }
            self.two_hop.install(*neighbor, table);
        }
    }

    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        let _ = self.core.on_slot_start(ctx, slot);
    }

    fn on_enqueue(&mut self, _ctx: &mut MacContext<'_>, sdu: Sdu) {
        self.core.on_enqueue(sdu);
    }

    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let frame = rx.frame;
        let to_me = rx.addressed_to(self.id());

        // Assemble the two-hop view from piggybacked announcements.
        if !frame.announced.is_empty() {
            let mut table = uasn_net::neighbor::OneHopTable::new();
            for &(id, delay) in &frame.announced {
                table.observe(id, delay, ctx.now());
            }
            self.two_hop.install(frame.src, table);
        }

        // A stolen transmission's Ack arrives outside any core exchange.
        if frame.kind == FrameKind::Ack && to_me && self.stealing {
            self.core
                .neighbors
                .observe(frame.src, rx.prop_delay, ctx.now());
            ctx.cancel_timer(TIMER_STEAL_ACK);
            self.stealing = false;
            self.core.hold = false;
            self.core.succeed();
            self.steals_succeeded += 1;
            return;
        }

        let ev = self.core.on_frame_received(ctx, rx);
        match ev {
            CoreEvent::Overheard(info) => self.maybe_steal(ctx, info),
            CoreEvent::UnexpectedData
                // Someone stole the channel to reach us. A receiver mid-way
                // through its own exchange (or its own steal) discards the
                // unsolicited packet — the stealer had no way to know, which
                // is exactly the §5.1 recklessness: "CS-MAC exploits the
                // wait time of sensors without assessing how transmission
                // will interfere". An idle receiver acks at the next slot
                // boundary (it is still a slotted node).
                if to_me
                    && self.core.role == CoreRole::Idle
                    && !self.stealing
                    && !self.core.hold
                => {
                    let ack =
                        Frame::control(FrameKind::Ack, self.id(), frame.src, ctx.control_bits());
                    let at = ctx.clock().next_boundary(ctx.now());
                    ctx.send_frame_at(ack, at);
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut MacContext<'_>, token: TimerToken) {
        if token == TIMER_STEAL_ACK && self.stealing {
            self.stealing = false;
            self.core.hold = false;
            self.core.attempt_failed(ctx, DropReason::RetryExhausted);
        }
    }

    fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    fn state_label(&self) -> &'static str {
        if self.stealing {
            "stealing"
        } else {
            self.core.role.label()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uasn_net::mac::MacCommand;
    use uasn_net::slots::SlotClock;
    use uasn_phy::modem::ModemSpec;

    struct H {
        mac: CsMac,
        rng: StdRng,
        clock: SlotClock,
        spec: ModemSpec,
        commands: Vec<MacCommand>,
    }

    impl H {
        fn new(id: u32) -> Self {
            H {
                mac: CsMac::new(NodeId::new(id)),
                rng: StdRng::seed_from_u64(11),
                clock: SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1)),
                spec: ModemSpec::new(12_000.0),
                commands: Vec::new(),
            }
        }

        fn recv(&mut self, frame: Frame, delay: SimDuration) {
            let arrival = frame.timestamp + delay;
            let now = arrival + self.spec.tx_duration(frame.bits);
            let mut ctx = MacContext::new(
                now,
                self.mac.id(),
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            let rx = Reception {
                frame: &frame,
                arrival_start: arrival,
                prop_delay: delay,
            };
            self.mac.on_frame_received(&mut ctx, &rx);
        }

        fn sent(&mut self) -> Vec<Frame> {
            std::mem::take(&mut self.commands)
                .into_iter()
                .filter_map(|c| match c {
                    MacCommand::SendFrame { frame, .. } => Some(frame),
                    _ => None,
                })
                .collect()
        }
    }

    fn stamp(mut f: Frame, clock: &SlotClock, slot: SlotIndex) -> Frame {
        f.timestamp = clock.start_of(slot);
        f
    }

    fn sdu(next: u32) -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(0),
            next_hop: NodeId::new(next),
            bits: 2_048,
            created: SimTime::ZERO,
            attempt: 0,
        }
    }

    /// Overhear CTS(4 -> 7) in slot 1 with a wide gap.
    fn wide_gap_cts(clock: &SlotClock) -> Frame {
        stamp(
            Frame::control(FrameKind::Cts, NodeId::new(4), NodeId::new(7), 64)
                .with_pair_delay(SimDuration::from_millis(900))
                .with_data_duration(SimDuration::from_micros(170_667)),
            clock,
            1,
        )
    }

    #[test]
    fn steals_when_gap_is_wide_and_receiver_unconstrained() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        // Receiver 5 hears negotiated sender 7 with a *large* delay: our
        // stolen data comfortably beats the negotiated transmission.
        h.mac.install_two_hop(&[(
            NodeId::new(5),
            vec![(NodeId::new(7), SimDuration::from_millis(950))],
        )]);
        h.mac.core.on_enqueue(sdu(5));
        h.recv(wide_gap_cts(&clock), SimDuration::from_millis(300));
        let sent = h.sent();
        assert_eq!(sent.len(), 1, "stolen data expected: {sent:?}");
        assert_eq!(sent[0].kind, FrameKind::Data);
        assert_eq!(sent[0].dst, NodeId::new(5));
        assert!(h.mac.stealing);
        assert_eq!(h.mac.steals_attempted(), 1);
    }

    #[test]
    fn respects_cross_delay_constraint() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(800))]);
        // Receiver 5 hears negotiated sender 7 with a *small* delay: the
        // negotiated data reaches 5 quickly, so the steal cannot fit.
        h.mac.install_two_hop(&[(
            NodeId::new(5),
            vec![(NodeId::new(7), SimDuration::from_millis(50))],
        )]);
        h.mac.core.on_enqueue(sdu(5));
        h.recv(wide_gap_cts(&clock), SimDuration::from_millis(300));
        assert!(h.sent().is_empty(), "steal must be suppressed");
        assert_eq!(h.mac.steals_attempted(), 0);
    }

    #[test]
    fn does_not_steal_toward_the_negotiating_pair() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(4), SimDuration::from_millis(200))]);
        h.mac.core.on_enqueue(sdu(4)); // next hop IS the negotiating receiver
        h.recv(wide_gap_cts(&clock), SimDuration::from_millis(300));
        assert!(h.sent().is_empty());
    }

    #[test]
    fn ack_completes_the_steal() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        h.mac.install_two_hop(&[(
            NodeId::new(5),
            vec![(NodeId::new(7), SimDuration::from_millis(950))],
        )]);
        h.mac.core.on_enqueue(sdu(5));
        h.recv(wide_gap_cts(&clock), SimDuration::from_millis(300));
        h.sent();
        let mut ack = Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64);
        ack.timestamp = clock.start_of(2);
        h.recv(ack, SimDuration::from_millis(200));
        assert!(!h.mac.stealing);
        assert_eq!(h.mac.queue_len(), 0);
        assert_eq!(h.mac.steals_succeeded(), 1);
        assert!(!h.mac.core.hold);
    }

    #[test]
    fn steal_receiver_acks_unsolicited_data() {
        let mut h = H::new(5);
        let clock = h.clock;
        let data = stamp(
            Frame::data(FrameKind::Data, NodeId::new(0), sdu(5)),
            &clock,
            2,
        );
        h.recv(data, SimDuration::from_millis(200));
        let sent = h.sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].kind, FrameKind::Ack);
        assert_eq!(sent[0].dst, NodeId::new(0));
    }

    #[test]
    fn steal_timeout_counts_a_retry() {
        let mut h = H::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(200))]);
        h.mac.install_two_hop(&[(
            NodeId::new(5),
            vec![(NodeId::new(7), SimDuration::from_millis(950))],
        )]);
        h.mac.core.on_enqueue(sdu(5));
        h.recv(wide_gap_cts(&clock), SimDuration::from_millis(300));
        h.sent();
        let mut cmds = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ctx = MacContext::new(
            clock.start_of(4),
            h.mac.id(),
            clock,
            h.spec,
            64,
            &mut rng,
            &mut cmds,
        );
        h.mac.on_timer(&mut ctx, TIMER_STEAL_ACK);
        assert!(!h.mac.stealing);
        assert_eq!(h.mac.queue_len(), 1);
        assert_eq!(h.mac.core.queue.front().unwrap().retries, 1);
    }

    #[test]
    fn maintenance_is_heavy_two_hop() {
        let p = CsMac::new(NodeId::new(0)).maintenance();
        assert_eq!(p.scope, NeighborInfoScope::TwoHop);
        assert_eq!(p.piggyback_bits, 24);
        assert!(p.periodic_refresh.is_some());
    }
}
