//! # uasn-baselines — the comparison protocols of the EW-MAC evaluation
//!
//! Clean-room implementations of the MAC protocols §5 of the paper compares
//! EW-MAC against, each as characterised there (full citations in
//! DESIGN.md):
//!
//! * [`SFama`] — Slotted FAMA: the plain `ω + τmax` handshake, maximal
//!   reservation, no reuse, no neighbour state. The baseline for the
//!   overhead ratio and efficiency index.
//! * [`Ropa`] — Reverse Opportunistic Packet Appending: sender-side reuse
//!   via RTA requests during the RTS→CTS wait; two-hop maintenance.
//! * [`CsMac`] — Channel Stealing MAC: direct, unnegotiated data into
//!   computed gaps; cheapest reuse at low load, interference-prone at high
//!   load; heavy two-hop piggyback.
//! * [`Aloha`] — unslotted send-and-pray sanity floor (not in the paper).
//!
//! All four plug into `uasn-net`'s [`MacProtocol`](uasn_net::mac::MacProtocol)
//! and share the [`common::SlottedCore`] handshake engine.
//!
//! # Examples
//!
//! ```
//! use uasn_baselines::SFama;
//! use uasn_net::config::SimConfig;
//! use uasn_net::node::NodeId;
//! use uasn_net::world::Simulation;
//!
//! let cfg = SimConfig::paper_default()
//!     .with_sensors(10)
//!     .with_sim_time(uasn_sim::time::SimDuration::from_secs(30));
//! let factory = |id: NodeId| -> Box<dyn uasn_net::mac::MacProtocol> {
//!     Box::new(SFama::new(id))
//! };
//! let report = Simulation::new(cfg, &factory).expect("valid").run();
//! assert_eq!(report.protocol, "S-FAMA");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod common;
pub mod csmac;
pub mod ropa;
pub mod sfama;

pub use aloha::Aloha;
pub use csmac::CsMac;
pub use ropa::Ropa;
pub use sfama::SFama;
