//! The shared slotted four-way-handshake core.
//!
//! S-FAMA, ROPA and CS-MAC all run the same skeleton the paper describes in
//! §5 — RTS at slot *t*, CTS at *t+1*, Data at *t+2*, Ack per the data
//! duration — and differ in what they *add* (sender-side appending,
//! channel stealing) and in how much neighbour state they carry.
//! [`SlottedCore`] implements the skeleton once and surfaces
//! [`CoreEvent`]s so the wrapper protocols can bolt on their mechanisms.

use std::collections::VecDeque;

use rand::Rng;

use uasn_net::mac::{DropReason, MacContext, Reception};
use uasn_net::neighbor::OneHopTable;
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::quiet::QuietSchedule;
use uasn_net::slots::SlotIndex;
use uasn_sim::time::{SimDuration, SimTime};

/// Core tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Initial contention window (slots).
    pub base_cw: u32,
    /// Contention window cap.
    pub max_cw: u32,
    /// Retransmission attempts before an SDU is dropped.
    pub max_retries: u32,
    /// Whether frames piggyback pair delays / data durations for
    /// overhearers (S-FAMA does not; its overhearers reserve τmax).
    pub announce_delays: bool,
    /// Whether RTS/CTS frames also carry the sender's one-hop table so
    /// neighbours can assemble two-hop views (§5.3; ROPA and CS-MAC).
    pub announce_table: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            base_cw: 2,
            max_cw: 16,
            max_retries: 20,
            announce_delays: false,
            announce_table: false,
        }
    }
}

/// One queued SDU with its retry state.
#[derive(Debug, Clone, Copy)]
pub struct PendingSdu {
    /// The SDU.
    pub sdu: Sdu,
    /// Failed delivery attempts so far.
    pub retries: u32,
}

/// What the core is doing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreRole {
    /// Nothing in flight.
    Idle,
    /// RTS sent at `rts_slot`, waiting for CTS.
    Contending {
        /// Intended receiver.
        peer: NodeId,
        /// Slot the RTS went out in.
        rts_slot: SlotIndex,
        /// Announced data duration.
        td: SimDuration,
    },
    /// CTS received; Data at `data_slot`, Ack expected in `ack_slot`.
    SendingData {
        /// The receiver.
        peer: NodeId,
        /// Data transmit slot.
        data_slot: SlotIndex,
        /// Eq-5 Ack slot.
        ack_slot: SlotIndex,
    },
    /// CTS sent; waiting for Data, Ack due at `ack_slot`.
    Receiving {
        /// The sender.
        peer: NodeId,
        /// Eq-5 Ack slot.
        ack_slot: SlotIndex,
        /// Whether the Data arrived intact.
        data_received: bool,
    },
}

impl CoreRole {
    /// Short static label for the sampler's MAC-state column.
    pub fn label(&self) -> &'static str {
        match self {
            CoreRole::Idle => "idle",
            CoreRole::Contending { .. } => "contending",
            CoreRole::SendingData { .. } => "sending-data",
            CoreRole::Receiving { .. } => "receiving",
        }
    }
}

/// Information about an overheard negotiation packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheardInfo {
    /// RTS or CTS.
    pub kind: FrameKind,
    /// Who transmitted it.
    pub src: NodeId,
    /// Who it addressed.
    pub dst: NodeId,
    /// The slot it was sent in.
    pub control_slot: SlotIndex,
    /// Pair propagation delay, when announced.
    pub pair_delay: Option<SimDuration>,
    /// Announced data duration, when present.
    pub data_duration: Option<SimDuration>,
}

/// What a core callback observed — hooks for the wrapper protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreEvent {
    /// Nothing of note.
    None,
    /// A negotiation between two other nodes was overheard (quiet has been
    /// applied already).
    Overheard(OverheardInfo),
    /// Data addressed to me arrived outside any negotiated exchange
    /// (CS-MAC steals produce these).
    UnexpectedData,
    /// The head SDU was acknowledged and popped.
    SendSucceeded {
        /// The receiver that acknowledged.
        peer: NodeId,
    },
    /// A delivery attempt failed (retry counted, backoff applied).
    SendFailed {
        /// The intended receiver.
        peer: NodeId,
    },
    /// As a receiver, the negotiated Data arrived and the Ack was sent.
    ReceiveCompleted {
        /// The data sender.
        peer: NodeId,
    },
}

/// The reusable slotted handshake engine.
#[derive(Debug)]
pub struct SlottedCore {
    /// This node.
    pub id: NodeId,
    /// Tuning.
    pub cfg: CoreConfig,
    /// Pending SDUs (head is in flight).
    pub queue: VecDeque<PendingSdu>,
    /// One-hop delay table (unused for scheduling when
    /// `announce_delays = false`, still fed by receptions).
    pub neighbors: OneHopTable,
    /// Quiet windows from overheard negotiations.
    pub quiet: QuietSchedule,
    /// Current role.
    pub role: CoreRole,
    /// When `true`, the wrapper is running its own exchange and the core
    /// must not start contention or answer RTSs.
    pub hold: bool,
    /// Set by a wrapper that transmits a slot-aligned frame of its own in
    /// the current `on_slot_start` call; the core then treats the boundary
    /// as spent (one transmission per boundary per modem). Consumed by the
    /// next `on_slot_start`.
    pub boundary_taken: bool,
    /// Contention window.
    pub cw: u32,
    /// Earliest slot for the next contention attempt.
    pub next_attempt_slot: SlotIndex,
    rts_inbox: Vec<(NodeId, SimDuration, SlotIndex, SimDuration)>, // (src, td, slot, measured)
}

impl SlottedCore {
    /// Creates a core for node `id`.
    pub fn new(id: NodeId, cfg: CoreConfig) -> Self {
        SlottedCore {
            id,
            cfg,
            queue: VecDeque::new(),
            neighbors: OneHopTable::new(),
            quiet: QuietSchedule::new(),
            role: CoreRole::Idle,
            hold: false,
            boundary_taken: false,
            cw: cfg.base_cw,
            next_attempt_slot: 0,
            rts_inbox: Vec::new(),
        }
    }

    /// Applies random backoff after a failure.
    pub fn backoff(&mut self, ctx: &mut MacContext<'_>) {
        let slot = ctx.current_slot();
        let jitter = ctx.rng().gen_range(0..self.cw.max(1)) as u64;
        self.next_attempt_slot = slot + 1 + jitter;
        self.cw = (self.cw * 2).min(self.cfg.max_cw);
    }

    /// Pops the head SDU as delivered.
    pub fn succeed(&mut self) {
        self.queue.pop_front();
        self.cw = self.cfg.base_cw;
    }

    /// Counts a failed attempt for the head SDU; drops it past the retry
    /// budget; backs off. `reason` labels the phase of *this* failure and
    /// is reported if the drop happens now.
    pub fn attempt_failed(&mut self, ctx: &mut MacContext<'_>, reason: DropReason) {
        if let Some(head) = self.queue.front_mut() {
            head.retries += 1;
            if head.retries > self.cfg.max_retries {
                let dropped = self.queue.pop_front().expect("head exists");
                ctx.report_drop_with(dropped.sdu.id, reason);
                self.cw = self.cfg.base_cw;
            }
        }
        self.backoff(ctx);
    }

    /// Conservative quiet horizon: data at `control_slot + offset`, τmax
    /// reserved in both directions (what S-FAMA overhearers must assume).
    fn conservative_end(&self, ctx: &MacContext<'_>, info: &OverheardInfo) -> SimTime {
        let clock = ctx.clock();
        let data_slot = if info.kind == FrameKind::Cts {
            info.control_slot + 1
        } else {
            info.control_slot + 2
        };
        let tau = info.pair_delay.unwrap_or_else(|| clock.tau_max());
        let td = info.data_duration.unwrap_or_else(|| ctx.tx_duration(2_048));
        let ack_slot = clock.ack_slot(data_slot, td, tau);
        clock.start_of(ack_slot) + clock.omega() + tau
    }

    /// The one-hop entries this node piggybacks when `announce_table` is
    /// set, capped so control packets stay bounded.
    pub fn table_announcement(&self) -> Vec<(NodeId, SimDuration)> {
        const MAX_ENTRIES: usize = 16;
        self.neighbors
            .iter()
            .take(MAX_ENTRIES)
            .map(|(id, e)| (id, e.delay))
            .collect()
    }

    /// Enqueues an SDU.
    pub fn on_enqueue(&mut self, sdu: Sdu) {
        self.queue.push_back(PendingSdu { sdu, retries: 0 });
    }

    /// Slot-boundary duties. Returns at most one notable event.
    pub fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) -> CoreEvent {
        let now = ctx.now();
        self.quiet.prune(now);
        let mut event = CoreEvent::None;
        let mut transmitted = std::mem::take(&mut self.boundary_taken);

        match self.role {
            CoreRole::Receiving {
                peer,
                ack_slot,
                data_received,
            } => {
                if slot >= ack_slot {
                    if data_received && slot == ack_slot {
                        let ack = Frame::control(FrameKind::Ack, self.id, peer, ctx.control_bits());
                        ctx.send_frame_now(ack);
                        event = CoreEvent::ReceiveCompleted { peer };
                        transmitted = true;
                    }
                    self.role = CoreRole::Idle;
                }
            }
            CoreRole::SendingData {
                peer,
                data_slot,
                ack_slot,
            } => {
                if slot == data_slot {
                    let head = self.queue.front().expect("SendingData with empty queue");
                    let mut sdu = head.sdu;
                    sdu.next_hop = peer;
                    let mut frame = Frame::data(FrameKind::Data, self.id, sdu);
                    if head.retries > 0 {
                        frame = frame.as_retransmission();
                    }
                    ctx.send_frame_now(frame);
                } else if slot > ack_slot {
                    self.attempt_failed(ctx, DropReason::RetryExhausted);
                    self.role = CoreRole::Idle;
                    event = CoreEvent::SendFailed { peer };
                }
            }
            CoreRole::Contending { peer, rts_slot, .. } => {
                if slot >= rts_slot + 2 {
                    // Contention failures consume the retry budget too —
                    // a next hop that drifted out of range must not be
                    // re-contended forever.
                    self.role = CoreRole::Idle;
                    self.attempt_failed(ctx, DropReason::HandshakeTimeout);
                    event = CoreEvent::SendFailed { peer };
                }
            }
            CoreRole::Idle => {}
        }

        if transmitted {
            // This boundary's transmit opportunity is taken by the Ack.
            self.rts_inbox.retain(|&(_, _, s, _)| s + 1 != slot);
        } else {
            self.answer_rts_inbox(ctx, slot);
            self.maybe_contend(ctx, slot);
        }
        event
    }

    fn answer_rts_inbox(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        let clock = ctx.clock();
        let now = ctx.now();
        let candidates: Vec<_> = self
            .rts_inbox
            .drain(..)
            .filter(|&(_, _, s, _)| s + 1 == slot)
            .collect();
        if candidates.is_empty() || self.role != CoreRole::Idle || self.hold {
            return;
        }
        if self.quiet.overlaps(now, clock.start_of(slot + 2)) {
            return;
        }
        // No priority field in the baselines: first decoded RTS wins.
        let (src, td, _, measured) = candidates[0];
        let mut cts =
            Frame::control(FrameKind::Cts, self.id, src, ctx.control_bits()).with_data_duration(td);
        if self.cfg.announce_delays {
            cts = cts.with_pair_delay(measured);
        }
        if self.cfg.announce_table {
            cts = cts.with_announced(self.table_announcement());
        }
        ctx.send_frame_now(cts);
        let tau = if self.cfg.announce_delays {
            measured
        } else {
            clock.tau_max()
        };
        let ack_slot = clock.ack_slot(slot + 1, td, tau);
        self.role = CoreRole::Receiving {
            peer: src,
            ack_slot,
            data_received: false,
        };
    }

    fn maybe_contend(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        if self.role != CoreRole::Idle
            || self.hold
            || self.queue.is_empty()
            || slot < self.next_attempt_slot
            || self.quiet.is_quiet(ctx.now())
        {
            return;
        }
        let head = *self.queue.front().expect("checked non-empty");
        let peer = head.sdu.next_hop;
        let td = ctx.tx_duration(head.sdu.bits);
        let mut rts = Frame::control(FrameKind::Rts, self.id, peer, ctx.control_bits())
            .with_data_duration(td);
        if self.cfg.announce_delays {
            if let Some(tau) = self.neighbors.delay_of(peer) {
                rts = rts.with_pair_delay(tau);
            }
        }
        if self.cfg.announce_table {
            rts = rts.with_announced(self.table_announcement());
        }
        ctx.send_frame_now(rts);
        self.role = CoreRole::Contending {
            peer,
            rts_slot: slot,
            td,
        };
    }

    /// Reception handling. Returns the event the wrapper may react to.
    pub fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) -> CoreEvent {
        self.neighbors
            .observe(rx.frame.src, rx.prop_delay, ctx.now());
        let frame = rx.frame;
        let to_me = rx.addressed_to(self.id);
        let clock = ctx.clock();
        match frame.kind {
            FrameKind::Rts => {
                if to_me {
                    self.rts_inbox.push((
                        frame.src,
                        frame
                            .data_duration
                            .unwrap_or_else(|| ctx.tx_duration(2_048)),
                        clock.slot_of(frame.timestamp),
                        rx.prop_delay,
                    ));
                    CoreEvent::None
                } else {
                    self.overheard(ctx, frame)
                }
            }
            FrameKind::Cts => {
                if to_me {
                    if let CoreRole::Contending { peer, rts_slot, td } = self.role {
                        if frame.src == peer {
                            let data_slot = rts_slot + 2;
                            let tau = if self.cfg.announce_delays {
                                rx.prop_delay
                            } else {
                                clock.tau_max()
                            };
                            let ack_slot = clock.ack_slot(data_slot, td, tau);
                            self.role = CoreRole::SendingData {
                                peer,
                                data_slot,
                                ack_slot,
                            };
                        }
                    }
                    CoreEvent::None
                } else {
                    self.overheard(ctx, frame)
                }
            }
            FrameKind::Data => {
                if to_me {
                    if let CoreRole::Receiving {
                        peer,
                        ack_slot,
                        data_received,
                    } = self.role
                    {
                        if frame.src == peer && !data_received {
                            self.role = CoreRole::Receiving {
                                peer,
                                ack_slot,
                                data_received: true,
                            };
                            return CoreEvent::None;
                        }
                    }
                    CoreEvent::UnexpectedData
                } else {
                    CoreEvent::None
                }
            }
            FrameKind::Ack => {
                if to_me {
                    if let CoreRole::SendingData { peer, .. } = self.role {
                        if frame.src == peer {
                            self.succeed();
                            self.role = CoreRole::Idle;
                            return CoreEvent::SendSucceeded { peer };
                        }
                    }
                }
                CoreEvent::None
            }
            _ => CoreEvent::None,
        }
    }

    fn overheard(&mut self, ctx: &mut MacContext<'_>, frame: &Frame) -> CoreEvent {
        let info = OverheardInfo {
            kind: frame.kind,
            src: frame.src,
            dst: frame.dst,
            control_slot: ctx.clock().slot_of(frame.timestamp),
            pair_delay: frame.pair_delay,
            data_duration: frame.data_duration,
        };
        let end = self.conservative_end(ctx, &info);
        self.quiet.add(ctx.now(), end);
        // Losing contention is also just an overheard negotiation here;
        // the plain core gives up immediately (wrappers may do better).
        if let CoreRole::Contending { peer, .. } = self.role {
            if frame.src == peer {
                self.role = CoreRole::Idle;
                self.attempt_failed(ctx, DropReason::HandshakeTimeout);
            }
        }
        CoreEvent::Overheard(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uasn_net::mac::MacCommand;
    use uasn_net::slots::SlotClock;
    use uasn_phy::modem::ModemSpec;

    pub(crate) struct CoreHarness {
        pub core: SlottedCore,
        rng: StdRng,
        pub clock: SlotClock,
        spec: ModemSpec,
        pub commands: Vec<MacCommand>,
    }

    impl CoreHarness {
        pub fn new(id: u32, cfg: CoreConfig) -> Self {
            CoreHarness {
                core: SlottedCore::new(NodeId::new(id), cfg),
                rng: StdRng::seed_from_u64(3),
                clock: SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1)),
                spec: ModemSpec::new(12_000.0),
                commands: Vec::new(),
            }
        }

        pub fn slot(&mut self, slot: SlotIndex) -> CoreEvent {
            let now = self.clock.start_of(slot);
            let mut ctx = MacContext::new(
                now,
                self.core.id,
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            self.core.on_slot_start(&mut ctx, slot)
        }

        pub fn recv(&mut self, frame: Frame, delay: SimDuration) -> CoreEvent {
            let arrival_start = frame.timestamp + delay;
            let now = arrival_start + self.spec.tx_duration(frame.bits);
            let mut ctx = MacContext::new(
                now,
                self.core.id,
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            let rx = Reception {
                frame: &frame,
                arrival_start,
                prop_delay: delay,
            };
            self.core.on_frame_received(&mut ctx, &rx)
        }

        pub fn sent_kinds(&mut self) -> Vec<FrameKind> {
            std::mem::take(&mut self.commands)
                .into_iter()
                .filter_map(|c| match c {
                    MacCommand::SendFrame { frame, .. } => Some(frame.kind),
                    _ => None,
                })
                .collect()
        }
    }

    fn sdu_to(next: u32) -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(0),
            next_hop: NodeId::new(next),
            bits: 2_048,
            created: SimTime::ZERO,
            attempt: 0,
        }
    }

    fn stamped(mut f: Frame, clock: &SlotClock, slot: SlotIndex) -> Frame {
        f.timestamp = clock.start_of(slot);
        f
    }

    #[test]
    fn core_runs_the_four_way_handshake() {
        let mut h = CoreHarness::new(0, CoreConfig::default());
        let clock = h.clock;
        h.core.on_enqueue(sdu_to(5));
        h.slot(0);
        assert_eq!(h.sent_kinds(), [FrameKind::Rts]);
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(400));
        h.slot(2);
        assert_eq!(h.sent_kinds(), [FrameKind::Data]);
        // Conservative τmax scheduling: TD + τmax = 1.17 s -> ack 2 slots on.
        let ack = stamped(
            Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64),
            &clock,
            4,
        );
        let ev = h.recv(ack, SimDuration::from_millis(400));
        assert_eq!(
            ev,
            CoreEvent::SendSucceeded {
                peer: NodeId::new(5)
            }
        );
        assert!(h.core.queue.is_empty());
    }

    #[test]
    fn core_receiver_answers_first_rts_without_priority() {
        let mut h = CoreHarness::new(5, CoreConfig::default());
        let clock = h.clock;
        for src in [3u32, 1] {
            let rts = stamped(
                Frame::control(FrameKind::Rts, NodeId::new(src), NodeId::new(5), 64)
                    .with_data_duration(SimDuration::from_micros(170_667))
                    .with_rp(src), // ignored by the baselines
                &clock,
                0,
            );
            h.recv(rts, SimDuration::from_millis(100 * (src as u64 + 1)));
        }
        h.slot(1);
        let cmds = std::mem::take(&mut h.commands);
        let cts_dst = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, .. } if frame.kind == FrameKind::Cts => {
                    Some(frame.dst)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(cts_dst, NodeId::new(3), "first decoded wins");
    }

    #[test]
    fn overhearing_applies_conservative_quiet() {
        let mut h = CoreHarness::new(9, CoreConfig::default());
        let clock = h.clock;
        let rts = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(1), NodeId::new(2), 64)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        let ev = h.recv(rts, SimDuration::from_millis(500));
        assert!(matches!(ev, CoreEvent::Overheard(_)));
        h.core.on_enqueue(sdu_to(1));
        // Exchange with τmax reservation: data slot 2, ack slot 2+ceil(1.17)=4;
        // quiet runs to slot-4 start + ω + τmax = exactly the slot-5 start.
        for s in 1..=4 {
            h.slot(s);
            assert_eq!(h.sent_kinds(), Vec::<FrameKind>::new(), "slot {s} quiet");
        }
        h.slot(5);
        assert_eq!(h.sent_kinds(), [FrameKind::Rts]);
    }

    #[test]
    fn hold_suppresses_contention_and_cts() {
        let mut h = CoreHarness::new(0, CoreConfig::default());
        let clock = h.clock;
        h.core.hold = true;
        h.core.on_enqueue(sdu_to(5));
        h.slot(0);
        assert_eq!(h.sent_kinds(), Vec::<FrameKind>::new());
        let rts = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(3), NodeId::new(0), 64)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(100));
        h.slot(1);
        assert_eq!(h.sent_kinds(), Vec::<FrameKind>::new());
        h.core.hold = false;
        h.slot(2);
        assert_eq!(h.sent_kinds(), [FrameKind::Rts]);
    }

    #[test]
    fn unexpected_data_surfaces_event() {
        let mut h = CoreHarness::new(5, CoreConfig::default());
        let clock = h.clock;
        let data = stamped(
            Frame::data(FrameKind::Data, NodeId::new(0), sdu_to(5)),
            &clock,
            0,
        );
        let ev = h.recv(data, SimDuration::from_millis(300));
        assert_eq!(ev, CoreEvent::UnexpectedData);
    }

    #[test]
    fn contention_loss_backs_off() {
        let mut h = CoreHarness::new(0, CoreConfig::default());
        let clock = h.clock;
        h.core.on_enqueue(sdu_to(5));
        h.slot(0);
        h.sent_kinds();
        // Peer answers someone else.
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(7), 64)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(300));
        assert_eq!(h.core.role, CoreRole::Idle);
        assert!(h.core.next_attempt_slot >= 2);
        assert!(h.core.cw > CoreConfig::default().base_cw);
    }

    #[test]
    fn retry_budget_drops_sdu() {
        let cfg = CoreConfig {
            max_retries: 0,
            ..CoreConfig::default()
        };
        let mut h = CoreHarness::new(0, cfg);
        let clock = h.clock;
        h.core.on_enqueue(sdu_to(5));
        h.slot(0);
        h.sent_kinds();
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(400));
        h.slot(2); // data out
        h.sent_kinds();
        // Never ack: at ack_slot+1 the attempt fails and the SDU is dropped
        // (max_retries = 0).
        let ev5 = h.slot(5);
        assert_eq!(
            ev5,
            CoreEvent::SendFailed {
                peer: NodeId::new(5)
            }
        );
        assert!(h.core.queue.is_empty());
    }
}
