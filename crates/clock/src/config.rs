//! Clock-model configuration and the worst-case sync-error budget.

use uasn_sim::time::SimDuration;

/// Periodic resynchronization settings.
///
/// Models a lightweight sync service (periodic surface beacon or
/// piggybacked timestamps): every `period` a node's clock is pulled back to
/// within `residual` of global time, after which skew and jitter accumulate
/// again until the next round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResyncConfig {
    /// Interval between resynchronization rounds.
    pub period: SimDuration,
    /// Worst-case clock offset immediately *after* a round (protocol +
    /// propagation uncertainty of the sync exchange itself).
    pub residual: SimDuration,
}

/// Per-node clock-model knobs.
///
/// The model behind [`crate::VirtualClock`] is
///
/// ```text
/// local(t) = t + offset + skew·t + jitter(t)
/// ```
///
/// with `offset` drawn once uniformly from `±max_offset`, `skew` drawn once
/// uniformly from `±skew_ppm` parts per million, and `jitter(t)` a seeded
/// random walk of `±jitter_step` every `jitter_interval`, clamped to
/// `±jitter_max`.
///
/// # Examples
///
/// ```
/// use uasn_clock::ClockModelConfig;
/// use uasn_sim::time::SimDuration;
///
/// let ideal = ClockModelConfig::ideal();
/// assert!(ideal.is_ideal());
/// assert!(ideal.worst_case_error(SimDuration::from_secs(300)).is_zero());
///
/// let drifting = ClockModelConfig::drifting(100.0);
/// assert!(!drifting.is_ideal());
/// assert!(!drifting.worst_case_error(SimDuration::from_secs(300)).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockModelConfig {
    /// Half-width of the uniform initial clock offset.
    pub max_offset: SimDuration,
    /// Half-width of the uniform constant skew, parts per million.
    pub skew_ppm: f64,
    /// Magnitude of one jitter random-walk step.
    pub jitter_step: SimDuration,
    /// Clamp on the accumulated jitter walk.
    pub jitter_max: SimDuration,
    /// Interval between jitter steps.
    pub jitter_interval: SimDuration,
    /// Half-width of the uniform noise on each timestamp-derived delay
    /// measurement (detection / symbol-timing uncertainty).
    pub meas_noise: SimDuration,
    /// Optional periodic resynchronization; `None` lets error grow over the
    /// whole run.
    pub resync: Option<ResyncConfig>,
}

impl ClockModelConfig {
    /// The paper's assumption: perfectly synchronized clocks, noise-free
    /// delay measurements. Draws no random numbers.
    pub fn ideal() -> Self {
        ClockModelConfig {
            max_offset: SimDuration::ZERO,
            skew_ppm: 0.0,
            jitter_step: SimDuration::ZERO,
            jitter_max: SimDuration::ZERO,
            jitter_interval: SimDuration::ZERO,
            meas_noise: SimDuration::ZERO,
            resync: None,
        }
    }

    /// A representative non-ideal preset for sensitivity sweeps: ±5 ms
    /// initial offset, `±skew_ppm` skew, a 20 µs/s jitter walk clamped at
    /// ±500 µs, 200 µs measurement noise, and a 60 s resync round leaving
    /// ≤1 ms residual.
    pub fn drifting(skew_ppm: f64) -> Self {
        ClockModelConfig {
            max_offset: SimDuration::from_millis(5),
            skew_ppm,
            jitter_step: SimDuration::from_micros(20),
            jitter_max: SimDuration::from_micros(500),
            jitter_interval: SimDuration::from_secs(1),
            meas_noise: SimDuration::from_micros(200),
            resync: Some(ResyncConfig {
                period: SimDuration::from_secs(60),
                residual: SimDuration::from_millis(1),
            }),
        }
    }

    /// Whether this model is exactly the ideal one (no offset, skew,
    /// jitter, measurement noise, or resync machinery).
    pub fn is_ideal(&self) -> bool {
        self.max_offset.is_zero()
            && self.skew_ppm == 0.0
            && self.jitter_step.is_zero()
            && self.jitter_max.is_zero()
            && self.meas_noise.is_zero()
            && self.resync.is_none()
    }

    /// The worst-case |local − global| any clock under this model can reach
    /// within `horizon` of the last sync point:
    ///
    /// ```text
    /// error ≤ base_offset + |skew|·min(horizon, resync period) + jitter_max
    /// ```
    ///
    /// where `base_offset` is `max_offset` (or, with resync, the larger of
    /// `max_offset` and the resync residual, covering both the initial
    /// stretch and every post-round stretch). This is the budget the MAC
    /// layer uses to shrink its safety windows.
    pub fn worst_case_error(&self, horizon: SimDuration) -> SimDuration {
        if self.is_ideal() {
            return SimDuration::ZERO;
        }
        let (base, effective) = match self.resync {
            Some(r) => (self.max_offset.max(r.residual), horizon.min(r.period)),
            None => (self.max_offset, horizon),
        };
        let skew_us = (self.skew_ppm.abs() * 1e-6 * effective.as_micros() as f64).ceil() as u64;
        base + SimDuration::from_micros(skew_us) + self.jitter_max
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.skew_ppm.is_finite() && self.skew_ppm >= 0.0) {
            return Err("skew_ppm must be finite and non-negative".to_string());
        }
        if self.skew_ppm >= 1e6 {
            return Err("skew_ppm must stay below one million (skew < 100%)".to_string());
        }
        if !self.jitter_step.is_zero() && self.jitter_interval.is_zero() {
            return Err("jitter_interval must be positive when jitter_step is set".to_string());
        }
        if self.jitter_max < self.jitter_step {
            return Err("jitter_max must be at least jitter_step".to_string());
        }
        if let Some(r) = self.resync {
            if r.period.is_zero() {
                return Err("resync period must be positive".to_string());
            }
        }
        Ok(())
    }
}

impl Default for ClockModelConfig {
    fn default() -> Self {
        ClockModelConfig::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_has_zero_budget_at_any_horizon() {
        let c = ClockModelConfig::ideal();
        assert!(c.is_ideal());
        c.validate().expect("valid");
        for secs in [0u64, 1, 300, 3_000] {
            assert!(c.worst_case_error(SimDuration::from_secs(secs)).is_zero());
        }
    }

    #[test]
    fn budget_grows_with_horizon_until_resync_caps_it() {
        let mut c = ClockModelConfig::drifting(100.0);
        c.resync = None;
        let short = c.worst_case_error(SimDuration::from_secs(10));
        let long = c.worst_case_error(SimDuration::from_secs(300));
        assert!(long > short, "{long} vs {short}");

        let capped = ClockModelConfig::drifting(100.0);
        let period = capped.resync.unwrap().period;
        assert_eq!(
            capped.worst_case_error(SimDuration::from_secs(300)),
            capped.worst_case_error(period),
            "beyond the resync period the budget stops growing"
        );
    }

    #[test]
    fn budget_matches_hand_computation() {
        let c = ClockModelConfig::drifting(100.0);
        // 5 ms base + 100 ppm over the 60 s resync period (6 ms) + 500 µs.
        assert_eq!(
            c.worst_case_error(SimDuration::from_secs(300)),
            SimDuration::from_micros(5_000 + 6_000 + 500)
        );
    }

    #[test]
    fn invalid_models_are_rejected() {
        let mut c = ClockModelConfig::ideal();
        c.skew_ppm = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ClockModelConfig::drifting(50.0);
        c.jitter_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = ClockModelConfig::drifting(50.0);
        c.jitter_max = SimDuration::ZERO;
        assert!(c.validate().is_err(), "jitter_max below jitter_step");

        let mut c = ClockModelConfig::drifting(50.0);
        c.resync = Some(ResyncConfig {
            period: SimDuration::ZERO,
            residual: SimDuration::from_millis(1),
        });
        assert!(c.validate().is_err());
    }
}
