//! The per-node drifting virtual clock.

use rand::rngs::StdRng;
use rand::Rng;
use uasn_sim::time::{SimDuration, SimTime};

use crate::config::ClockModelConfig;

/// One node's clock: `local(t) = t + offset + skew·t + jitter(t)`, with a
/// monotone clamp so local time never runs backwards (a stepped-back clock
/// slews instead, like a disciplined oscillator).
///
/// All arithmetic is in signed microseconds internally; the public API
/// stays in the simulator's unsigned [`SimTime`], saturating at t = 0.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uasn_clock::{ClockModelConfig, VirtualClock};
/// use uasn_sim::time::SimTime;
///
/// let mut ideal = VirtualClock::ideal();
/// let t = SimTime::from_secs(42);
/// assert_eq!(ideal.local_time(t), t);
///
/// let model = ClockModelConfig::drifting(100.0);
/// let mut clock = VirtualClock::from_model(&model, StdRng::seed_from_u64(7));
/// let local = clock.local_time(t);
/// let bound = model.worst_case_error(t.duration_since(SimTime::ZERO));
/// assert!(clock.error_at(t) <= bound);
/// assert!(local > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualClock {
    offset_us: i64,
    /// Fractional skew (ppm · 1e-6), signed.
    skew: f64,
    jitter_us: i64,
    jitter_step_us: i64,
    jitter_max_us: i64,
    jitter_interval_us: u64,
    next_jitter_at_us: u64,
    last_local_us: u64,
    rng: StdRng,
}

impl VirtualClock {
    /// Draws one clock from `model` using `rng` as its private stream.
    ///
    /// Exactly two values (offset, skew) are drawn up front regardless of
    /// the model, so a clock's stream position depends only on how often
    /// its jitter walk steps and resyncs fire — never on which knobs are
    /// zero.
    pub fn from_model(model: &ClockModelConfig, mut rng: StdRng) -> Self {
        let max_off = model.max_offset.as_micros() as i64;
        let offset_us = rng.gen_range(-max_off..=max_off);
        let skew = rng.gen_range(-model.skew_ppm..=model.skew_ppm) * 1e-6;
        VirtualClock {
            offset_us,
            skew,
            jitter_us: 0,
            jitter_step_us: model.jitter_step.as_micros() as i64,
            jitter_max_us: model.jitter_max.as_micros() as i64,
            jitter_interval_us: model.jitter_interval.as_micros(),
            next_jitter_at_us: model.jitter_interval.as_micros(),
            last_local_us: 0,
            rng,
        }
    }

    /// A perfectly synchronized clock: `local == global` always.
    pub fn ideal() -> Self {
        use rand::SeedableRng;
        VirtualClock::from_model(&ClockModelConfig::ideal(), StdRng::seed_from_u64(0))
    }

    /// Advances the jitter random walk up to global time `g` (microseconds).
    fn advance_jitter(&mut self, g: u64) {
        if self.jitter_interval_us == 0 || self.jitter_step_us == 0 {
            return;
        }
        while self.next_jitter_at_us <= g {
            let step = if self.rng.gen_bool(0.5) {
                self.jitter_step_us
            } else {
                -self.jitter_step_us
            };
            self.jitter_us = (self.jitter_us + step).clamp(-self.jitter_max_us, self.jitter_max_us);
            self.next_jitter_at_us += self.jitter_interval_us;
        }
    }

    /// This node's reading of its own clock at global instant `global`.
    /// Monotone in `global` (the walk may pull the raw reading backwards;
    /// the returned value then holds until the raw reading catches up).
    pub fn local_time(&mut self, global: SimTime) -> SimTime {
        let g = global.as_micros();
        self.advance_jitter(g);
        let skew_term = (g as f64 * self.skew).round() as i64;
        let raw = (g as i64 + self.offset_us + skew_term + self.jitter_us).max(0) as u64;
        let local = raw.max(self.last_local_us);
        self.last_local_us = local;
        SimTime::from_micros(local)
    }

    /// The global instant at which this clock reads `local` — the affine
    /// inverse of [`Self::local_time`] at the walk's current state,
    /// saturating at t = 0. Round-trip error is bounded by twice the jitter
    /// clamp plus rounding (see the property tests).
    pub fn global_for_local(&self, local: SimTime) -> SimTime {
        let adj = local.as_micros() as i64 - self.offset_us - self.jitter_us;
        let g = (adj as f64 / (1.0 + self.skew)).round() as i64;
        SimTime::from_micros(g.max(0) as u64)
    }

    /// |local − global| at `global`.
    pub fn error_at(&mut self, global: SimTime) -> SimDuration {
        let local = self.local_time(global).as_micros() as i64;
        let g = global.as_micros() as i64;
        SimDuration::from_micros(local.abs_diff(g))
    }

    /// One resynchronization round at global instant `at`: the offset is
    /// redrawn so the clock reads within `±residual` of global time and the
    /// jitter walk restarts from zero. The monotone clamp is kept, so a
    /// clock that was running fast slews rather than stepping back.
    pub fn resync(&mut self, residual: SimDuration, at: SimTime) {
        let g = at.as_micros();
        self.advance_jitter(g);
        let r_max = residual.as_micros() as i64;
        let r = self.rng.gen_range(-r_max..=r_max);
        let skew_term = (g as f64 * self.skew).round() as i64;
        self.offset_us = r - skew_term;
        self.jitter_us = 0;
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn drifting(seed: u64) -> VirtualClock {
        VirtualClock::from_model(
            &ClockModelConfig::drifting(100.0),
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn ideal_is_the_identity() {
        let mut c = VirtualClock::ideal();
        for secs in [0u64, 1, 7, 300] {
            let t = SimTime::from_secs(secs);
            assert_eq!(c.local_time(t), t);
            assert_eq!(c.global_for_local(t), t);
            assert!(c.error_at(t).is_zero());
        }
    }

    #[test]
    fn drift_stays_within_the_advertised_budget() {
        let model = ClockModelConfig::drifting(200.0);
        for seed in 0..20u64 {
            let mut c = VirtualClock::from_model(&model, StdRng::seed_from_u64(seed));
            let mut worst = SimDuration::ZERO;
            for s in 0..60u64 {
                let t = SimTime::from_secs(s);
                worst = worst.max(c.error_at(t));
            }
            let budget = model.worst_case_error(SimDuration::from_secs(60));
            assert!(worst <= budget, "seed {seed}: {worst} > {budget}");
            assert!(
                !worst.is_zero(),
                "seed {seed}: drifting clock never drifted"
            );
        }
    }

    #[test]
    fn resync_pulls_the_error_back_down() {
        let mut c = drifting(3);
        let late = SimTime::from_secs(590);
        // Let it drift for ~10 minutes without help.
        let before = c.error_at(late);
        c.resync(SimDuration::from_millis(1), late);
        let after = c.error_at(late);
        // A slow clock steps straight to within the residual; a fast clock
        // slews (monotone clamp), so immediately after the round the error
        // can only be unchanged, never worse.
        assert!(
            after <= before.max(SimDuration::from_millis(1)),
            "before {before}, after {after}"
        );
        // One second later any slew has caught up: the clock is within
        // residual + skew·1s + jitter_max of global time.
        let t = late + SimDuration::from_secs(1);
        let bound = SimDuration::from_micros(1_000 + 1 + 500);
        assert!(c.error_at(t) <= bound, "{} > {bound}", c.error_at(t));
    }

    #[test]
    fn local_time_is_monotone_across_resync() {
        let mut c = drifting(11);
        let mut prev = SimTime::ZERO;
        for s in 0..120u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(s * 500);
            if s == 60 {
                c.resync(SimDuration::from_millis(1), t);
            }
            let local = c.local_time(t);
            assert!(local >= prev, "local time ran backwards at {t}");
            prev = local;
        }
    }
}
