//! Per-node clock realism for underwater acoustic sensor networks.
//!
//! The paper assumes a perfectly synchronized slot clock (§3.1) and exact
//! propagation-delay knowledge from packet timestamps. Both assumptions are
//! singled out by the UASN literature as the hardest to realize on acoustic
//! hardware, and EW-MAC's non-interference argument for extra communications
//! (Eq 6, windows I–VII) rests directly on them. This crate supplies the
//! machinery to *break* those assumptions in a controlled, deterministic,
//! bounded way:
//!
//! - [`VirtualClock`] — a per-node clock with an initial offset, a constant
//!   skew (ppm), and a seeded random-walk jitter, convertible between node
//!   **local** time and simulator **global** time.
//! - [`DelayEstimator`] — timestamp-derived propagation-delay measurement
//!   with explicit measurement noise and a staleness bound that grows as
//!   mobility moves the endpoints apart.
//! - [`ClockModelConfig`] — the knobs, plus [`ClockModelConfig::worst_case_error`],
//!   the error budget the MAC layer subtracts from its safety windows so
//!   degradation under drift is graceful instead of silently colliding.
//!
//! The ideal model ([`ClockModelConfig::ideal`]) is the default everywhere:
//! it draws no random numbers and adds no events, so every seeded run under
//! it is byte-for-byte identical to a build without this crate.

pub mod config;
pub mod drift;
pub mod estimate;

pub use config::{ClockModelConfig, ResyncConfig};
pub use drift::VirtualClock;
pub use estimate::DelayEstimator;
