//! Timestamp-derived propagation-delay estimation with explicit error bars.
//!
//! §4.3 of the paper: every packet carries its sending timestamp; the
//! receiver computes `arrival − timestamp` as the one-hop propagation delay.
//! With ideal clocks that difference *is* the delay. With per-node clocks it
//! is contaminated by both endpoints' clock errors plus detection noise, and
//! the stored value additionally **ages**: mobility moves the endpoints, so
//! a delay measured `age` ago can be off by up to the distance the pair can
//! have closed or opened since, divided by the sound speed.

use rand::rngs::StdRng;
use rand::Rng;
use uasn_sim::time::{SimDuration, SimTime};

/// Pure delay-estimation arithmetic: measurement, noise injection, and the
/// staleness/error bounds a MAC can subtract from its safety windows.
///
/// # Examples
///
/// ```
/// use uasn_clock::DelayEstimator;
/// use uasn_sim::time::{SimDuration, SimTime};
///
/// // 200 µs detection noise, nodes drifting at up to 0.5 m/s, 1.5 km/s sound.
/// let est = DelayEstimator::new(SimDuration::from_micros(200), 0.5, 1_500.0);
/// let raw = est.estimate(SimTime::from_secs(10), SimTime::from_secs(11));
/// assert_eq!(raw, SimDuration::from_secs(1));
/// // A measurement 30 s old can be off by 2·0.5·30 m of travel: 20 ms.
/// assert_eq!(
///     est.staleness_bound(SimDuration::from_secs(30)),
///     SimDuration::from_micros(20_000)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayEstimator {
    measurement_noise: SimDuration,
    max_node_speed_ms: f64,
    sound_speed_ms: f64,
}

impl DelayEstimator {
    /// Creates an estimator.
    ///
    /// `measurement_noise` is the half-width of the uniform noise on each
    /// measurement; `max_node_speed_ms` the per-node drift-speed cap (both
    /// endpoints may move, so the relative speed bound is twice this);
    /// `sound_speed_ms` the propagation speed used to convert closed
    /// distance into delay error.
    ///
    /// # Panics
    ///
    /// Panics if `sound_speed_ms` is not positive and finite, or
    /// `max_node_speed_ms` is negative or non-finite.
    pub fn new(
        measurement_noise: SimDuration,
        max_node_speed_ms: f64,
        sound_speed_ms: f64,
    ) -> Self {
        assert!(
            sound_speed_ms.is_finite() && sound_speed_ms > 0.0,
            "sound speed must be positive"
        );
        assert!(
            max_node_speed_ms.is_finite() && max_node_speed_ms >= 0.0,
            "node speed must be non-negative"
        );
        DelayEstimator {
            measurement_noise,
            max_node_speed_ms,
            sound_speed_ms,
        }
    }

    /// The raw timestamp-difference estimate. With ideal clocks this equals
    /// the true propagation delay; with drifting clocks the endpoints'
    /// offsets leak in. Saturates at zero when the receiver's clock reads
    /// *earlier* than the sender's timestamp.
    pub fn estimate(&self, sent_local: SimTime, recv_local: SimTime) -> SimDuration {
        SimDuration::from_micros(
            recv_local
                .as_micros()
                .saturating_sub(sent_local.as_micros()),
        )
    }

    /// Adds one uniform detection-noise draw in `±measurement_noise` to a
    /// raw estimate, saturating at zero.
    pub fn noisy(&self, raw: SimDuration, rng: &mut StdRng) -> SimDuration {
        let half = self.measurement_noise.as_micros() as i64;
        if half == 0 {
            return raw;
        }
        let noise = rng.gen_range(-half..=half);
        let value = raw.as_micros() as i64 + noise;
        SimDuration::from_micros(value.max(0) as u64)
    }

    /// How far a delay measured `age` ago can have drifted from the current
    /// true delay, from geometry alone: both endpoints can have moved
    /// `max_node_speed · age` toward or away from each other.
    pub fn staleness_bound(&self, age: SimDuration) -> SimDuration {
        let drift_m = 2.0 * self.max_node_speed_ms * age.as_secs_f64();
        SimDuration::from_secs_f64(drift_m / self.sound_speed_ms)
    }

    /// Total advertised error bar on a stored estimate of the given `age`:
    /// measurement noise plus staleness.
    pub fn error_bound(&self, age: SimDuration) -> SimDuration {
        self.measurement_noise + self.staleness_bound(age)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    fn est() -> DelayEstimator {
        DelayEstimator::new(SimDuration::from_micros(200), 0.5, 1_500.0)
    }

    #[test]
    fn estimate_is_the_local_timestamp_difference() {
        let e = est();
        let sent = SimTime::from_micros(1_000_000);
        let recv = SimTime::from_micros(1_400_000);
        assert_eq!(e.estimate(sent, recv), SimDuration::from_micros(400_000));
        // A clock pair skewed far enough that the receiver reads earlier
        // than the sender saturates instead of underflowing.
        assert_eq!(e.estimate(recv, sent), SimDuration::ZERO);
    }

    #[test]
    fn noise_stays_within_the_half_width_and_saturates() {
        let e = est();
        let mut rng = StdRng::seed_from_u64(5);
        let raw = SimDuration::from_micros(1_000);
        for _ in 0..1_000 {
            let n = e.noisy(raw, &mut rng);
            assert!(n.as_micros() >= 800 && n.as_micros() <= 1_200, "{n}");
        }
        // Near-zero raw values cannot go negative.
        for _ in 0..1_000 {
            let n = e.noisy(SimDuration::from_micros(50), &mut rng);
            assert!(n.as_micros() <= 250);
        }
        // Zero noise is the identity and draws nothing.
        let quiet = DelayEstimator::new(SimDuration::ZERO, 0.5, 1_500.0);
        let before = rng.clone();
        assert_eq!(quiet.noisy(raw, &mut rng), raw);
        assert_eq!(rng, before, "zero-noise path must not consume the stream");
    }

    #[test]
    fn staleness_is_linear_in_age_and_speed() {
        let e = est();
        assert!(e.staleness_bound(SimDuration::ZERO).is_zero());
        let one = e.staleness_bound(SimDuration::from_secs(1));
        let ten = e.staleness_bound(SimDuration::from_secs(10));
        assert_eq!(one.as_micros(), 667); // 1 m / 1500 m/s, rounded to µs
        assert_eq!(ten.as_micros(), 6_667);
        let fast = DelayEstimator::new(SimDuration::ZERO, 5.0, 1_500.0);
        assert!(fast.staleness_bound(SimDuration::from_secs(1)) > one);
    }

    #[test]
    fn error_bound_adds_noise_and_staleness() {
        let e = est();
        let age = SimDuration::from_secs(30);
        assert_eq!(
            e.error_bound(age),
            SimDuration::from_micros(200) + e.staleness_bound(age)
        );
    }
}
