//! Property-based tests for the clock subsystem: monotonicity, bounded
//! local↔global round trips, geometric staleness bounds, and seeded
//! determinism of the jitter walk.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use uasn_clock::{ClockModelConfig, DelayEstimator, VirtualClock};
use uasn_sim::time::{SimDuration, SimTime};

fn model() -> ClockModelConfig {
    ClockModelConfig::drifting(200.0)
}

proptest! {
    #[test]
    fn local_time_is_monotone(
        seed in proptest::num::u64::ANY,
        deltas in proptest::collection::vec(0u64..5_000_000, 1..100),
    ) {
        let mut clock = VirtualClock::from_model(&model(), StdRng::seed_from_u64(seed));
        let mut g = SimTime::ZERO;
        let mut prev = SimTime::ZERO;
        for &d in &deltas {
            g += SimDuration::from_micros(d);
            let local = clock.local_time(g);
            prop_assert!(local >= prev, "local time ran backwards at {g}");
            prev = local;
        }
    }

    #[test]
    fn round_trip_stays_within_twice_the_jitter_clamp(
        seed in proptest::num::u64::ANY,
        deltas in proptest::collection::vec(1u64..10_000_000, 1..50),
    ) {
        let m = model();
        let mut clock = VirtualClock::from_model(&m, StdRng::seed_from_u64(seed));
        // Start past the saturation region near t = 0 (|offset| ≤ 5 ms).
        let mut g = SimTime::from_secs(60);
        // Clamp slew can deviate by up to 2·jitter_max; rounding in the
        // skew term, the inverse division, and the ±skew inflation add
        // at most ~3 µs on top.
        let bound = 2 * m.jitter_max.as_micros() + 3;
        for &d in &deltas {
            g += SimDuration::from_micros(d);
            let local = clock.local_time(g);
            let back = clock.global_for_local(local);
            let err = back.as_micros().abs_diff(g.as_micros());
            prop_assert!(err <= bound, "round trip off by {err} µs at {g}");
        }
    }

    #[test]
    fn delay_estimate_error_never_exceeds_staleness_bound(
        x1 in 0.0f64..10_000.0,
        x2 in 0.0f64..10_000.0,
        s1 in -0.5f64..0.5,
        s2 in -0.5f64..0.5,
        age_s in 0u64..3_600,
    ) {
        let est = DelayEstimator::new(SimDuration::ZERO, 0.5, 1_500.0);
        let t = age_s as f64;
        let d0 = (x1 - x2).abs();
        let d1 = ((x1 + s1 * t) - (x2 + s2 * t)).abs();
        let true_error_us = (d1 - d0).abs() / 1_500.0 * 1e6;
        let bound = est.error_bound(SimDuration::from_secs(age_s));
        // ±1 µs slack for the bound's own µs rounding.
        prop_assert!(
            true_error_us <= bound.as_micros() as f64 + 1.0,
            "delay drifted {true_error_us} µs, bound {bound}"
        );
    }

    #[test]
    fn seeded_jitter_walk_is_deterministic(
        seed in proptest::num::u64::ANY,
        deltas in proptest::collection::vec(0u64..2_000_000, 2..100),
    ) {
        let m = model();
        let mut a = VirtualClock::from_model(&m, StdRng::seed_from_u64(seed));
        let mut b = VirtualClock::from_model(&m, StdRng::seed_from_u64(seed));
        let resync_at = deltas.len() / 2;
        let mut g = SimTime::ZERO;
        for (i, &d) in deltas.iter().enumerate() {
            g += SimDuration::from_micros(d);
            if i == resync_at {
                a.resync(SimDuration::from_millis(1), g);
                b.resync(SimDuration::from_millis(1), g);
            }
            prop_assert_eq!(a.local_time(g), b.local_time(g));
            prop_assert_eq!(a.global_for_local(g), b.global_for_local(g));
            prop_assert_eq!(a.error_at(g), b.error_at(g));
        }
    }
}
