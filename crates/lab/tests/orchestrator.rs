//! End-to-end orchestration over the generic layer: expand a job table,
//! run it with an interrupting sink + journal, then resume and verify the
//! merged result set is exactly what an uninterrupted run produces —
//! including a failed cell retried on resume.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use uasn_lab::journal::{JournalWriter, LoadedJournal};
use uasn_lab::pool::{execute, Outcome};
use uasn_lab::spec::{JobKey, JobTable, SweepSpec};
use uasn_sim::json::JsonValue;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("uasn-lab-e2e-{name}-{}", std::process::id()))
}

fn table() -> JobTable {
    let mut jobs = Vec::new();
    for point in 0..3 {
        for protocol in ["S-FAMA", "EW-MAC"] {
            for seed in 0..4 {
                jobs.push(JobKey {
                    figure: "T".into(),
                    point,
                    protocol: protocol.into(),
                    seed,
                });
            }
        }
    }
    JobTable { jobs }
}

/// A deterministic stand-in for a simulation cell: the payload depends
/// only on the job key, never on scheduling.
fn cell_payload(job: &JobKey) -> JsonValue {
    JsonValue::Object(vec![
        ("id".to_string(), JsonValue::from_string(job.id())),
        (
            "value".to_string(),
            JsonValue::from_u64(
                job.point as u64 * 1_000 + job.seed * 7 + job.protocol.len() as u64,
            ),
        ),
    ])
}

/// Collects every payload in table order, as the aggregation layer would.
fn merged(table: &JobTable, journal: &LoadedJournal) -> Vec<String> {
    table
        .jobs
        .iter()
        .map(|job| {
            journal
                .payload(&job.id())
                .expect("cell journaled")
                .to_json()
        })
        .collect()
}

#[test]
fn interrupt_resume_and_retry_reproduce_the_full_grid() {
    let table = table();
    let spec = SweepSpec {
        figures: vec!["T".into()],
        seeds: 4,
    };
    let path = tmp("resume");

    // Reference: uninterrupted run on one worker.
    let ref_path = tmp("reference");
    {
        let mut w = JournalWriter::create(&ref_path, &spec.to_json()).expect("create");
        let pending = table.pending(|_| false);
        execute(
            &pending,
            1,
            |i| cell_payload(&table.jobs[i]),
            |r| {
                if let Outcome::Done(p) = &r.outcome {
                    w.record_done(&table.jobs[r.index].id(), r.worker, 1, p)
                        .expect("rec");
                }
                ControlFlow::Continue(())
            },
        );
    }
    let reference = merged(&table, &LoadedJournal::load(&ref_path).expect("load"));

    // Pass 1: 4 workers, one cell panics on its first attempt, and the run
    // is "killed" (Break) after 10 recorded cells.
    let poisoned = AtomicBool::new(true);
    let poisoned_idx = 13usize;
    {
        let mut w = JournalWriter::create(&path, &spec.to_json()).expect("create");
        let pending = table.pending(|_| false);
        let mut recorded = 0;
        execute(
            &pending,
            4,
            |i| {
                if i == poisoned_idx && poisoned.load(Ordering::SeqCst) {
                    panic!("flaky cell");
                }
                cell_payload(&table.jobs[i])
            },
            |r| {
                let id = table.jobs[r.index].id();
                match &r.outcome {
                    Outcome::Done(p) => w.record_done(&id, r.worker, 1, p).expect("rec"),
                    Outcome::Failed(e) => w.record_failed(&id, e).expect("rec"),
                }
                recorded += 1;
                if recorded >= 10 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
    }

    // The journal survived the interrupt: some cells done, maybe one failed.
    let loaded = LoadedJournal::load(&path).expect("load after interrupt");
    assert!(loaded.done_count() < table.len(), "interrupt left work");
    assert_eq!(
        SweepSpec::from_json(&loaded.spec).expect("spec"),
        spec,
        "header spec re-expands the same table"
    );

    // Pass 2 (resume): the poison is gone; only non-done cells run.
    poisoned.store(false, Ordering::SeqCst);
    {
        let mut w = JournalWriter::append(&path).expect("append");
        let pending = table.pending(|id| loaded.is_done(id));
        assert_eq!(pending.len(), table.len() - loaded.done_count());
        let failed_ids: Vec<String> = loaded.failed().iter().map(|(j, _)| j.to_string()).collect();
        for id in &failed_ids {
            assert!(
                pending.iter().any(|&i| table.jobs[i].id() == *id),
                "failed cell {id} is retried on resume"
            );
        }
        execute(
            &pending,
            2,
            |i| cell_payload(&table.jobs[i]),
            |r| {
                let id = table.jobs[r.index].id();
                match &r.outcome {
                    Outcome::Done(p) => w.record_done(&id, r.worker, 1, p).expect("rec"),
                    Outcome::Failed(e) => w.record_failed(&id, e).expect("rec"),
                }
                ControlFlow::Continue(())
            },
        );
    }

    // The merged grid is byte-identical to the uninterrupted reference.
    let resumed = LoadedJournal::load(&path).expect("final load");
    assert_eq!(resumed.done_count(), table.len());
    assert!(resumed.failed().is_empty());
    assert_eq!(merged(&table, &resumed), reference);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&ref_path);
}
