//! Journal live-tail hardening: a [`JournalTailer`] reading while a
//! [`JournalWriter`] is still appending must only ever see complete,
//! parseable journal lines — the same tolerance contract resume promises
//! (only the unterminated tail is unstable), exercised here with a real
//! concurrent writer, raw mid-line writes, truncated trailing records,
//! and an idle reader catching up.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use uasn_lab::journal::{JournalWriter, LoadedJournal};
use uasn_lab::spec::SweepSpec;
use uasn_lab::tail::JournalTailer;
use uasn_sim::json::JsonValue;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("uasn-tailer-{name}-{}.jsonl", std::process::id()))
}

fn spec() -> SweepSpec {
    SweepSpec {
        figures: vec!["F6".to_string()],
        seeds: 1,
    }
}

#[test]
fn concurrent_writer_and_tailer_never_tear_a_line() {
    let path = tmp("concurrent");
    let _ = std::fs::remove_file(&path);
    const RECORDS: usize = 500;

    let done = AtomicBool::new(false);
    let mut collected: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let writer_path = path.clone();
        let (done, collected) = (&done, &mut collected);
        scope.spawn(move || {
            let mut writer =
                JournalWriter::create(&writer_path, &spec().to_json()).expect("create");
            for i in 0..RECORDS {
                let payload = JsonValue::from_u64(i as u64);
                writer
                    .record_done(&format!("F6/p00/ew-mac/s{i:03}"), 0, i as u64, &payload)
                    .expect("append");
                if i % 37 == 0 {
                    // Give the reader a chance to land mid-stream.
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            done.store(true, Ordering::Release);
        });

        let mut tailer = JournalTailer::new(&path);
        loop {
            let finished = done.load(Ordering::Acquire);
            for line in tailer.poll().expect("poll") {
                // Every observed line parses — no torn reads, ever.
                let doc = JsonValue::parse(&line)
                    .unwrap_or_else(|e| panic!("tailer yielded a torn line {line:?}: {e}"));
                assert!(
                    doc.get("schema").is_some() || doc.get("job").is_some(),
                    "line is a header or a record: {line}"
                );
                collected.push(line);
            }
            if finished && tailer.poll().expect("final poll").is_empty() {
                break;
            }
        }
    });

    // header + every record, each exactly once, in write order.
    assert_eq!(collected.len(), 1 + RECORDS);
    for (i, line) in collected[1..].iter().enumerate() {
        let doc = JsonValue::parse(line).expect("record parses");
        assert_eq!(
            doc.get("job").and_then(JsonValue::as_str),
            Some(format!("F6/p00/ew-mac/s{i:03}").as_str())
        );
    }
    // And the stream matches the on-disk journal byte-for-byte, line-wise.
    let text = std::fs::read_to_string(&path).expect("read journal");
    let on_disk: Vec<&str> = text.lines().collect();
    assert_eq!(collected, on_disk);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn raw_mid_line_append_is_invisible_until_terminated() {
    let path = tmp("midline");
    let mut writer = JournalWriter::create(&path, &spec().to_json()).expect("create");
    writer
        .record_done("F6/p00/ew-mac/s000", 0, 1, &JsonValue::from_u64(1))
        .expect("record");
    drop(writer);

    let mut tailer = JournalTailer::new(&path);
    assert_eq!(tailer.poll().expect("poll").len(), 2, "header + record");

    // A writer flushes half a record (as a kill mid-write would leave it).
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open");
    file.write_all(b"{\"job\":\"F6/p00/ew-mac/s001\",\"sta")
        .expect("partial write");
    file.flush().expect("flush");
    assert!(
        tailer.poll().expect("poll").is_empty(),
        "the partial tail is held back"
    );

    // The writer finishes the line; only now does the record appear.
    file.write_all(b"tus\":\"done\",\"worker\":0,\"wall_us\":2,\"payload\":2}\n")
        .expect("finish write");
    file.flush().expect("flush");
    let lines = tailer.poll().expect("poll");
    assert_eq!(lines.len(), 1);
    let doc = JsonValue::parse(&lines[0]).expect("complete record parses");
    assert_eq!(
        doc.get("job").and_then(JsonValue::as_str),
        Some("F6/p00/ew-mac/s001")
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_trailing_record_is_never_streamed_and_resume_repairs_it() {
    let path = tmp("truncated");
    let mut writer = JournalWriter::create(&path, &spec().to_json()).expect("create");
    writer
        .record_done("F6/p00/ew-mac/s000", 0, 1, &JsonValue::from_u64(1))
        .expect("a");
    writer
        .record_done("F6/p00/ew-mac/s001", 0, 1, &JsonValue::from_u64(2))
        .expect("b");
    drop(writer);

    // Kill mid-write: the final record loses its tail including the newline.
    let text = std::fs::read_to_string(&path).expect("read");
    std::fs::write(&path, &text[..text.len() - 9]).expect("truncate");

    // A fresh tailer drains only the intact lines; the damaged tail is
    // invisible, exactly like LoadedJournal::load dropping it.
    let mut tailer = JournalTailer::new(&path);
    let lines = tailer.drain().expect("drain");
    assert_eq!(lines.len(), 2, "header + the one intact record");
    let loaded = LoadedJournal::load(&path).expect("load tolerates the tail");
    assert!(loaded.dropped_partial);

    // Resume-style append repairs the tail; the tailer was never past it,
    // so the re-run record streams cleanly from the repaired offset.
    let mut writer = JournalWriter::append(&path).expect("append repairs");
    writer
        .record_done("F6/p00/ew-mac/s001", 1, 9, &JsonValue::from_u64(2))
        .expect("retry");
    drop(writer);
    let lines = tailer.drain().expect("drain after repair");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("s001"), "{}", lines[0]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn idle_reader_catches_up_without_duplicates() {
    let path = tmp("idle");
    let mut writer = JournalWriter::create(&path, &spec().to_json()).expect("create");
    let mut tailer = JournalTailer::new(&path);
    assert_eq!(tailer.poll().expect("poll").len(), 1, "header");

    // The reader goes idle while the writer appends a pile of records.
    for i in 0..100u64 {
        writer
            .record_done(
                &format!("F6/p00/ew-mac/s{i:03}"),
                0,
                i,
                &JsonValue::from_u64(i),
            )
            .expect("record");
    }
    let caught_up = tailer.drain().expect("catch up");
    assert_eq!(caught_up.len(), 100, "every record exactly once");
    assert!(
        tailer.poll().expect("poll").is_empty(),
        "nothing re-emitted"
    );
    let _ = std::fs::remove_file(&path);
}
