//! # uasn-lab — parallel, resumable experiment orchestration
//!
//! The evaluation grid behind the paper's figures is a pile of independent
//! cells: every `(figure, parameter point, protocol, seed)` combination is
//! one deterministic simulation run whose RNG stream derives purely from
//! its configuration and seed. This crate turns that pile into a scheduled
//! job system:
//!
//! - [`spec`] expands a sweep specification into a flat job table with
//!   stable, human-readable job IDs;
//! - [`pool`] executes jobs on a hand-rolled `std::thread` worker pool
//!   (shared injector queue, per-job panic isolation, `UASN_LAB_JOBS` /
//!   `--jobs` control defaulting to the machine's available parallelism);
//! - [`journal`] checkpoints completed cells to an append-only JSONL file
//!   so an interrupted sweep resumes by skipping journaled job IDs;
//! - [`tail`] reads a journal live while another thread or process is
//!   still appending to it (the `uasn-labd` streaming wire format);
//! - [`client`] is a thin blocking HTTP client for the `uasn-labd`
//!   experiment service, sharing the submission serializer with the
//!   server;
//! - [`progress`] reports completed/total, cells/sec, ETA, and worker
//!   utilization while a sweep runs.
//!
//! The crate is deliberately generic: jobs are `Fn(usize) -> JsonValue`
//! closures and payloads are [`uasn_sim::json::JsonValue`] documents, so
//! the experiment definitions (which protocols, which configurations) stay
//! in `uasn-bench`. Because each cell is deterministic, results are
//! byte-identical regardless of worker count or resume splits — the
//! orchestrator only changes *when* a cell runs, never *what* it computes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod pool;
pub mod progress;
pub mod spec;
pub mod tail;

pub use client::{Client, ClientError, JobRequest};
pub use journal::{JournalError, JournalWriter, LoadedJournal};
pub use pool::{execute, resolve_workers, JobResult, Outcome, PoolReport};
pub use progress::Progress;
pub use spec::{JobKey, JobTable, SweepSpec};
pub use tail::JournalTailer;
