//! Sweep specifications and the flat job table they expand into.
//!
//! A sweep is `figures × parameter points × protocols × seeds`. Expansion
//! is owned by the experiment layer (it knows each figure's axis and
//! roster); this module fixes the *identity* scheme: every job gets a
//! stable, human-readable ID of the form
//! `<figure>/p<point>/<protocol-slug>/s<seed>` that survives process
//! restarts, so a checkpoint journal can name completed cells and a resume
//! can skip them.

use uasn_sim::json::JsonValue;

/// What a sweep covers: which figures and how many replications per cell.
///
/// Serialised into the journal header so `lab resume` and `lab status` can
/// re-expand the exact same job table without re-stating the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Figure/experiment IDs in run order (e.g. `["F6", "F9a"]`).
    pub figures: Vec<String>,
    /// Replications per `(figure, point, protocol)` cell.
    pub seeds: u64,
}

impl SweepSpec {
    /// Serialises into the journal-header `spec` object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "figures".to_string(),
                JsonValue::Array(self.figures.iter().map(JsonValue::from_string).collect()),
            ),
            ("seeds".to_string(), JsonValue::from_u64(self.seeds)),
        ])
    }

    /// Parses the journal-header `spec` object back.
    pub fn from_json(v: &JsonValue) -> Option<SweepSpec> {
        let figures = v
            .get("figures")?
            .as_array()?
            .iter()
            .map(|f| f.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let seeds = v.get("seeds")?.as_u64()?;
        Some(SweepSpec { figures, seeds })
    }
}

/// One job: a single seeded replication of one figure cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobKey {
    /// Figure/experiment ID ("F6", "X2", …).
    pub figure: String,
    /// Index into the figure's x-axis.
    pub point: usize,
    /// Protocol legend label ("EW-MAC", "S-FAMA", …).
    pub protocol: String,
    /// Replication index (the seed scheme maps this to a master seed).
    pub seed: u64,
}

impl JobKey {
    /// The stable journal ID: `<figure>/p<point>/<protocol-slug>/s<seed>`.
    ///
    /// ```
    /// use uasn_lab::spec::JobKey;
    ///
    /// let key = JobKey {
    ///     figure: "F6".into(),
    ///     point: 3,
    ///     protocol: "EW-MAC (no extra)".into(),
    ///     seed: 7,
    /// };
    /// assert_eq!(key.id(), "F6/p03/ew-mac-no-extra/s007");
    /// ```
    pub fn id(&self) -> String {
        format!(
            "{}/p{:02}/{}/s{:03}",
            self.figure,
            self.point,
            slug(&self.protocol),
            self.seed
        )
    }
}

/// Lowercases a legend label into an ID-safe slug: alphanumerics survive,
/// every other run of characters collapses to a single `-`.
pub fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut pending_dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_dash && !out.is_empty() {
                out.push('-');
            }
            pending_dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_dash = true;
        }
    }
    out
}

/// The flat, stably-ordered job table a sweep expands into. The position
/// of a job in `jobs` is its scheduling index; aggregation walks this
/// table in order, which is what makes results independent of the order
/// jobs actually *ran* in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTable {
    /// Every job of the sweep, in canonical (figure, point, protocol,
    /// seed) nesting order.
    pub jobs: Vec<JobKey>,
}

impl JobTable {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The indices of jobs whose IDs are **not** in `done` — the work list
    /// for a fresh or resumed sweep, in table order.
    pub fn pending<'a>(&self, done: impl Fn(&str) -> bool + 'a) -> Vec<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| !done(&job.id()))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_id_safe_and_stable() {
        assert_eq!(slug("S-FAMA"), "s-fama");
        assert_eq!(slug("EW-MAC (agg)"), "ew-mac-agg");
        assert_eq!(slug("ALOHA"), "aloha");
        assert_eq!(slug("  weird  label "), "weird-label");
    }

    #[test]
    fn job_ids_are_distinct_across_the_grid() {
        let mut ids = Vec::new();
        for figure in ["F6", "F7"] {
            for point in 0..3 {
                for protocol in ["S-FAMA", "EW-MAC"] {
                    for seed in 0..2 {
                        ids.push(
                            JobKey {
                                figure: figure.into(),
                                point,
                                protocol: protocol.into(),
                                seed,
                            }
                            .id(),
                        );
                    }
                }
            }
        }
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SweepSpec {
            figures: vec!["F6".into(), "X2".into()],
            seeds: 32,
        };
        let back = SweepSpec::from_json(&spec.to_json()).expect("parse");
        assert_eq!(back, spec);
    }

    #[test]
    fn pending_filters_done_ids_in_table_order() {
        let table = JobTable {
            jobs: (0..4)
                .map(|seed| JobKey {
                    figure: "F6".into(),
                    point: 0,
                    protocol: "EW-MAC".into(),
                    seed,
                })
                .collect(),
        };
        let done_id = table.jobs[1].id();
        let pending = table.pending(|id| id == done_id);
        assert_eq!(pending, vec![0, 2, 3]);
    }
}
