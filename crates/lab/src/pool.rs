//! The hand-rolled `std::thread` worker pool.
//!
//! No external dependencies (vendor policy): a shared injector queue
//! behind a [`Mutex`], scoped worker threads, and an [`mpsc`] channel
//! funnelling results back to the coordinator. Each job runs under
//! [`catch_unwind`], so a panicking cell is *recorded* as failed rather
//! than killing the sweep or poisoning the queue.
//!
//! Job *scheduling* is nondeterministic (workers race for the queue), but
//! job *results* must not be: the pool only ever passes a job its index,
//! and the experiment layer derives everything — configuration, RNG
//! streams — from the job table entry at that index. Aggregation then
//! walks the table in canonical order, so outputs are byte-identical for
//! any worker count.

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use uasn_sim::json::JsonValue;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "UASN_LAB_JOBS";

/// Resolves the worker count: an explicit `--jobs` value wins, then the
/// [`JOBS_ENV`] environment variable, then the machine's available
/// parallelism (1 if that cannot be determined).
pub fn resolve_workers(cli: Option<usize>) -> usize {
    resolve_workers_from(cli, std::env::var(JOBS_ENV).ok().as_deref())
}

/// [`resolve_workers`] with the environment value passed explicitly
/// (testable without mutating process state). Zero and unparseable values
/// are treated as unset.
pub fn resolve_workers_from(cli: Option<usize>, env: Option<&str>) -> usize {
    cli.filter(|&n| n > 0)
        .or_else(|| env.and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The job returned a payload.
    Done(JsonValue),
    /// The job panicked; the payload is the panic message.
    Failed(String),
}

/// One job's result, delivered to the coordinator's sink in completion
/// order (which is *not* table order under parallelism).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Index into the job table.
    pub index: usize,
    /// Which worker ran it (0-based).
    pub worker: usize,
    /// Wall-clock the job took on its worker.
    pub wall: Duration,
    /// Payload or failure.
    pub outcome: Outcome,
}

/// What a pool run did, for the run summary and utilization line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolReport {
    /// Jobs handed to the pool.
    pub scheduled: u64,
    /// Jobs that returned a payload.
    pub completed: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock from first schedule to last result.
    pub elapsed: Duration,
    /// Summed per-job wall-clock — the sequential-equivalent cost.
    pub busy: Duration,
}

impl PoolReport {
    /// Fraction of worker capacity spent running jobs.
    pub fn utilization(&self) -> f64 {
        let capacity = self.elapsed.as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            self.busy.as_secs_f64() / capacity
        } else {
            0.0
        }
    }

    /// Sequential-equivalent wall over actual wall: the observed speedup.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed > 0.0 {
            self.busy.as_secs_f64() / elapsed
        } else {
            0.0
        }
    }

    /// Jobs finished per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed > 0.0 {
            (self.completed + self.failed) as f64 / elapsed
        } else {
            0.0
        }
    }
}

/// Runs every index in `pending` through `run` on `workers` threads,
/// delivering each [`JobResult`] to `sink` on the calling thread.
///
/// `sink` returning [`ControlFlow::Break`] stops *scheduling* — workers
/// finish their in-flight jobs, and those results still reach the sink
/// (so a checkpoint journal never loses completed work). The worker count
/// is clamped to `1..=pending.len()`.
pub fn execute<R, S>(pending: &[usize], workers: usize, run: R, mut sink: S) -> PoolReport
where
    R: Fn(usize) -> JsonValue + Sync,
    S: FnMut(JobResult) -> ControlFlow<()>,
{
    let started = Instant::now();
    let workers = workers.clamp(1, pending.len().max(1));
    let queue: Mutex<VecDeque<usize>> = Mutex::new(pending.iter().copied().collect());
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<JobResult>();
    let mut report = PoolReport {
        scheduled: pending.len() as u64,
        workers,
        ..PoolReport::default()
    };
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let (queue, stop, run) = (&queue, &stop, &run);
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // The queue is only locked to pop; jobs run outside it, and
                // catch_unwind keeps a panicking job from poisoning it.
                let Some(index) = queue.lock().expect("injector queue poisoned").pop_front() else {
                    break;
                };
                let job_started = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| run(index))) {
                    Ok(payload) => Outcome::Done(payload),
                    Err(panic) => Outcome::Failed(panic_message(panic.as_ref())),
                };
                let result = JobResult {
                    index,
                    worker,
                    wall: job_started.elapsed(),
                    outcome,
                };
                if tx.send(result).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut stopping = false;
        for result in rx {
            report.busy += result.wall;
            match result.outcome {
                Outcome::Done(_) => report.completed += 1,
                Outcome::Failed(_) => report.failed += 1,
            }
            if sink(result).is_break() && !stopping {
                stopping = true;
                stop.store(true, Ordering::Relaxed);
            }
        }
    });
    report.elapsed = started.elapsed();
    report
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn payload(index: usize) -> JsonValue {
        JsonValue::Object(vec![(
            "index".to_string(),
            JsonValue::from_u64(index as u64),
        )])
    }

    #[test]
    fn every_job_completes_for_any_worker_count() {
        for workers in [1, 2, 7, 64] {
            let pending: Vec<usize> = (0..23).collect();
            let mut seen = BTreeSet::new();
            let report = execute(&pending, workers, payload, |result| {
                assert!(matches!(result.outcome, Outcome::Done(_)));
                assert!(seen.insert(result.index), "job delivered twice");
                ControlFlow::Continue(())
            });
            assert_eq!(seen.len(), 23);
            assert_eq!(report.completed, 23);
            assert_eq!(report.failed, 0);
            assert_eq!(report.workers, workers.min(23));
        }
    }

    #[test]
    fn payloads_are_deterministic_regardless_of_workers() {
        let pending: Vec<usize> = (0..16).collect();
        let collect = |workers| {
            let mut results: Vec<(usize, JsonValue)> = Vec::new();
            execute(&pending, workers, payload, |result| {
                if let Outcome::Done(v) = result.outcome {
                    results.push((result.index, v));
                }
                ControlFlow::Continue(())
            });
            results.sort_by_key(|(i, _)| *i);
            results
        };
        assert_eq!(collect(1), collect(8));
    }

    #[test]
    fn a_panicking_job_is_failed_not_fatal() {
        let pending: Vec<usize> = (0..8).collect();
        let mut failures = Vec::new();
        let report = execute(
            &pending,
            4,
            |index| {
                assert!(index != 3, "cell 3 is poisoned");
                payload(index)
            },
            |result| {
                if let Outcome::Failed(msg) = &result.outcome {
                    failures.push((result.index, msg.clone()));
                }
                ControlFlow::Continue(())
            },
        );
        assert_eq!(report.completed, 7);
        assert_eq!(report.failed, 1);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 3);
        assert!(failures[0].1.contains("poisoned"), "{}", failures[0].1);
    }

    #[test]
    fn break_stops_scheduling_but_loses_nothing_in_flight() {
        // The stop flag is advisory: workers notice it between jobs, not
        // mid-job, so each job yields the CPU long enough for the
        // coordinator to drain the channel and raise the flag. Instant
        // jobs could legitimately all finish before Break lands (the
        // deterministic-interruption path truncates the pending list
        // instead — see `SweepOptions::max_cells`).
        let pending: Vec<usize> = (0..100).collect();
        let mut delivered = 0u64;
        let slow = |index| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            payload(index)
        };
        let report = execute(&pending, 2, slow, |_| {
            delivered += 1;
            if delivered >= 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        // Everything the pool counted reached the sink, and the stop flag
        // kept it well short of the full table.
        assert_eq!(report.completed + report.failed, delivered);
        assert!(delivered >= 5);
        assert!(delivered < 100, "break must stop scheduling");
    }

    #[test]
    fn worker_resolution_priorities() {
        assert_eq!(resolve_workers_from(Some(8), Some("2")), 8);
        assert_eq!(resolve_workers_from(None, Some("2")), 2);
        assert_eq!(resolve_workers_from(None, Some(" 3 ")), 3);
        // Zero or garbage fall through to auto-detection (>= 1).
        assert!(resolve_workers_from(Some(0), None) >= 1);
        assert!(resolve_workers_from(None, Some("zero")) >= 1);
        assert!(resolve_workers_from(None, None) >= 1);
    }

    #[test]
    fn report_rates_are_consistent() {
        let report = PoolReport {
            scheduled: 10,
            completed: 10,
            failed: 0,
            workers: 2,
            elapsed: Duration::from_secs(5),
            busy: Duration::from_secs(8),
        };
        assert!((report.speedup() - 1.6).abs() < 1e-12);
        assert!((report.utilization() - 0.8).abs() < 1e-12);
        assert!((report.cells_per_sec() - 2.0).abs() < 1e-12);
    }
}
