//! Live progress reporting for a running sweep.
//!
//! The coordinator thread feeds every [`JobResult`](crate::pool::JobResult)
//! wall time in; the reporter prints a throttled status line to stderr —
//! completed/total, cells per second, ETA, and worker utilization — and a
//! final summary including the observed speedup (sequential-equivalent
//! wall over actual wall).

use std::time::{Duration, Instant};

/// Minimum interval between printed progress lines.
const PRINT_INTERVAL: Duration = Duration::from_millis(250);

/// Tracks and prints sweep progress.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    completed: usize,
    failed: usize,
    /// Cells completed before this run (a resume's head start).
    skipped: usize,
    workers: usize,
    busy: Duration,
    started: Instant,
    last_print: Option<Instant>,
    enabled: bool,
}

impl Progress {
    /// A reporter over `total` cells on `workers` workers; `skipped` cells
    /// are already journaled. `enabled = false` silences printing (tests,
    /// `--quiet`) while still tracking the numbers.
    pub fn new(total: usize, skipped: usize, workers: usize, enabled: bool) -> Progress {
        Progress {
            total,
            completed: 0,
            failed: 0,
            skipped,
            workers,
            busy: Duration::ZERO,
            started: Instant::now(),
            last_print: None,
            enabled,
        }
    }

    /// Records one finished cell and maybe prints a status line.
    pub fn on_result(&mut self, wall: Duration, failed: bool) {
        if failed {
            self.failed += 1;
        } else {
            self.completed += 1;
        }
        self.busy += wall;
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = self
            .last_print
            .is_none_or(|last| now.duration_since(last) >= PRINT_INTERVAL);
        if due || self.finished_cells() + self.skipped == self.total {
            self.last_print = Some(now);
            eprintln!("{}", self.line());
        }
    }

    fn finished_cells(&self) -> usize {
        self.completed + self.failed
    }

    /// Cells finished per wall-clock second in this run.
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.finished_cells() as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to finish the remaining cells at the current rate.
    pub fn eta_secs(&self) -> Option<f64> {
        let remaining = self
            .total
            .saturating_sub(self.skipped + self.finished_cells());
        let rate = self.cells_per_sec();
        (rate > 0.0).then(|| remaining as f64 / rate)
    }

    /// Fraction of worker capacity spent inside cells so far.
    pub fn utilization(&self) -> f64 {
        let capacity = self.started.elapsed().as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// The current status line.
    pub fn line(&self) -> String {
        let eta = match self.eta_secs() {
            Some(s) => format!("{s:.0} s"),
            None => "-".to_string(),
        };
        let failed = if self.failed > 0 {
            format!("  {} FAILED", self.failed)
        } else {
            String::new()
        };
        format!(
            "  [lab] {}/{} cells  {:.1} cells/s  eta {eta}  util {:.0}%{failed}",
            self.skipped + self.finished_cells(),
            self.total,
            self.cells_per_sec(),
            self.utilization() * 100.0,
        )
    }

    /// The end-of-run summary line (printed by the callers' run reports).
    pub fn summary(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let speedup = if elapsed > 0.0 {
            self.busy.as_secs_f64() / elapsed
        } else {
            0.0
        };
        format!(
            "[lab] {} cells ({} resumed, {} failed) in {elapsed:.1} s on {} workers: \
             {:.1} cells/s, utilization {:.0}%, speedup {speedup:.2}x \
             (sequential-equivalent {:.1} s)",
            self.skipped + self.finished_cells(),
            self.skipped,
            self.failed,
            self.workers,
            self.cells_per_sec(),
            self.utilization() * 100.0,
            self.busy.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates_accumulate() {
        let mut p = Progress::new(10, 2, 4, false);
        p.on_result(Duration::from_millis(100), false);
        p.on_result(Duration::from_millis(100), true);
        assert_eq!(p.finished_cells(), 2);
        assert!(p.cells_per_sec() > 0.0);
        assert!(p.utilization() <= 1.0);
        let line = p.line();
        assert!(line.contains("4/10 cells"), "{line}");
        assert!(line.contains("1 FAILED"), "{line}");
        let summary = p.summary();
        assert!(summary.contains("2 resumed"), "{summary}");
        assert!(summary.contains("speedup"), "{summary}");
    }

    #[test]
    fn eta_shrinks_toward_zero_as_cells_finish() {
        let mut p = Progress::new(4, 0, 1, false);
        for _ in 0..4 {
            p.on_result(Duration::from_millis(1), false);
        }
        assert_eq!(p.eta_secs().map(|s| s.round() as u64), Some(0));
    }
}
