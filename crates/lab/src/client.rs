//! A thin blocking client for the `uasn-labd` experiment service.
//!
//! Hand-rolled HTTP/1.1 over [`std::net::TcpStream`] — the same
//! no-new-dependencies spirit as the JSON module. One request per
//! connection (`Connection: close`), bodies are JSON, and the streaming
//! results endpoint is consumed incrementally: chunked transfer is decoded
//! on the fly and every complete JSONL line is handed to a callback, so a
//! watcher sees cell records the moment the server flushes them.
//!
//! The submission document ([`JobRequest`]) lives here rather than in the
//! server crate so both ends — and any test — share one serializer.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use uasn_sim::json::JsonValue;

/// A sweep submission: which figures, how many replications, and the
/// execution knobs the server honours per job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Figure/experiment IDs, as understood by the bench registry
    /// (`"fig6"`, `"F9a"`, `"SMOKE"`, …).
    pub figures: Vec<String>,
    /// Replications per cell.
    pub seeds: u64,
    /// Worker threads for this sweep; `None` defers to the server's
    /// default.
    pub workers: Option<usize>,
    /// Stop after this many fresh cells (deterministic-interruption
    /// testing hook, same semantics as `lab run --max-cells`). Applies to
    /// the first attempt only — a server restart resumes to completion.
    pub max_cells: Option<usize>,
    /// Run cells with performance profiling on.
    pub profile: bool,
    /// Run cells with the online invariant monitors on.
    pub monitor: bool,
}

impl JobRequest {
    /// A plain submission of `figures` at `seeds` replications.
    pub fn new(figures: Vec<String>, seeds: u64) -> JobRequest {
        JobRequest {
            figures,
            seeds,
            workers: None,
            max_cells: None,
            profile: false,
            monitor: false,
        }
    }

    /// Serialises into the `POST /v1/jobs` body.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            (
                "figures".to_string(),
                JsonValue::Array(self.figures.iter().map(JsonValue::from_string).collect()),
            ),
            ("seeds".to_string(), JsonValue::from_u64(self.seeds)),
        ];
        if let Some(workers) = self.workers {
            pairs.push(("workers".to_string(), JsonValue::from_u64(workers as u64)));
        }
        if let Some(max) = self.max_cells {
            pairs.push(("max_cells".to_string(), JsonValue::from_u64(max as u64)));
        }
        if self.profile {
            pairs.push(("profile".to_string(), JsonValue::Bool(true)));
        }
        if self.monitor {
            pairs.push(("monitor".to_string(), JsonValue::Bool(true)));
        }
        JsonValue::Object(pairs)
    }

    /// Parses a submission body. Figure-list emptiness and registry
    /// validity are the server's to check; this only fixes the shape.
    pub fn from_json(doc: &JsonValue) -> Option<JobRequest> {
        let figures = doc
            .get("figures")?
            .as_array()?
            .iter()
            .map(|f| f.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        Some(JobRequest {
            figures,
            seeds: doc.get("seeds")?.as_u64()?,
            workers: doc
                .get("workers")
                .and_then(JsonValue::as_u64)
                .map(|w| w as usize),
            max_cells: doc
                .get("max_cells")
                .and_then(JsonValue::as_u64)
                .map(|m| m as usize),
            profile: doc
                .get("profile")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            monitor: doc
                .get("monitor")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(io::Error),
    /// The server spoke, but not valid HTTP/JSON.
    Protocol(String),
    /// A structured error response (`{"error":{"code","message"}}`).
    Api {
        /// HTTP status code (429 = admission queue full, …).
        status: u16,
        /// Machine-readable error code (`"queue-full"`, `"draining"`, …).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "labd transport: {e}"),
            ClientError::Protocol(m) => write!(f, "labd protocol: {m}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "labd {status} {code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Blocking client for one `uasn-labd` server.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (`"127.0.0.1:4411"`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// `GET /healthz` — the server's liveness document.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or structured API failures.
    pub fn health(&self) -> Result<JsonValue, ClientError> {
        self.json_request("GET", "/healthz", None)
    }

    /// `POST /v1/jobs` — submits a sweep. Returns the assigned job ID.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with status 429 and code `queue-full` when the
    /// admission queue is at capacity, 503 `draining` during shutdown,
    /// 400 for malformed submissions; plus transport failures.
    pub fn submit(&self, request: &JobRequest) -> Result<String, ClientError> {
        let reply = self.json_request("POST", "/v1/jobs", Some(&request.to_json()))?;
        reply
            .get("id")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("submit reply missing job id".to_string()))
    }

    /// `GET`s an arbitrary server path returning JSON — the query-surface
    /// endpoints (`/v1/results`, `/v1/results/{job}`,
    /// `/v1/results/{job}/{figure}`).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or structured API failures.
    pub fn get(&self, path: &str) -> Result<JsonValue, ClientError> {
        self.json_request("GET", path, None)
    }

    /// `GET /v1/jobs` — every job the server knows, in submission order.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or structured API failures.
    pub fn jobs(&self) -> Result<JsonValue, ClientError> {
        self.json_request("GET", "/v1/jobs", None)
    }

    /// `GET /v1/jobs/{id}` — one job's status document.
    ///
    /// # Errors
    ///
    /// 404 `unknown-job` for unknown IDs; plus transport failures.
    pub fn job(&self, id: &str) -> Result<JsonValue, ClientError> {
        self.json_request("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// `POST /v1/jobs/{id}/cancel`.
    ///
    /// # Errors
    ///
    /// 404 for unknown jobs, 409 `already-finished` for terminal ones.
    pub fn cancel(&self, id: &str) -> Result<JsonValue, ClientError> {
        self.json_request("POST", &format!("/v1/jobs/{id}/cancel"), None)
    }

    /// `GET /v1/jobs/{id}/summary` — the sweep summary written when the
    /// job completed (aggregate trace health, profile, monitor totals).
    ///
    /// # Errors
    ///
    /// 404 until the job has completed; plus transport failures.
    pub fn summary(&self, id: &str) -> Result<JsonValue, ClientError> {
        self.json_request("GET", &format!("/v1/jobs/{id}/summary"), None)
    }

    /// `GET /v1/jobs/{id}/stream` — tails the job's journal live. Every
    /// complete JSONL line (journal v1, verbatim) is passed to `on_line`
    /// as it arrives; the call returns the line count once the job reaches
    /// a terminal state and the journal is drained.
    ///
    /// # Errors
    ///
    /// 404 for unknown jobs; plus transport failures mid-stream.
    pub fn stream(&self, id: &str, mut on_line: impl FnMut(&str)) -> Result<usize, ClientError> {
        let mut reader = self.open(&format!("/v1/jobs/{id}/stream"))?;
        let (status, headers) = read_head(&mut reader)?;
        if status != 200 {
            let body = read_plain_body(&mut reader, &headers)?;
            return Err(api_error(status, &body));
        }
        if !is_chunked(&headers) {
            return Err(ClientError::Protocol(
                "stream endpoint did not use chunked transfer".to_string(),
            ));
        }
        let mut lines = 0usize;
        let mut pending = Vec::new();
        loop {
            let chunk = read_chunk(&mut reader)?;
            let Some(chunk) = chunk else { break };
            pending.extend_from_slice(&chunk);
            while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                if !text.is_empty() {
                    on_line(&text);
                    lines += 1;
                }
            }
        }
        Ok(lines)
    }

    /// `POST /v1/shutdown` — asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or structured API failures.
    pub fn shutdown(&self) -> Result<JsonValue, ClientError> {
        self.json_request("POST", "/v1/shutdown", None)
    }

    /// Polls `GET /v1/jobs/{id}` until the job reaches a terminal state
    /// (done, failed, cancelled, interrupted) or `timeout` elapses,
    /// returning the final status document.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on timeout; plus per-poll failures.
    pub fn wait_terminal(&self, id: &str, timeout: Duration) -> Result<JsonValue, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let doc = self.job(id)?;
            let state = doc.get("state").and_then(JsonValue::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "cancelled" | "interrupted") {
                return Ok(doc);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Protocol(format!(
                    "job {id} still {state:?} after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn open(&self, path: &str) -> Result<BufReader<TcpStream>, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut writer = stream.try_clone()?;
        write!(
            writer,
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        )?;
        writer.flush()?;
        Ok(BufReader::new(stream))
    }

    fn json_request(
        &self,
        method: &str,
        path: &str,
        body: Option<&JsonValue>,
    ) -> Result<JsonValue, ClientError> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut writer = stream.try_clone()?;
        let body_text = body.map(JsonValue::to_json).unwrap_or_default();
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
            self.addr
        )?;
        if body.is_some() {
            write!(
                writer,
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body_text.len()
            )?;
        }
        write!(writer, "\r\n{body_text}")?;
        writer.flush()?;

        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        let body = read_plain_body(&mut reader, &headers)?;
        if status >= 400 {
            return Err(api_error(status, &body));
        }
        let text = String::from_utf8_lossy(&body);
        JsonValue::parse(&text)
            .map_err(|e| ClientError::Protocol(format!("unparseable response body: {e}")))
    }
}

/// Reads the status line and headers. Header names are lowercased.
fn read_head(
    reader: &mut BufReader<TcpStream>,
) -> Result<(u16, Vec<(String, String)>), ClientError> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn is_chunked(headers: &[(String, String)]) -> bool {
    header(headers, "transfer-encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false)
}

/// Reads a non-streaming body: chunked if declared, else Content-Length,
/// else read-to-EOF (legal under `Connection: close`).
fn read_plain_body(
    reader: &mut BufReader<TcpStream>,
    headers: &[(String, String)],
) -> Result<Vec<u8>, ClientError> {
    if is_chunked(headers) {
        let mut body = Vec::new();
        while let Some(chunk) = read_chunk(reader)? {
            body.extend_from_slice(&chunk);
        }
        return Ok(body);
    }
    if let Some(len) = header(headers, "content-length").and_then(|v| v.parse::<usize>().ok()) {
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        return Ok(body);
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(body)
}

/// Reads one chunk of a chunked body; `None` at the terminating 0-chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Result<Option<Vec<u8>>, ClientError> {
    let mut size_line = String::new();
    reader.read_line(&mut size_line)?;
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|_| ClientError::Protocol(format!("bad chunk size {size_line:?}")))?;
    if size == 0 {
        let mut trailer = String::new();
        let _ = reader.read_line(&mut trailer);
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    reader.read_exact(&mut chunk)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    Ok(Some(chunk))
}

/// Maps an error-status body to [`ClientError::Api`], tolerating bodies
/// that are not the structured shape.
fn api_error(status: u16, body: &[u8]) -> ClientError {
    let text = String::from_utf8_lossy(body);
    let doc = JsonValue::parse(&text).ok();
    let error = doc.as_ref().and_then(|d| d.get("error").cloned());
    let code = error
        .as_ref()
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("http-error")
        .to_string();
    let message = error
        .as_ref()
        .and_then(|e| e.get("message"))
        .and_then(JsonValue::as_str)
        .unwrap_or(text.trim())
        .to_string();
    ClientError::Api {
        status,
        code,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_round_trips_through_json() {
        let full = JobRequest {
            figures: vec!["fig6".to_string(), "SMOKE".to_string()],
            seeds: 4,
            workers: Some(2),
            max_cells: Some(10),
            profile: true,
            monitor: true,
        };
        assert_eq!(JobRequest::from_json(&full.to_json()), Some(full));
        let minimal = JobRequest::new(vec!["fig6".to_string()], 1);
        assert_eq!(JobRequest::from_json(&minimal.to_json()), Some(minimal));
    }

    #[test]
    fn malformed_submissions_are_rejected_by_shape() {
        assert!(JobRequest::from_json(&JsonValue::parse(r#"{"seeds":1}"#).unwrap()).is_none());
        assert!(
            JobRequest::from_json(&JsonValue::parse(r#"{"figures":["fig6"]}"#).unwrap()).is_none()
        );
        assert!(
            JobRequest::from_json(&JsonValue::parse(r#"{"figures":[6],"seeds":1}"#).unwrap())
                .is_none()
        );
    }

    #[test]
    fn api_errors_parse_the_structured_shape() {
        let body = br#"{"error":{"code":"queue-full","message":"8 jobs queued","capacity":8}}"#;
        match api_error(429, body) {
            ClientError::Api {
                status,
                code,
                message,
            } => {
                assert_eq!(status, 429);
                assert_eq!(code, "queue-full");
                assert_eq!(message, "8 jobs queued");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unstructured bodies degrade gracefully.
        match api_error(500, b"oops") {
            ClientError::Api { code, message, .. } => {
                assert_eq!(code, "http-error");
                assert_eq!(message, "oops");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
