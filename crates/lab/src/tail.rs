//! Live tailing of an append-only JSONL journal.
//!
//! [`JournalTailer`] is the reader half of the journal's tolerance
//! contract: the writer appends whole lines and flushes after each, so the
//! only unstable region of the file is the tail after the last newline. A
//! tailer therefore only ever yields *complete* lines — bytes after the
//! final `\n` are left in place and re-read on the next poll, exactly the
//! way [`crate::journal::LoadedJournal::load`] drops a truncated trailing
//! record instead of failing.
//!
//! This is what the `uasn-labd` streaming endpoint serves over chunked
//! transfer: journal v1 lines, verbatim, as they land on disk. A reader
//! that falls idle simply catches up on its next poll; a reader that
//! outlives the writer drains the remaining complete lines and sees
//! nothing after that.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Incremental reader over an append-only line-oriented file.
///
/// The tailer tracks a byte offset of consumed *complete* lines. Each
/// [`JournalTailer::poll`] re-opens the file (the writer may not have
/// created it yet, or may be a different process), seeks to the offset,
/// and returns every newline-terminated line that has appeared since.
#[derive(Debug)]
pub struct JournalTailer {
    path: PathBuf,
    offset: u64,
}

impl JournalTailer {
    /// Tails `path` from the beginning. The file does not need to exist
    /// yet — polls before creation yield no lines.
    pub fn new(path: impl Into<PathBuf>) -> JournalTailer {
        JournalTailer {
            path: path.into(),
            offset: 0,
        }
    }

    /// The tailed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of complete lines consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Returns every complete line appended since the last poll, without
    /// trailing newlines. A partially written trailing line (no `\n` yet)
    /// is *not* returned — it stays pending until its newline lands, so a
    /// kill mid-write is invisible to stream consumers just as it is to
    /// resume.
    ///
    /// If the file shrank below the consumed offset (a fresh sweep
    /// truncated and restarted the journal), the tailer resets to the
    /// start and re-emits the new file's lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing yet.
    pub fn poll(&mut self) -> io::Result<Vec<String>> {
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // The journal was truncated/recreated under us (a fresh sweep
            // at the same path): start over rather than reading garbage at
            // a stale offset.
            self.offset = 0;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let Some(last_newline) = buf.iter().rposition(|&b| b == b'\n') else {
            return Ok(Vec::new());
        };
        let complete = &buf[..=last_newline];
        self.offset += complete.len() as u64;
        Ok(complete
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| String::from_utf8_lossy(line).into_owned())
            .collect())
    }

    /// Polls until no new complete lines appear, returning everything
    /// collected — a catch-up read for a reader that has been idle.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalTailer::poll`] errors.
    pub fn drain(&mut self) -> io::Result<Vec<String>> {
        let mut all = Vec::new();
        loop {
            let batch = self.poll()?;
            if batch.is_empty() {
                return Ok(all);
            }
            all.extend(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("uasn-lab-tail-{name}-{}", std::process::id()))
    }

    #[test]
    fn missing_file_yields_nothing_until_created() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let mut tailer = JournalTailer::new(&path);
        assert!(tailer.poll().expect("missing file tolerated").is_empty());
        std::fs::write(&path, "a\nb\n").expect("create");
        assert_eq!(tailer.poll().expect("poll"), vec!["a", "b"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_trailing_line_is_held_back_until_complete() {
        let path = tmp("partial");
        let mut file = File::create(&path).expect("create");
        file.write_all(b"{\"job\":\"a\"}\n{\"job\":\"b\"")
            .expect("write");
        file.flush().expect("flush");

        let mut tailer = JournalTailer::new(&path);
        assert_eq!(tailer.poll().expect("poll"), vec!["{\"job\":\"a\"}"]);
        // The writer is mid-line: nothing new, nothing mangled.
        assert!(tailer.poll().expect("poll").is_empty());

        file.write_all(b"}\n").expect("complete the line");
        file.flush().expect("flush");
        assert_eq!(tailer.poll().expect("poll"), vec!["{\"job\":\"b\"}"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_resets_the_tailer() {
        let path = tmp("reset");
        std::fs::write(&path, "one\ntwo\nthree\n").expect("write");
        let mut tailer = JournalTailer::new(&path);
        assert_eq!(tailer.poll().expect("poll").len(), 3);
        // A fresh sweep truncates and rewrites the journal.
        std::fs::write(&path, "fresh\n").expect("rewrite");
        assert_eq!(tailer.poll().expect("poll"), vec!["fresh"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drain_catches_up_after_idle() {
        let path = tmp("drain");
        std::fs::write(&path, "1\n2\n").expect("write");
        let mut tailer = JournalTailer::new(&path);
        assert_eq!(tailer.poll().expect("poll").len(), 2);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append");
        for i in 3..50 {
            writeln!(file, "{i}").expect("append line");
        }
        file.flush().expect("flush");
        let lines = tailer.drain().expect("drain");
        assert_eq!(lines.len(), 47);
        assert_eq!(lines.first().map(String::as_str), Some("3"));
        assert_eq!(lines.last().map(String::as_str), Some("49"));
        let _ = std::fs::remove_file(&path);
    }
}
