//! The append-only JSONL checkpoint journal (format v1).
//!
//! Line 1 is a header: `{"schema":"uasn-lab-journal","version":1,
//! "spec":{...}}`. Every following line is one record:
//!
//! - `{"job":"F6/p00/ew-mac/s000","status":"done","worker":0,
//!   "wall_us":1234,"payload":{...}}`
//! - `{"job":"...","status":"failed","error":"..."}`
//!
//! Each record is written and flushed atomically-enough for the failure
//! model we care about (a killed process): the only possible damage is a
//! truncated *trailing* line, which the loader tolerates by dropping it —
//! that cell simply re-runs on resume. Corruption anywhere earlier is a
//! hard error, because silently skipping interior records would merge an
//! incomplete grid without saying so.
//!
//! Duplicate records for one job ID are legal (a failed cell re-run by a
//! resume appends a fresh record); the *last* record wins.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use uasn_sim::json::JsonValue;

/// Journal schema identifier (header `schema` field).
pub const JOURNAL_SCHEMA: &str = "uasn-lab-journal";
/// Bump when the journal layout changes incompatibly.
pub const JOURNAL_VERSION: u64 = 1;

/// Why a journal could not be created, opened, or loaded.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(PathBuf, io::Error),
    /// The header line is missing, malformed, or the wrong schema/version.
    BadHeader(String),
    /// A record before the final line failed to parse.
    CorruptRecord {
        /// 1-based line number of the unreadable record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(path, e) => write!(f, "journal {}: {e}", path.display()),
            JournalError::BadHeader(msg) => write!(f, "journal header: {msg}"),
            JournalError::CorruptRecord { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Appends records to a journal file, flushing after every line so a
/// killed sweep loses at most the record being written.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: File,
}

impl JournalWriter {
    /// Creates (truncates) a journal and writes the v1 header with the
    /// given sweep `spec` embedded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, spec: &JsonValue) -> Result<JournalWriter, JournalError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| JournalError::Io(path.into(), e))?;
            }
        }
        let file = File::create(path).map_err(|e| JournalError::Io(path.into(), e))?;
        let mut writer = JournalWriter {
            path: path.into(),
            file,
        };
        let header = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::from_string(JOURNAL_SCHEMA)),
            ("version".to_string(), JsonValue::from_u64(JOURNAL_VERSION)),
            ("spec".to_string(), spec.clone()),
        ]);
        writer.write_line(&header)?;
        Ok(writer)
    }

    /// Opens an existing journal for appending (resume path). The file's
    /// header is *not* revalidated here — load it first.
    ///
    /// A killed writer can leave a damaged trailing line (no newline, or
    /// complete but unparseable). [`LoadedJournal::load`] tolerates that
    /// damage by dropping the line — but *appending after it* would fuse
    /// the damaged tail and the next record onto one line, turning
    /// tolerable trailing damage into fatal interior corruption on the
    /// following load. So `append` first truncates any damaged tail; the
    /// cell it belonged to simply re-runs, exactly as resume promises.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(path: &Path) -> Result<JournalWriter, JournalError> {
        let bytes = std::fs::read(path).map_err(|e| JournalError::Io(path.into(), e))?;
        let keep = repaired_len(&bytes);
        if keep < bytes.len() {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| JournalError::Io(path.into(), e))?;
            file.set_len(keep as u64)
                .map_err(|e| JournalError::Io(path.into(), e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(path.into(), e))?;
        Ok(JournalWriter {
            path: path.into(),
            file,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a completed cell.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_done(
        &mut self,
        job: &str,
        worker: usize,
        wall_us: u64,
        payload: &JsonValue,
    ) -> Result<(), JournalError> {
        self.write_line(&JsonValue::Object(vec![
            ("job".to_string(), JsonValue::from_string(job)),
            ("status".to_string(), JsonValue::from_string("done")),
            ("worker".to_string(), JsonValue::from_u64(worker as u64)),
            ("wall_us".to_string(), JsonValue::from_u64(wall_us)),
            ("payload".to_string(), payload.clone()),
        ]))
    }

    /// Records a failed (panicked) cell.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_failed(&mut self, job: &str, error: &str) -> Result<(), JournalError> {
        self.write_line(&JsonValue::Object(vec![
            ("job".to_string(), JsonValue::from_string(job)),
            ("status".to_string(), JsonValue::from_string("failed")),
            ("error".to_string(), JsonValue::from_string(error)),
        ]))
    }

    fn write_line(&mut self, value: &JsonValue) -> Result<(), JournalError> {
        let mut line = value.to_json();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.flush())
            .map_err(|e| JournalError::Io(self.path.clone(), e))
    }
}

/// One journaled cell outcome (after last-wins deduplication).
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// The cell completed; the payload is its recorded result.
    Done {
        /// Recorded per-cell wall-clock, microseconds.
        wall_us: u64,
        /// The cell's result document.
        payload: JsonValue,
    },
    /// The cell panicked; resume re-runs it.
    Failed {
        /// The recorded panic message.
        error: String,
    },
}

/// A parsed journal: header spec plus the latest record per job ID.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// The sweep spec object embedded in the header.
    pub spec: JsonValue,
    /// Latest status per job ID, in first-seen order.
    pub cells: Vec<(String, CellStatus)>,
    /// Whether a truncated/corrupt trailing line was dropped (that cell
    /// re-runs on resume).
    pub dropped_partial: bool,
}

impl LoadedJournal {
    /// Parses a journal file.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad header, or a corrupt record anywhere
    /// except the final line (which is dropped and flagged instead).
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        let text = std::fs::read_to_string(path).map_err(|e| JournalError::Io(path.into(), e))?;
        let mut lines = text.lines().enumerate();
        let Some((_, header_line)) = lines.next() else {
            return Err(JournalError::BadHeader("empty journal".to_string()));
        };
        let header =
            JsonValue::parse(header_line).map_err(|e| JournalError::BadHeader(e.to_string()))?;
        if header.get("schema").and_then(JsonValue::as_str) != Some(JOURNAL_SCHEMA) {
            return Err(JournalError::BadHeader(format!(
                "expected schema {JOURNAL_SCHEMA:?}"
            )));
        }
        if header.get("version").and_then(JsonValue::as_u64) != Some(JOURNAL_VERSION) {
            return Err(JournalError::BadHeader(format!(
                "expected version {JOURNAL_VERSION}"
            )));
        }
        let spec = header
            .get("spec")
            .cloned()
            .ok_or_else(|| JournalError::BadHeader("missing spec".to_string()))?;

        let remaining: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
        let mut cells: Vec<(String, CellStatus)> = Vec::new();
        let mut dropped_partial = false;
        for (pos, (line_idx, line)) in remaining.iter().enumerate() {
            let last = pos + 1 == remaining.len();
            match parse_record(line) {
                Ok((job, status)) => match cells.iter_mut().find(|(j, _)| *j == job) {
                    Some((_, existing)) => *existing = status,
                    None => cells.push((job, status)),
                },
                Err(message) if last => {
                    // A killed writer can only damage the final line; drop
                    // it and let resume re-run that cell.
                    dropped_partial = true;
                    let _ = message;
                }
                Err(message) => {
                    return Err(JournalError::CorruptRecord {
                        line: line_idx + 1,
                        message,
                    });
                }
            }
        }
        Ok(LoadedJournal {
            spec,
            cells,
            dropped_partial,
        })
    }

    /// The journaled payload for `job`, if it completed.
    pub fn payload(&self, job: &str) -> Option<&JsonValue> {
        self.cells.iter().find_map(|(j, status)| match status {
            CellStatus::Done { payload, .. } if j == job => Some(payload),
            _ => None,
        })
    }

    /// Whether `job` has a completed record (failed cells do not count —
    /// resume re-runs them).
    pub fn is_done(&self, job: &str) -> bool {
        self.payload(job).is_some()
    }

    /// Job IDs whose latest record is a failure, in first-seen order.
    pub fn failed(&self) -> Vec<(&str, &str)> {
        self.cells
            .iter()
            .filter_map(|(job, status)| match status {
                CellStatus::Failed { error } => Some((job.as_str(), error.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Completed-cell count.
    pub fn done_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, s)| matches!(s, CellStatus::Done { .. }))
            .count()
    }

    /// Summed recorded wall-clock over completed cells, microseconds.
    pub fn done_wall_us(&self) -> u64 {
        self.cells
            .iter()
            .map(|(_, s)| match s {
                CellStatus::Done { wall_us, .. } => *wall_us,
                CellStatus::Failed { .. } => 0,
            })
            .sum()
    }

    /// The journal's scheduling-independent canonical rendering: the
    /// header (schema, version, spec) followed by each job's *final*
    /// record sorted by job ID, with the per-run scheduling metadata
    /// (worker index, recorded wall-clock) stripped.
    ///
    /// Two journals of the same sweep are byte-identical here regardless
    /// of worker count, submission client, completion order, or how many
    /// kill/resume splits produced them — which is exactly the identity
    /// contract the `uasn-labd` end-to-end gate compares. The raw files
    /// legitimately differ in record *order* and in the `worker`/`wall_us`
    /// fields; the payload's own wall-clock measurements (the engine's
    /// `wall_us`/`events_per_wall_sec`/`stats_wall_ns` and the `profile`
    /// timing block) are scrubbed the same way, since they too vary
    /// between any two executions of the same seed. Everything the
    /// results depend on is covered here.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        let header = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::from_string(JOURNAL_SCHEMA)),
            ("version".to_string(), JsonValue::from_u64(JOURNAL_VERSION)),
            ("spec".to_string(), self.spec.clone()),
        ]);
        out.push_str(&header.to_json());
        out.push('\n');
        let mut cells: Vec<&(String, CellStatus)> = self.cells.iter().collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        for (job, status) in cells {
            let record = match status {
                CellStatus::Done { payload, .. } => JsonValue::Object(vec![
                    ("job".to_string(), JsonValue::from_string(job)),
                    ("status".to_string(), JsonValue::from_string("done")),
                    ("payload".to_string(), canonical_payload(payload)),
                ]),
                CellStatus::Failed { error } => JsonValue::Object(vec![
                    ("job".to_string(), JsonValue::from_string(job)),
                    ("status".to_string(), JsonValue::from_string("failed")),
                    ("error".to_string(), JsonValue::from_string(error)),
                ]),
            };
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out.into_bytes()
    }
}

/// Keys inside a cell payload that hold wall-clock measurements rather
/// than simulation results: the engine stats' recorded wall time and
/// derived rate, the lossless-round-trip nanosecond copy, and the whole
/// per-kind `profile` timing block.
const WALL_CLOCK_KEYS: [&str; 4] = ["wall_us", "events_per_wall_sec", "stats_wall_ns", "profile"];

/// A payload with every wall-clock-derived field recursively removed —
/// the part of a record [`LoadedJournal::canonical_bytes`] keeps.
fn canonical_payload(value: &JsonValue) -> JsonValue {
    match value {
        JsonValue::Object(pairs) => JsonValue::Object(
            pairs
                .iter()
                .filter(|(key, _)| !WALL_CLOCK_KEYS.contains(&key.as_str()))
                .map(|(key, inner)| (key.clone(), canonical_payload(inner)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(canonical_payload).collect()),
        other => other.clone(),
    }
}

/// How many leading bytes of a journal survive tail repair: everything up
/// to and including the last newline whose final line parses as JSON. An
/// un-terminated tail is always dropped; a terminated final line is
/// dropped only when it is not valid JSON (the same two damage shapes
/// [`LoadedJournal::load`] ignores).
fn repaired_len(bytes: &[u8]) -> usize {
    let terminated = match bytes.last() {
        None => return 0,
        Some(b'\n') => bytes.len(),
        _ => match bytes.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => return 0,
        },
    };
    let body = &bytes[..terminated];
    let line_start = body[..terminated - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let last_line = String::from_utf8_lossy(&body[line_start..terminated - 1]);
    if last_line.trim().is_empty() || JsonValue::parse(&last_line).is_ok() {
        terminated
    } else {
        line_start
    }
}

fn parse_record(line: &str) -> Result<(String, CellStatus), String> {
    let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
    let job = value
        .get("job")
        .and_then(JsonValue::as_str)
        .ok_or("record missing job id")?
        .to_string();
    match value.get("status").and_then(JsonValue::as_str) {
        Some("done") => {
            let payload = value
                .get("payload")
                .cloned()
                .ok_or("done record missing payload")?;
            let wall_us = value
                .get("wall_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            Ok((job, CellStatus::Done { wall_us, payload }))
        }
        Some("failed") => {
            let error = value
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown failure")
                .to_string();
            Ok((job, CellStatus::Failed { error }))
        }
        _ => Err("record has no recognised status".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("uasn-lab-journal-{name}-{}", std::process::id()))
    }

    fn spec() -> JsonValue {
        JsonValue::Object(vec![(
            "figures".to_string(),
            JsonValue::Array(vec![JsonValue::from_string("F6")]),
        )])
    }

    #[test]
    fn round_trips_done_and_failed_records() {
        let path = tmp("round-trip");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        let payload = JsonValue::Object(vec![("v".to_string(), JsonValue::from_u64(7))]);
        w.record_done("F6/p00/ew-mac/s000", 2, 1234, &payload)
            .expect("done");
        w.record_failed("F6/p00/ew-mac/s001", "boom")
            .expect("failed");
        let j = LoadedJournal::load(&path).expect("load");
        assert_eq!(j.spec, spec());
        assert!(!j.dropped_partial);
        assert_eq!(j.done_count(), 1);
        assert_eq!(j.payload("F6/p00/ew-mac/s000"), Some(&payload));
        assert!(!j.is_done("F6/p00/ew-mac/s001"));
        assert_eq!(j.failed(), vec![("F6/p00/ew-mac/s001", "boom")]);
        assert_eq!(j.done_wall_us(), 1234);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_dropped_not_fatal() {
        let path = tmp("truncated");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        let payload = JsonValue::from_u64(1);
        w.record_done("a", 0, 1, &payload).expect("a");
        w.record_done("b", 0, 1, &payload).expect("b");
        drop(w);
        // Simulate a kill mid-write: chop bytes off the final record.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() - 9]).expect("truncate");
        let j = LoadedJournal::load(&path).expect("load tolerates trailing damage");
        assert!(j.dropped_partial);
        assert!(j.is_done("a"));
        assert!(!j.is_done("b"), "the damaged cell re-runs");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = tmp("interior");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        w.record_done("a", 0, 1, &JsonValue::from_u64(1))
            .expect("a");
        drop(w);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("NOT JSON\n");
        text.push_str(r#"{"job":"b","status":"done","payload":2}"#);
        text.push('\n');
        std::fs::write(&path, text).expect("write");
        let err = LoadedJournal::load(&path).expect_err("interior damage must not be skipped");
        assert!(
            matches!(err, JournalError::CorruptRecord { line: 3, .. }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_records_win_so_resume_can_retry_failures() {
        let path = tmp("last-wins");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        w.record_failed("a", "first attempt panicked")
            .expect("fail");
        drop(w);
        let mut w = JournalWriter::append(&path).expect("append");
        w.record_done("a", 1, 99, &JsonValue::from_u64(42))
            .expect("retry");
        let j = LoadedJournal::load(&path).expect("load");
        assert!(j.is_done("a"));
        assert!(j.failed().is_empty());
        assert_eq!(j.cells.len(), 1, "deduplicated");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_repairs_a_damaged_tail_instead_of_fusing_records() {
        let path = tmp("repair");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        w.record_done("a", 0, 1, &JsonValue::from_u64(1))
            .expect("a");
        w.record_done("b", 0, 1, &JsonValue::from_u64(2))
            .expect("b");
        drop(w);
        // Kill mid-write: the final record loses its tail (and newline).
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() - 9]).expect("truncate");

        // Appending after the damage must not fuse the partial line with
        // the fresh record — the repaired journal re-runs cell b cleanly.
        let mut w = JournalWriter::append(&path).expect("append repairs");
        w.record_done("b", 1, 7, &JsonValue::from_u64(3))
            .expect("b retry");
        drop(w);
        let j = LoadedJournal::load(&path).expect("fully valid after repair");
        assert!(!j.dropped_partial, "the damaged tail was truncated away");
        assert_eq!(j.done_count(), 2);
        assert_eq!(j.payload("b"), Some(&JsonValue::from_u64(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_keeps_an_undamaged_tail_intact() {
        let path = tmp("repair-intact");
        let mut w = JournalWriter::create(&path, &spec()).expect("create");
        w.record_done("a", 0, 1, &JsonValue::from_u64(1))
            .expect("a");
        drop(w);
        let before = std::fs::read(&path).expect("read");
        let w = JournalWriter::append(&path).expect("append");
        drop(w);
        assert_eq!(std::fs::read(&path).expect("read"), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn canonical_bytes_ignore_scheduling_metadata_and_order() {
        let path_a = tmp("canon-a");
        let path_b = tmp("canon-b");
        let payload1 = JsonValue::from_u64(10);
        let payload2 = JsonValue::from_u64(20);
        // Same cells, different completion order, workers, and wall times.
        let mut w = JournalWriter::create(&path_a, &spec()).expect("create");
        w.record_done("F6/p00/ew-mac/s000", 0, 111, &payload1)
            .expect("a1");
        w.record_done("F6/p00/ew-mac/s001", 1, 222, &payload2)
            .expect("a2");
        drop(w);
        let mut w = JournalWriter::create(&path_b, &spec()).expect("create");
        w.record_done("F6/p00/ew-mac/s001", 3, 999, &payload2)
            .expect("b2");
        w.record_done("F6/p00/ew-mac/s000", 2, 888, &payload1)
            .expect("b1");
        drop(w);
        let a = LoadedJournal::load(&path_a).expect("load a");
        let b = LoadedJournal::load(&path_b).expect("load b");
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        // A diverging payload is visible.
        let mut w = JournalWriter::append(&path_b).expect("append");
        w.record_done("F6/p00/ew-mac/s000", 0, 1, &JsonValue::from_u64(99))
            .expect("divergent");
        drop(w);
        let b = LoadedJournal::load(&path_b).expect("load b");
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn canonical_bytes_scrub_wall_clock_fields_inside_payloads() {
        let make = |wall_us: u64, wall_ns: u64, rate: f64| {
            JsonValue::parse(&format!(
                r#"{{"metrics":{{"throughput_kbps":0.4}},"stats":{{"events_processed":7,"wall_us":{wall_us},"events_per_wall_sec":{rate}}},"stats_wall_ns":{wall_ns},"profile":{{"tx":{wall_us}}}}}"#
            ))
            .expect("payload parses")
        };
        let path_a = tmp("canon-wall-a");
        let path_b = tmp("canon-wall-b");
        // Identical results, different wall-clock measurements: the two
        // executions must be canonically identical.
        let mut w = JournalWriter::create(&path_a, &spec()).expect("create");
        w.record_done("F6/p00/ew-mac/s000", 0, 111, &make(111, 111_222, 9.5))
            .expect("a");
        drop(w);
        let mut w = JournalWriter::create(&path_b, &spec()).expect("create");
        w.record_done("F6/p00/ew-mac/s000", 1, 999, &make(999, 999_888, 2.5))
            .expect("b");
        drop(w);
        let a = LoadedJournal::load(&path_a).expect("load a");
        let b = LoadedJournal::load(&path_b).expect("load b");
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        // The deterministic results are still compared.
        let canon = String::from_utf8(a.canonical_bytes()).expect("utf8");
        assert!(canon.contains("throughput_kbps"));
        assert!(canon.contains("events_processed"));
        assert!(!canon.contains("wall"), "no wall-clock residue: {canon}");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn wrong_schema_or_version_is_rejected() {
        let path = tmp("schema");
        std::fs::write(&path, "{\"schema\":\"other\",\"version\":1,\"spec\":{}}\n").expect("write");
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
        std::fs::write(
            &path,
            format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"version\":99,\"spec\":{{}}}}\n"),
        )
        .expect("write");
        assert!(matches!(
            LoadedJournal::load(&path),
            Err(JournalError::BadHeader(_))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
