//! Re-export of the shared quiet schedule.
//!
//! The quiet schedule started life here (it realises Figure 3's "Quiet"
//! state) but is shared by every slotted protocol in the workspace, so the
//! implementation lives in [`uasn_net::quiet`].

pub use uasn_net::quiet::QuietSchedule;
