//! # uasn-ewmac — the paper's primary contribution
//!
//! EW-MAC ("Exploit Waiting resources MAC") from Hung & Luo, *A Protocol
//! for Efficient Transmissions in UASNs* (ICDCSW 2013) / *Protocol to
//! Exploit Waiting Resources for UASNs* (Sensors 2016): a slotted,
//! synchronized four-way-handshake MAC for underwater acoustic sensor
//! networks that lets contention losers reuse the precisely-predictable
//! idle windows of already-negotiated neighbours for interference-free
//! **extra communications**.
//!
//! * [`config`] — protocol parameters, including the `enable_extra`
//!   ablation switch.
//! * [`priority`] — RTS priority values (`rp`, §3.1) and winner selection.
//! * [`schedule`] — the quiet schedule (Fig 3's Quiet state).
//! * [`extra`] — the §4.2 timing algebra: EXR windows, Eq 6 EXData timing,
//!   grant timeouts.
//! * [`protocol`] — the [`EwMac`] state machine implementing
//!   [`MacProtocol`](uasn_net::mac::MacProtocol).
//!
//! # Examples
//!
//! ```
//! use uasn_ewmac::{EwMac, EwMacConfig};
//! use uasn_net::config::SimConfig;
//! use uasn_net::node::NodeId;
//! use uasn_net::world::Simulation;
//!
//! let cfg = SimConfig::paper_default()
//!     .with_sensors(10)
//!     .with_sim_time(uasn_sim::time::SimDuration::from_secs(30));
//! let factory = |id: NodeId| -> Box<dyn uasn_net::mac::MacProtocol> {
//!     Box::new(EwMac::new(id, EwMacConfig::default()))
//! };
//! let report = Simulation::new(cfg, &factory).expect("valid").run();
//! assert_eq!(report.protocol, "EW-MAC");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod extra;
pub mod priority;
pub mod protocol;
pub mod schedule;

pub use config::EwMacConfig;
pub use extra::ObservedNegotiation;
pub use protocol::EwMac;
