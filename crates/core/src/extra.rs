//! Timing of extra communications (§4.2, Figures 2/4/5, Eq 6).
//!
//! Everything here is pure arithmetic over the slot clock and the
//! propagation delays a contention-losing sensor has learned, so the
//! correctness conditions — *extra packets never touch the negotiated
//! exchange* — are unit- and property-testable in isolation.
//!
//! Two cases, per the paper:
//!
//! * **Peer is a receiver** (we overheard `CTS(j,k)`): the EXR must be fully
//!   received at *j* before `Data(k,j)` starts arriving (period V); the
//!   EXData is timed by Eq 6 to arrive just after *j* finishes sending
//!   `Ack(j,k)` (periods VI/VII).
//! * **Peer is a sender** (we overheard `RTS(j,k)`): the EXR must be fully
//!   received at *j* before `CTS(k,j)` starts arriving (periods III/I); the
//!   EXData is timed to arrive after *j* finishes receiving `Ack(k,j)`
//!   (period IV).
//!
//! A configurable guard is added to every arrival target: Eq 6 as printed
//! makes the EXData arrive at the exact instant the Ack transmission ends,
//! which in a discrete-event model is a measure-zero tie; the guard makes
//! "strictly after" robust (documented in DESIGN.md).

use uasn_net::node::NodeId;
use uasn_net::slots::{SlotClock, SlotIndex};
use uasn_sim::time::{SimDuration, SimTime};

/// A neighbour negotiation this sensor overheard and can try to exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedNegotiation {
    /// The neighbour we want to talk to (sensor *j* in the paper).
    pub peer: NodeId,
    /// The sensor *j* negotiated with (*k*).
    pub other: NodeId,
    /// `true` if we overheard `CTS(j,k)` — *j* will receive data;
    /// `false` if we overheard `RTS(j,k)` — *j* is the data sender.
    pub peer_is_receiver: bool,
    /// The slot in which the overheard control packet was sent.
    pub control_slot: SlotIndex,
    /// The announced propagation delay between *j* and *k*.
    pub pair_delay: SimDuration,
    /// The announced duration of the negotiated data transmission.
    pub data_duration: SimDuration,
}

impl ObservedNegotiation {
    /// The slot in which the negotiated `Data` is transmitted: one after a
    /// CTS, two after an RTS (§4.1).
    pub fn data_slot(&self) -> SlotIndex {
        if self.peer_is_receiver {
            self.control_slot + 1
        } else {
            self.control_slot + 2
        }
    }

    /// The slot of the negotiated `Ack` per Eq 5.
    pub fn ack_slot(&self, clock: &SlotClock) -> SlotIndex {
        clock.ack_slot(self.data_slot(), self.data_duration, self.pair_delay)
    }

    /// When the negotiated data transmission starts arriving at the
    /// data-receiving end of the pair.
    pub fn data_arrival_at_receiver(&self, clock: &SlotClock) -> SimTime {
        clock.start_of(self.data_slot()) + self.pair_delay
    }

    /// The instant the whole negotiated exchange (including the Ack's
    /// arrival back at the data sender) is over — the end of the quiet
    /// window an overhearer should respect.
    pub fn exchange_end(&self, clock: &SlotClock) -> SimTime {
        clock.start_of(self.ack_slot(clock)) + clock.omega() + self.pair_delay
    }
}

/// When can the contention loser *i* transmit its EXR, if at all?
///
/// Returns the send instant (= `now`; extra requests go out as soon as the
/// overheard packet is decoded, mid-slot) when the request provably fits the
/// peer's idle window, `None` otherwise.
pub fn exr_send_time(
    clock: &SlotClock,
    obs: &ObservedNegotiation,
    now: SimTime,
    tau_ij: SimDuration,
    guard: SimDuration,
) -> Option<SimTime> {
    let omega = clock.omega();
    let arrival_end = now + tau_ij + omega + guard;
    let window_close = if obs.peer_is_receiver {
        // Before Data(k,j) starts arriving at j.
        obs.data_arrival_at_receiver(clock)
    } else {
        // Before CTS(k,j) starts arriving at j.
        clock.start_of(obs.control_slot + 1) + obs.pair_delay
    };
    (arrival_end <= window_close).then_some(now)
}

/// Can the granting peer *j* answer an EXR with an EXC right now without
/// touching its own negotiated exchange?
///
/// `now` is when *j* finished decoding the EXR.
pub fn exc_reply_ok(
    clock: &SlotClock,
    obs: &ObservedNegotiation,
    now: SimTime,
    guard: SimDuration,
) -> bool {
    let omega = clock.omega();
    let busy_at = if obs.peer_is_receiver {
        obs.data_arrival_at_receiver(clock)
    } else {
        clock.start_of(obs.control_slot + 1) + obs.pair_delay
    };
    now + omega + guard <= busy_at
}

/// Eq 6 (+ guard): the send instant for `EXData(i→j)`.
///
/// * Peer-is-receiver: the paper's formula — the packet arrives just after
///   *j* finishes **transmitting** `Ack(j,k)`:
///   `t(EXData) = ts(Ack)·|ts| + ω − τij` (we add the guard).
/// * Peer-is-sender: the packet arrives just after *j* finishes
///   **receiving** `Ack(k,j)`: one pair delay later.
pub fn exdata_send_time(
    clock: &SlotClock,
    obs: &ObservedNegotiation,
    tau_ij: SimDuration,
    guard: SimDuration,
) -> SimTime {
    let ack_start = clock.start_of(obs.ack_slot(clock));
    let arrival_target = if obs.peer_is_receiver {
        ack_start + clock.omega() + guard
    } else {
        ack_start + obs.pair_delay + clock.omega() + guard
    };
    arrival_target - tau_ij
}

/// When the granting peer should give up waiting for the promised EXData:
/// its scheduled arrival end plus one maximum propagation delay of slack.
pub fn exdata_grant_timeout(
    clock: &SlotClock,
    obs: &ObservedNegotiation,
    exdata_duration: SimDuration,
    guard: SimDuration,
) -> SimTime {
    let ack_start = clock.start_of(obs.ack_slot(clock));
    let arrival_target = if obs.peer_is_receiver {
        ack_start + clock.omega() + guard
    } else {
        ack_start + obs.pair_delay + clock.omega() + guard
    };
    arrival_target + exdata_duration + clock.tau_max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SlotClock {
        SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1))
    }

    fn obs_receiver() -> ObservedNegotiation {
        ObservedNegotiation {
            peer: NodeId::new(1),
            other: NodeId::new(2),
            peer_is_receiver: true,
            control_slot: 10, // CTS sent at slot 10
            pair_delay: SimDuration::from_millis(600),
            data_duration: SimDuration::from_micros(170_667),
        }
    }

    fn obs_sender() -> ObservedNegotiation {
        ObservedNegotiation {
            peer_is_receiver: false,
            ..obs_receiver()
        }
    }

    #[test]
    fn data_and_ack_slots() {
        let c = clock();
        let r = obs_receiver();
        assert_eq!(r.data_slot(), 11);
        // TD + τ = 170.667 + 600 ms < one slot -> ack at 12.
        assert_eq!(r.ack_slot(&c), 12);

        let s = obs_sender();
        assert_eq!(s.data_slot(), 12);
        assert_eq!(s.ack_slot(&c), 13);
    }

    #[test]
    fn exr_allowed_when_it_beats_the_data() {
        let c = clock();
        let r = obs_receiver();
        // We decode the CTS shortly after slot 10 starts; τij = 300 ms.
        let now = c.start_of(10) + SimDuration::from_millis(320);
        let send = exr_send_time(
            &c,
            &r,
            now,
            SimDuration::from_millis(300),
            SimDuration::from_millis(2),
        );
        assert_eq!(send, Some(now));
        // Arrival end = now + 300ms + ω + 2ms ≈ slot10+627ms,
        // window closes at slot11 start + 600 ms ≈ slot10+1605ms. OK.
    }

    #[test]
    fn exr_denied_when_too_close_to_data_arrival() {
        let c = clock();
        let r = obs_receiver();
        // Ask absurdly late: just before the data lands at j.
        let now = r.data_arrival_at_receiver(&c) - SimDuration::from_millis(1);
        let send = exr_send_time(
            &c,
            &r,
            now,
            SimDuration::from_millis(300),
            SimDuration::from_millis(2),
        );
        assert_eq!(send, None);
    }

    #[test]
    fn exr_window_for_sender_peer_closes_at_cts_arrival() {
        let c = clock();
        let s = obs_sender();
        // j sent RTS at slot 10; CTS(k,j) arrives at slot 11 start + 600 ms.
        let cts_arrival = c.start_of(11) + SimDuration::from_millis(600);
        let tau = SimDuration::from_millis(200);
        let fits = cts_arrival - tau - c.omega() - SimDuration::from_millis(10);
        assert!(exr_send_time(&c, &s, fits, tau, SimDuration::from_millis(2)).is_some());
        let too_late = cts_arrival - tau - SimDuration::from_millis(1);
        assert!(exr_send_time(&c, &s, too_late, tau, SimDuration::from_millis(2)).is_none());
    }

    #[test]
    fn widening_the_guard_monotonically_shrinks_the_exr_window() {
        // The sync-margin mechanism: as the guard absorbs more clock error,
        // the set of decode instants from which an EXR still fits can only
        // shrink — this is what makes extra-success degrade monotonically
        // with drift rather than corrupting reserved windows.
        let c = clock();
        let r = obs_receiver();
        let tau = SimDuration::from_millis(300);
        let opportunities = |guard_ms: u64| -> usize {
            (0..200)
                .filter(|k| {
                    let now = c.start_of(10) + SimDuration::from_millis(5 * k);
                    exr_send_time(&c, &r, now, tau, SimDuration::from_millis(guard_ms)).is_some()
                })
                .count()
        };
        let counts: Vec<usize> = [0u64, 2, 20, 100, 400, 1_000]
            .iter()
            .map(|&g| opportunities(g))
            .collect();
        assert!(counts[0] > 0, "ideal-sync guard leaves room for requests");
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "opportunities must be non-increasing in the guard: {counts:?}"
        );
        assert!(
            counts[0] > *counts.last().unwrap(),
            "a huge margin must actually cost opportunities"
        );
    }

    #[test]
    fn exc_reply_window() {
        let c = clock();
        let r = obs_receiver();
        let data_arrival = r.data_arrival_at_receiver(&c);
        let early = c.start_of(10) + SimDuration::from_millis(700);
        assert!(exc_reply_ok(&c, &r, early, SimDuration::from_millis(2)));
        let late = data_arrival - SimDuration::from_millis(1);
        assert!(!exc_reply_ok(&c, &r, late, SimDuration::from_millis(2)));
    }

    #[test]
    fn eq6_exdata_arrives_right_after_ack_transmission() {
        let c = clock();
        let r = obs_receiver();
        let tau = SimDuration::from_millis(300);
        let guard = SimDuration::from_millis(2);
        let send = exdata_send_time(&c, &r, tau, guard);
        let arrival = send + tau;
        let ack_tx_end = c.start_of(r.ack_slot(&c)) + c.omega();
        assert_eq!(arrival, ack_tx_end + guard);
        assert!(arrival > ack_tx_end, "strictly after the Ack ends");
    }

    #[test]
    fn sender_case_exdata_waits_for_ack_to_arrive_back() {
        let c = clock();
        let s = obs_sender();
        let tau = SimDuration::from_millis(300);
        let guard = SimDuration::from_millis(2);
        let arrival = exdata_send_time(&c, &s, tau, guard) + tau;
        let ack_rx_end = c.start_of(s.ack_slot(&c)) + s.pair_delay + c.omega();
        assert_eq!(arrival, ack_rx_end + guard);
    }

    #[test]
    fn grant_timeout_is_after_expected_arrival() {
        let c = clock();
        let r = obs_receiver();
        let dur = SimDuration::from_micros(170_667);
        let guard = SimDuration::from_millis(2);
        let timeout = exdata_grant_timeout(&c, &r, dur, guard);
        let tau = SimDuration::from_millis(300);
        let arrival_end = exdata_send_time(&c, &r, tau, guard) + tau + dur;
        assert!(timeout > arrival_end);
    }

    #[test]
    fn exchange_end_covers_everything() {
        let c = clock();
        for obs in [obs_receiver(), obs_sender()] {
            let end = obs.exchange_end(&c);
            assert!(end > c.start_of(obs.ack_slot(&c)));
            // the EXData (receiver case) also lands before/at the wider
            // quiet horizon plus its own duration
            let exdata_arrival = exdata_send_time(
                &c,
                &obs,
                SimDuration::from_millis(300),
                SimDuration::from_millis(2),
            ) + SimDuration::from_millis(300);
            assert!(exdata_arrival <= end + SimDuration::from_secs(1));
        }
    }
}
