//! EW-MAC tuning parameters.

use uasn_sim::time::SimDuration;

/// EW-MAC configuration.
///
/// Defaults reproduce the paper's protocol; `enable_extra = false` is the
/// ablation switch that turns off the waiting-resource exploitation
/// machinery (§4.2), leaving the slotted handshake skeleton — the
/// `bench_ablation` experiment quantifies exactly what the extra
/// communications buy.
///
/// # Examples
///
/// ```
/// use uasn_ewmac::config::EwMacConfig;
///
/// let cfg = EwMacConfig::default();
/// assert!(cfg.enable_extra);
/// let ablated = EwMacConfig::default().without_extra();
/// assert!(!ablated.enable_extra);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwMacConfig {
    /// Whether the extra-communication machinery (EXR/EXC/EXData/EXAck) is
    /// active.
    pub enable_extra: bool,
    /// Initial contention window, slots. After a failed contention the next
    /// attempt is delayed by `1 + uniform(0..cw)` slots.
    pub base_cw: u32,
    /// Contention window cap for the binary exponential backoff.
    pub max_cw: u32,
    /// Random component range of the RTS priority value `rp`.
    pub rp_random_range: u32,
    /// Priority added per slot an SDU has waited (§3.1: rp is "related to
    /// the contention and wait times").
    pub rp_wait_weight: u32,
    /// Guard time added to extra-packet arrival targets so an EXData lands
    /// strictly after the Ack transmission ends (numerical safety on top of
    /// Eq 6; see DESIGN.md).
    pub extra_guard: SimDuration,
    /// Extra margin for clock-synchronization error: added to `extra_guard`
    /// everywhere the extra-window arithmetic is evaluated, shrinking the
    /// usable windows I–VII by the worst-case timing error of the run. Zero
    /// (the default) models the paper's perfectly synchronized nodes; the
    /// world announces a bound via `install_clock_error` when the clock
    /// model drifts.
    pub sync_margin: SimDuration,
    /// Maximum retransmission attempts per SDU before it is dropped.
    pub max_retries: u32,
    /// When set, a negotiated data frame aggregates consecutive queued SDUs
    /// for the same next hop up to this many payload bits (§2: "data should
    /// be collected and then transmitted when the amount of data is
    /// sufficient"). `None` sends one SDU per exchange (the evaluation
    /// default, matching the fixed-size baselines).
    pub aggregate_max_bits: Option<u32>,
}

impl Default for EwMacConfig {
    fn default() -> Self {
        EwMacConfig {
            enable_extra: true,
            base_cw: 2,
            max_cw: 16,
            rp_random_range: 256,
            rp_wait_weight: 8,
            extra_guard: SimDuration::from_millis(2),
            sync_margin: SimDuration::ZERO,
            max_retries: 20,
            aggregate_max_bits: None,
        }
    }
}

impl EwMacConfig {
    /// The ablated variant with extra communications disabled.
    pub fn without_extra(mut self) -> Self {
        self.enable_extra = false;
        self
    }

    /// Enables SDU aggregation up to `max_bits` per negotiated data frame.
    pub fn with_aggregation(mut self, max_bits: u32) -> Self {
        self.aggregate_max_bits = Some(max_bits);
        self
    }

    /// Sets the clock-error margin added to every extra-window guard.
    pub fn with_sync_margin(mut self, margin: SimDuration) -> Self {
        self.sync_margin = margin;
        self
    }

    /// The effective guard on extra-window arithmetic: numerical safety
    /// plus whatever timing-error margin the run demands.
    pub fn effective_guard(&self) -> SimDuration {
        self.extra_guard + self.sync_margin
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; configurations are programmer input,
    /// not runtime data.
    pub fn validated(self) -> Self {
        assert!(self.base_cw >= 1, "base contention window must be >= 1");
        assert!(
            self.max_cw >= self.base_cw,
            "max contention window must be >= base"
        );
        assert!(self.rp_random_range >= 1, "rp range must be >= 1");
        assert!(self.max_retries >= 1, "at least one retry is required");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = EwMacConfig::default().validated();
        assert!(c.enable_extra);
        assert!(c.max_cw >= c.base_cw);
    }

    #[test]
    fn without_extra_only_touches_extra() {
        let c = EwMacConfig::default().without_extra();
        assert!(!c.enable_extra);
        assert_eq!(c.base_cw, EwMacConfig::default().base_cw);
    }

    #[test]
    fn sync_margin_widens_the_effective_guard() {
        let c = EwMacConfig::default();
        assert!(c.sync_margin.is_zero());
        assert_eq!(c.effective_guard(), c.extra_guard);
        let margined = c.with_sync_margin(SimDuration::from_millis(10));
        assert_eq!(
            margined.effective_guard(),
            c.extra_guard + SimDuration::from_millis(10)
        );
    }

    #[test]
    #[should_panic(expected = "must be >= base")]
    fn bad_cw_panics() {
        let _ = EwMacConfig {
            base_cw: 8,
            max_cw: 4,
            ..EwMacConfig::default()
        }
        .validated();
    }
}
