//! RTS priority values.
//!
//! §3.1: *"each RTS packet includes a random priority value rp related to
//! the contention and wait times of the sending sensor. When a receiver
//! receives multiple RTS packets, it selects the sender with the highest
//! rp."* The wait-time term is what makes contention long-run fair: a
//! sensor that keeps losing accumulates priority.

use rand::Rng;

use crate::config::EwMacConfig;

/// Computes the rp value for an RTS: a uniform random draw plus a
/// wait-proportional boost.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use uasn_ewmac::config::EwMacConfig;
/// use uasn_ewmac::priority::priority_value;
///
/// let cfg = EwMacConfig::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let fresh = priority_value(&mut rng, &cfg, 0);
/// let waited = priority_value(&mut rng, &cfg, 100);
/// assert!(waited > fresh + cfg.rp_random_range); // the boost dominates
/// ```
pub fn priority_value<R: Rng>(rng: &mut R, cfg: &EwMacConfig, waited_slots: u64) -> u32 {
    let random = rng.gen_range(0..cfg.rp_random_range);
    let boost = (waited_slots.min(u32::MAX as u64) as u32).saturating_mul(cfg.rp_wait_weight);
    random.saturating_add(boost)
}

/// Picks the winning RTS among candidates `(sender_index, rp)`: highest rp,
/// ties broken by lowest sender index for determinism. Returns the winner's
/// position in the slice.
pub fn pick_winner(candidates: &[(u32, u32)]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn rp_is_in_range_without_wait() {
        let cfg = EwMacConfig::default();
        let mut r = rng();
        for _ in 0..100 {
            let rp = priority_value(&mut r, &cfg, 0);
            assert!(rp < cfg.rp_random_range);
        }
    }

    #[test]
    fn waiting_raises_priority_monotonically_in_expectation() {
        let cfg = EwMacConfig::default();
        let mut r = rng();
        let avg = |waited: u64, r: &mut rand::rngs::StdRng| -> f64 {
            (0..200)
                .map(|_| priority_value(r, &cfg, waited) as f64)
                .sum::<f64>()
                / 200.0
        };
        let short = avg(0, &mut r);
        let long = avg(50, &mut r);
        assert!(long > short + 300.0, "short {short}, long {long}");
    }

    #[test]
    fn rp_saturates_instead_of_overflowing() {
        let cfg = EwMacConfig {
            rp_wait_weight: u32::MAX,
            ..EwMacConfig::default()
        };
        let mut r = rng();
        let rp = priority_value(&mut r, &cfg, u64::MAX);
        assert_eq!(rp, u32::MAX);
    }

    #[test]
    fn winner_is_max_rp() {
        let c = [(5, 10), (2, 30), (9, 20)];
        assert_eq!(pick_winner(&c), Some(1));
    }

    #[test]
    fn winner_tie_breaks_by_lowest_sender() {
        let c = [(5, 30), (2, 30), (9, 30)];
        assert_eq!(pick_winner(&c), Some(1));
    }

    #[test]
    fn empty_candidates_have_no_winner() {
        assert_eq!(pick_winner(&[]), None);
    }

    #[test]
    fn single_candidate_wins() {
        assert_eq!(pick_winner(&[(7, 0)]), Some(0));
    }
}
