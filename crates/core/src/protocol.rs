//! The EW-MAC protocol state machine (paper §4, Figure 3).
//!
//! Roles mirror the paper's state-transfer diagram: an idle sensor with
//! traffic contends with an RTS at a slot boundary; a receiver picks the
//! highest-priority RTS and answers CTS; Data goes out two slots after the
//! RTS and the Ack slot follows Eq 5. A sensor that *loses* contention —
//! it sent `RTS(i,j)` but overhears `RTS(j,k)` or `CTS(j,k)` — enters the
//! "Asking Extra Commu" path (§4.2): EXR into the peer's provably idle
//! window, EXC back, EXData timed by Eq 6 to land right after the
//! negotiated Ack, EXAck to finish. Overhearing any negotiation or extra
//! packet imposes quiet windows; all quiet-window arithmetic lives in
//! [`crate::schedule`] and all extra-timing arithmetic in [`crate::extra`].

use std::collections::VecDeque;

use uasn_net::mac::{
    DropReason, MacContext, MacProtocol, MaintenanceProfile, NeighborInfoScope, Reception,
    TimerToken,
};
use uasn_net::neighbor::OneHopTable;
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::slots::SlotIndex;
use uasn_sim::time::{SimDuration, SimTime};

use crate::config::EwMacConfig;
use crate::extra::{
    exc_reply_ok, exdata_grant_timeout, exdata_send_time, exr_send_time, ObservedNegotiation,
};
use crate::priority::{pick_winner, priority_value};
use crate::schedule::QuietSchedule;

/// Timer: no EXC arrived for our EXR.
const TIMER_EXC: TimerToken = TimerToken(1);
/// Timer: no EXAck arrived for our EXData.
const TIMER_EXACK: TimerToken = TimerToken(2);
/// Timer: a granted EXData never arrived.
const TIMER_GRANT: TimerToken = TimerToken(3);

/// An SDU waiting in the MAC queue.
#[derive(Debug, Clone, Copy)]
struct PendingSdu {
    sdu: Sdu,
    retries: u32,
    first_attempt_slot: Option<SlotIndex>,
}

/// What this node is currently doing (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    /// Idle / quiet (quiet is a schedule, not a role).
    Idle,
    /// Sent `RTS(me, peer)` at `rts_slot`; waiting for the CTS.
    Contending {
        peer: NodeId,
        rts_slot: SlotIndex,
        td: SimDuration,
        /// How many queued SDUs the announced TD covers (aggregation).
        bundle: usize,
    },
    /// Won contention; Data goes out at `data_slot`, Ack expected by
    /// `ack_slot` (checked one slot later).
    SendingData {
        peer: NodeId,
        data_slot: SlotIndex,
        ack_slot: SlotIndex,
        /// How many queued SDUs ride the data frame.
        bundle: usize,
    },
    /// Sent a CTS; waiting for Data (transmitted at `data_slot`), will Ack
    /// at `ack_slot`.
    Receiving {
        peer: NodeId,
        data_slot: SlotIndex,
        ack_slot: SlotIndex,
        data_received: bool,
    },
    /// Sent an EXR; waiting for the EXC.
    ExtraRequesting { obs: ObservedNegotiation },
    /// EXC granted; EXData scheduled; waiting for the EXAck.
    ExtraSending { obs: ObservedNegotiation },
}

/// Granting-side bookkeeping: we promised `from` an extra window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ExtraGrant {
    from: NodeId,
}

/// One decoded RTS waiting for the next slot boundary's winner pick.
#[derive(Debug, Clone, Copy)]
struct RtsCandidate {
    src: NodeId,
    rp: u32,
    td: SimDuration,
    sent_slot: SlotIndex,
    measured_delay: SimDuration,
}

/// The EW-MAC instance bound to one node.
///
/// # Examples
///
/// ```
/// use uasn_ewmac::{EwMac, EwMacConfig};
/// use uasn_net::mac::MacProtocol;
/// use uasn_net::node::NodeId;
///
/// let mac = EwMac::new(NodeId::new(0), EwMacConfig::default());
/// assert_eq!(mac.name(), "EW-MAC");
/// assert_eq!(mac.queue_len(), 0);
/// ```
#[derive(Debug)]
pub struct EwMac {
    id: NodeId,
    cfg: EwMacConfig,
    queue: VecDeque<PendingSdu>,
    neighbors: OneHopTable,
    quiet: QuietSchedule,
    role: Role,
    grant: Option<ExtraGrant>,
    rts_inbox: Vec<RtsCandidate>,
    /// End instants of overheard exchanges (interference awareness for the
    /// extra-communication decision).
    overheard_ends: Vec<SimTime>,
    next_attempt_slot: SlotIndex,
    cw: u32,
    /// Lifetime statistics: extra exchanges completed (for diagnostics and
    /// the ablation study).
    extra_successes: u64,
    /// Extra exchanges attempted (EXR sent).
    extra_attempts: u64,
}

impl EwMac {
    /// Creates an EW-MAC instance for node `id`.
    pub fn new(id: NodeId, cfg: EwMacConfig) -> Self {
        EwMac {
            id,
            cfg: cfg.validated(),
            queue: VecDeque::new(),
            neighbors: OneHopTable::new(),
            quiet: QuietSchedule::new(),
            role: Role::Idle,
            grant: None,
            rts_inbox: Vec::new(),
            overheard_ends: Vec::new(),
            next_attempt_slot: 0,
            cw: cfg.base_cw,
            extra_successes: 0,
            extra_attempts: 0,
        }
    }

    /// Completed extra (EXData) exchanges initiated by this node.
    pub fn extra_successes(&self) -> u64 {
        self.extra_successes
    }

    /// EXR requests this node has sent.
    pub fn extra_attempts(&self) -> u64 {
        self.extra_attempts
    }

    /// The current one-hop neighbour table (tests/diagnostics).
    pub fn neighbor_table(&self) -> &OneHopTable {
        &self.neighbors
    }

    fn backoff(&mut self, ctx: &mut MacContext<'_>) {
        let slot = ctx.current_slot();
        let jitter = ctx.rng().gen_range(0..self.cw.max(1)) as u64;
        self.next_attempt_slot = slot + 1 + jitter;
        self.cw = (self.cw * 2).min(self.cfg.max_cw);
    }

    fn succeed(&mut self, bundle: usize) {
        for _ in 0..bundle.max(1) {
            self.queue.pop_front();
        }
        self.cw = self.cfg.base_cw;
    }

    /// How many consecutive head SDUs (same next hop) one data frame will
    /// carry, and their total transmit duration.
    fn bundle_plan(&self, ctx: &MacContext<'_>) -> (SimDuration, usize) {
        let Some(head) = self.queue.front() else {
            return (SimDuration::ZERO, 0);
        };
        let Some(max_bits) = self.cfg.aggregate_max_bits else {
            return (ctx.tx_duration(head.sdu.bits), 1);
        };
        let mut total_bits = 0u64;
        let mut count = 0usize;
        for p in &self.queue {
            if p.sdu.next_hop != head.sdu.next_hop {
                break;
            }
            if count > 0 && total_bits + p.sdu.bits as u64 > max_bits as u64 {
                break;
            }
            total_bits += p.sdu.bits as u64;
            count += 1;
        }
        (
            ctx.tx_duration(total_bits.min(u32::MAX as u64) as u32),
            count,
        )
    }

    /// A delivery attempt for the head SDU failed terminally this round:
    /// count a retry, drop the SDU if exhausted, back off. `reason` labels
    /// the phase of *this* failure and is reported if the drop happens now.
    fn attempt_failed(&mut self, ctx: &mut MacContext<'_>, reason: DropReason) {
        if let Some(head) = self.queue.front_mut() {
            head.retries += 1;
            if head.retries > self.cfg.max_retries {
                let dropped = self.queue.pop_front().expect("head exists");
                ctx.report_drop_with(dropped.sdu.id, reason);
                self.cw = self.cfg.base_cw;
            }
        }
        self.backoff(ctx);
    }

    fn head_td(&self, ctx: &MacContext<'_>) -> Option<SimDuration> {
        self.queue.front().map(|p| ctx.tx_duration(p.sdu.bits))
    }

    /// Conservative end of an overheard exchange when the pair delay is
    /// unknown (an RTS without pair info): assume τmax everywhere.
    fn conservative_exchange_end(
        &self,
        ctx: &MacContext<'_>,
        control_slot: SlotIndex,
        is_cts: bool,
        td: SimDuration,
    ) -> SimTime {
        let clock = ctx.clock();
        let obs = ObservedNegotiation {
            peer: self.id, // placeholders; only timing fields matter here
            other: self.id,
            peer_is_receiver: is_cts,
            control_slot,
            pair_delay: clock.tau_max(),
            data_duration: td,
        };
        obs.exchange_end(&clock)
    }

    fn record_overheard(&mut self, ctx: &mut MacContext<'_>, end: SimTime) {
        let now = ctx.now();
        self.overheard_ends.retain(|&e| e > now);
        self.overheard_ends.push(end);
        self.quiet.add(now, end);
    }

    /// The contention-failure path with the §4.2 twist: try an extra
    /// communication against peer `j` before giving up.
    fn try_extra_or_fail(
        &mut self,
        ctx: &mut MacContext<'_>,
        obs: ObservedNegotiation,
        exchange_end: SimTime,
    ) {
        let now = ctx.now();
        self.overheard_ends.retain(|&e| e > now);
        self.record_overheard(ctx, exchange_end);

        // The paper protects only the exchange being exploited and accepts
        // residual RTS/extra collision risk ("we do not assure that there is
        // no collision"); actual overlaps are caught by the modem ledger.
        let can_try = self.cfg.enable_extra && self.grant.is_none() && !self.queue.is_empty();
        if can_try {
            if let Some(tau_ij) = self.neighbors.delay_of(obs.peer) {
                let clock = ctx.clock();
                if let Some(send_at) =
                    exr_send_time(&clock, &obs, now, tau_ij, self.cfg.effective_guard())
                {
                    let td = self.head_td(ctx).expect("queue checked non-empty");
                    let exr =
                        Frame::control(FrameKind::ExRts, self.id, obs.peer, ctx.control_bits())
                            .with_data_duration(td)
                            .with_pair_delay(tau_ij);
                    ctx.send_frame_at(exr, send_at);
                    self.extra_attempts += 1;
                    // EXC should be back within a round trip plus decode.
                    let timeout = send_at + tau_ij + tau_ij + ctx.omega() * 4;
                    ctx.set_timer_at(timeout, TIMER_EXC);
                    self.role = Role::ExtraRequesting { obs };
                    return;
                }
            }
        }
        // No extra chance: plain contention failure.
        self.role = Role::Idle;
        self.attempt_failed(ctx, DropReason::HandshakeTimeout);
    }

    /// Handles an overheard negotiation packet (not addressed to me).
    fn on_overheard_negotiation(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let frame = rx.frame;
        let clock = ctx.clock();
        let control_slot = clock.slot_of(frame.timestamp);
        let is_cts = frame.kind == FrameKind::Cts;
        let td = frame
            .data_duration
            .unwrap_or_else(|| ctx.tx_duration(2_048));
        let exchange_end = match frame.pair_delay {
            Some(pair_delay) => ObservedNegotiation {
                peer: frame.src,
                other: frame.dst,
                peer_is_receiver: is_cts,
                control_slot,
                pair_delay,
                data_duration: td,
            }
            .exchange_end(&clock),
            None => self.conservative_exchange_end(ctx, control_slot, is_cts, td),
        };

        // Am I the contention loser this packet is telling about?
        if let Role::Contending { peer, .. } = self.role {
            if frame.src == peer {
                // My target is negotiating with someone else — Fig 3's
                // transition into "Asking Extra Commu".
                if let Some(pair_delay) = frame.pair_delay {
                    let obs = ObservedNegotiation {
                        peer,
                        other: frame.dst,
                        peer_is_receiver: is_cts,
                        control_slot,
                        pair_delay,
                        data_duration: td,
                    };
                    self.try_extra_or_fail(ctx, obs, exchange_end);
                } else {
                    self.role = Role::Idle;
                    self.record_overheard(ctx, exchange_end);
                    self.backoff(ctx);
                }
                return;
            }
        }
        self.record_overheard(ctx, exchange_end);
    }

    /// Handles an EXR addressed to me: I'm sensor *j*, being asked to share
    /// my waiting window.
    fn on_extra_request(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        if !self.cfg.enable_extra || self.grant.is_some() {
            return;
        }
        let now = ctx.now();
        let clock = ctx.clock();
        // Reconstruct my own negotiation as an ObservedNegotiation so the
        // shared timing checks apply.
        let my_obs = match self.role {
            Role::Receiving {
                peer, data_slot, ..
            } => {
                let pair_delay = match self.neighbors.delay_of(peer) {
                    Some(d) => d,
                    None => return,
                };
                ObservedNegotiation {
                    peer: self.id,
                    other: peer,
                    peer_is_receiver: true,
                    // Receiving was entered at the CTS slot = data_slot - 1.
                    control_slot: data_slot.saturating_sub(1),
                    pair_delay,
                    data_duration: rx.frame.data_duration.unwrap_or(SimDuration::ZERO),
                }
            }
            Role::Contending {
                peer, rts_slot, td, ..
            } => {
                let pair_delay = match self.neighbors.delay_of(peer) {
                    Some(d) => d,
                    None => return,
                };
                ObservedNegotiation {
                    peer: self.id,
                    other: peer,
                    peer_is_receiver: false,
                    control_slot: rts_slot,
                    pair_delay,
                    data_duration: td,
                }
            }
            Role::SendingData {
                peer, data_slot, ..
            } => {
                // The CTS already arrived, so the requester's EXR was cut
                // fine — but the shareable window (until our Ack returns)
                // still exists; treat it as the sender case anchored at the
                // original RTS slot.
                let pair_delay = match self.neighbors.delay_of(peer) {
                    Some(d) => d,
                    None => return,
                };
                let td = match self.head_td(ctx) {
                    Some(td) => td,
                    None => return,
                };
                ObservedNegotiation {
                    peer: self.id,
                    other: peer,
                    peer_is_receiver: false,
                    control_slot: data_slot.saturating_sub(2),
                    pair_delay,
                    data_duration: td,
                }
            }
            _ => return, // not in a state with a shareable window
        };
        if !exc_reply_ok(&clock, &my_obs, now, self.cfg.effective_guard()) {
            return;
        }
        let requester = rx.frame.src;
        let exc = Frame::control(FrameKind::ExCts, self.id, requester, ctx.control_bits())
            .with_pair_delay(rx.prop_delay)
            .with_data_duration(rx.frame.data_duration.unwrap_or(SimDuration::ZERO));
        ctx.send_frame_now(exc);
        self.grant = Some(ExtraGrant { from: requester });
        let exdata_duration = rx.frame.data_duration.unwrap_or(clock.slot_len());
        let timeout =
            exdata_grant_timeout(&clock, &my_obs, exdata_duration, self.cfg.effective_guard());
        ctx.set_timer_at(timeout.max(now), TIMER_GRANT);
    }

    /// Handles the EXC answering my EXR.
    fn on_extra_clear(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        let Role::ExtraRequesting { obs } = self.role else {
            return;
        };
        if rx.frame.src != obs.peer {
            return;
        }
        ctx.cancel_timer(TIMER_EXC);
        let now = ctx.now();
        let clock = ctx.clock();
        let Some(tau_ij) = self.neighbors.delay_of(obs.peer) else {
            self.role = Role::Idle;
            self.backoff(ctx);
            return;
        };
        let send_at = exdata_send_time(&clock, &obs, tau_ij, self.cfg.effective_guard());
        let Some(head) = self.queue.front() else {
            self.role = Role::Idle;
            return;
        };
        if send_at <= now {
            // The window has already passed (long EXC turnaround).
            self.role = Role::Idle;
            self.backoff(ctx);
            return;
        }
        let mut sdu = head.sdu;
        sdu.next_hop = obs.peer;
        let mut frame = Frame::data(FrameKind::ExData, self.id, sdu);
        if head.retries > 0 {
            frame = frame.as_retransmission();
        }
        let duration = ctx.tx_duration(frame.bits);
        ctx.send_frame_at(frame, send_at);
        let timeout = send_at + duration + tau_ij + tau_ij + ctx.omega() * 4;
        ctx.set_timer_at(timeout, TIMER_EXACK);
        self.role = Role::ExtraSending { obs };
    }

    fn maybe_answer_rts_inbox(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        let clock = ctx.clock();
        let now = ctx.now();
        let candidates: Vec<RtsCandidate> = self
            .rts_inbox
            .drain(..)
            .filter(|c| c.sent_slot + 1 == slot)
            .collect();
        if candidates.is_empty() {
            return;
        }
        if self.role != Role::Idle || self.grant.is_some() {
            return;
        }
        // Fig 3 "Checking Scheduling": the whole exchange must fit outside
        // known quiet windows.
        if self.quiet.overlaps(now, clock.start_of(slot + 2)) {
            return;
        }
        let keyed: Vec<(u32, u32)> = candidates
            .iter()
            .map(|c| (c.src.index() as u32, c.rp))
            .collect();
        let Some(winner_idx) = pick_winner(&keyed) else {
            return;
        };
        let winner = candidates[winner_idx];
        let cts = Frame::control(FrameKind::Cts, self.id, winner.src, ctx.control_bits())
            .with_pair_delay(winner.measured_delay)
            .with_data_duration(winner.td);
        ctx.send_frame_now(cts);
        let data_slot = slot + 1;
        let ack_slot = clock.ack_slot(data_slot, winner.td, winner.measured_delay);
        self.role = Role::Receiving {
            peer: winner.src,
            data_slot,
            ack_slot,
            data_received: false,
        };
    }

    fn maybe_start_contention(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        if self.role != Role::Idle
            || self.grant.is_some()
            || self.queue.is_empty()
            || slot < self.next_attempt_slot
        {
            return;
        }
        let now = ctx.now();
        if self.quiet.is_quiet(now) {
            return;
        }
        let (td, bundle) = self.bundle_plan(ctx);
        let head = self.queue.front_mut().expect("checked non-empty");
        let waited = slot.saturating_sub(*head.first_attempt_slot.get_or_insert(slot));
        let peer = head.sdu.next_hop;
        let rp = priority_value(ctx.rng(), &self.cfg, waited);
        let mut rts = Frame::control(FrameKind::Rts, self.id, peer, ctx.control_bits())
            .with_rp(rp)
            .with_data_duration(td);
        if let Some(tau) = self.neighbors.delay_of(peer) {
            rts = rts.with_pair_delay(tau);
        }
        ctx.send_frame_now(rts);
        self.role = Role::Contending {
            peer,
            rts_slot: slot,
            td,
            bundle,
        };
    }
}

impl MacProtocol for EwMac {
    fn name(&self) -> &'static str {
        "EW-MAC"
    }

    fn maintenance(&self) -> MaintenanceProfile {
        // §4.3/§5.3: one-hop tables, refreshed reactively from timestamps
        // piggybacked on every packet — no periodic re-broadcast.
        MaintenanceProfile {
            scope: NeighborInfoScope::OneHop,
            piggyback_bits: uasn_net::neighbor::ENTRY_BITS,
            periodic_refresh: None,
            // Extra windows are computed from the node's own failed
            // contentions; barely any standing monitoring is needed.
            listen_mw_per_neighbor: 0.2,
        }
    }

    fn install_neighbors(&mut self, neighbors: &[(NodeId, SimDuration)]) {
        for &(id, delay) in neighbors {
            self.neighbors.observe(id, delay, SimTime::ZERO);
        }
    }

    fn install_clock_error(&mut self, bound: SimDuration) {
        // Under drifting clocks, every extra window must shrink by the
        // worst-case timing error or EXData transmissions would spill into
        // reserved slot phases. Keep the larger of a caller-set margin and
        // the world's announced bound.
        self.cfg.sync_margin = self.cfg.sync_margin.max(bound);
    }

    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex) {
        let now = ctx.now();
        self.quiet.prune(now);
        self.overheard_ends.retain(|&e| e > now);
        // A node that transmits in the role-handling phase has spent this
        // boundary: answering an RTS or starting contention in the same
        // instant would double-book the modem.
        let mut transmitted = false;

        match self.role {
            Role::Receiving {
                peer,
                ack_slot,
                data_received,
                ..
            } => {
                if slot == ack_slot {
                    if data_received {
                        let ack = Frame::control(FrameKind::Ack, self.id, peer, ctx.control_bits());
                        ctx.send_frame_now(ack);
                        transmitted = true;
                    }
                    self.role = Role::Idle;
                } else if slot > ack_slot {
                    // Shouldn't happen (handled at equality), but never wedge.
                    self.role = Role::Idle;
                }
            }
            Role::SendingData {
                peer,
                data_slot,
                ack_slot,
                bundle,
            } => {
                if slot == data_slot {
                    let head = self.queue.front().expect("SendingData with empty queue");
                    let retx = head.retries > 0;
                    let mut sdu = head.sdu;
                    sdu.next_hop = peer;
                    let extra: Vec<Sdu> = self
                        .queue
                        .iter()
                        .take(bundle.max(1))
                        .skip(1)
                        .map(|p| {
                            let mut s = p.sdu;
                            s.next_hop = peer;
                            s
                        })
                        .collect();
                    let mut frame = Frame::data(FrameKind::Data, self.id, sdu).with_bundle(extra);
                    if retx {
                        frame = frame.as_retransmission();
                    }
                    ctx.send_frame_now(frame);
                    transmitted = true;
                } else if slot > ack_slot {
                    // The Ack should have arrived during ack_slot.
                    self.attempt_failed(ctx, DropReason::RetryExhausted);
                    self.role = Role::Idle;
                }
            }
            Role::Contending { rts_slot, .. } => {
                if slot >= rts_slot + 2 {
                    // No CTS and no extra path engaged: contention failed.
                    // This consumes the retry budget so an unreachable next
                    // hop (drifted away) cannot be re-contended forever.
                    self.role = Role::Idle;
                    self.attempt_failed(ctx, DropReason::HandshakeTimeout);
                }
            }
            Role::Idle | Role::ExtraRequesting { .. } | Role::ExtraSending { .. } => {}
        }

        if transmitted {
            self.rts_inbox.retain(|c| c.sent_slot + 1 != slot);
            return;
        }
        self.maybe_answer_rts_inbox(ctx, slot);
        self.maybe_start_contention(ctx, slot);
    }

    fn on_enqueue(&mut self, _ctx: &mut MacContext<'_>, sdu: Sdu) {
        self.queue.push_back(PendingSdu {
            sdu,
            retries: 0,
            first_attempt_slot: None,
        });
    }

    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>) {
        // §4.3: every reception refreshes the one-hop delay table.
        self.neighbors
            .observe(rx.frame.src, rx.prop_delay, ctx.now());

        let frame = rx.frame;
        let to_me = rx.addressed_to(self.id);
        match frame.kind {
            FrameKind::Rts => {
                if to_me {
                    self.rts_inbox.push(RtsCandidate {
                        src: frame.src,
                        rp: frame.rp,
                        td: frame
                            .data_duration
                            .unwrap_or_else(|| ctx.tx_duration(2_048)),
                        sent_slot: ctx.clock().slot_of(frame.timestamp),
                        measured_delay: rx.prop_delay,
                    });
                } else {
                    self.on_overheard_negotiation(ctx, rx);
                }
            }
            FrameKind::Cts => {
                if to_me {
                    if let Role::Contending {
                        peer,
                        rts_slot,
                        td,
                        bundle,
                    } = self.role
                    {
                        if frame.src == peer {
                            let clock = ctx.clock();
                            let data_slot = rts_slot + 2;
                            let ack_slot = clock.ack_slot(data_slot, td, rx.prop_delay);
                            self.role = Role::SendingData {
                                peer,
                                data_slot,
                                ack_slot,
                                bundle,
                            };
                        }
                    }
                } else {
                    self.on_overheard_negotiation(ctx, rx);
                }
            }
            FrameKind::Data => {
                if to_me {
                    if let Role::Receiving {
                        peer,
                        data_slot,
                        ack_slot,
                        data_received,
                    } = self.role
                    {
                        if frame.src == peer && !data_received {
                            self.role = Role::Receiving {
                                peer,
                                data_slot,
                                ack_slot,
                                data_received: true,
                            };
                        }
                    }
                }
                // Overheard data needs no action: the quiet window from its
                // negotiation already covers it.
            }
            FrameKind::Ack => {
                if to_me {
                    if let Role::SendingData { peer, bundle, .. } = self.role {
                        if frame.src == peer {
                            self.succeed(bundle);
                            self.role = Role::Idle;
                        }
                    }
                }
            }
            FrameKind::ExRts => {
                if to_me {
                    self.on_extra_request(ctx, rx);
                } else {
                    // §4.2 tail note: hearing someone else's extra control
                    // packet imposes quiet after our own exchange.
                    let until = ctx.now() + ctx.clock().slot_len() * 2;
                    self.quiet.add(ctx.now(), until);
                }
            }
            FrameKind::ExCts => {
                if to_me {
                    self.on_extra_clear(ctx, rx);
                } else {
                    let until = ctx.now() + ctx.clock().slot_len() * 2;
                    self.quiet.add(ctx.now(), until);
                }
            }
            FrameKind::ExData => {
                if to_me {
                    if let Some(grant) = self.grant {
                        if grant.from == frame.src {
                            let exack = Frame::control(
                                FrameKind::ExAck,
                                self.id,
                                frame.src,
                                ctx.control_bits(),
                            );
                            ctx.send_frame_now(exack);
                            ctx.cancel_timer(TIMER_GRANT);
                            self.grant = None;
                        }
                    }
                }
            }
            FrameKind::ExAck => {
                if to_me {
                    if let Role::ExtraSending { obs } = self.role {
                        if frame.src == obs.peer {
                            ctx.cancel_timer(TIMER_EXACK);
                            self.extra_successes += 1;
                            // Extras stay unaggregated: the waiting window
                            // is sized for one SDU.
                            self.succeed(1);
                            self.role = Role::Idle;
                        }
                    }
                }
            }
            FrameKind::Beacon | FrameKind::Rta => {
                // Delay table already refreshed above; EW-MAC has no other
                // use for these.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut MacContext<'_>, token: TimerToken) {
        match token {
            TIMER_EXC => {
                if let Role::ExtraRequesting { .. } = self.role {
                    // No EXC: give up the extra chance, stay quiet (the
                    // quiet window from the overheard negotiation is
                    // already in place), count the failed attempt.
                    self.role = Role::Idle;
                    self.attempt_failed(ctx, DropReason::HandshakeTimeout);
                }
            }
            TIMER_EXACK => {
                if let Role::ExtraSending { .. } = self.role {
                    self.attempt_failed(ctx, DropReason::RetryExhausted);
                    self.role = Role::Idle;
                }
            }
            TIMER_GRANT => {
                self.grant = None;
            }
            _ => {}
        }
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn state_label(&self) -> &'static str {
        match self.role {
            Role::Idle => "idle",
            Role::Contending { .. } => "contending",
            Role::SendingData { .. } => "sending-data",
            Role::Receiving { .. } => "receiving",
            Role::ExtraRequesting { .. } => "extra-requesting",
            Role::ExtraSending { .. } => "extra-sending",
        }
    }
}

// Re-export Rng for the backoff's gen_range call site.
use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uasn_net::mac::MacCommand;
    use uasn_net::slots::SlotClock;
    use uasn_phy::modem::ModemSpec;

    /// Scripted single-node harness: drives an `EwMac` with hand-built
    /// receptions and slot boundaries and inspects the commands it emits.
    struct Harness {
        mac: EwMac,
        rng: StdRng,
        clock: SlotClock,
        spec: ModemSpec,
        commands: Vec<MacCommand>,
    }

    impl Harness {
        fn new(id: u32) -> Self {
            Harness::with_cfg(id, EwMacConfig::default())
        }

        fn with_cfg(id: u32, cfg: EwMacConfig) -> Self {
            Harness {
                mac: EwMac::new(NodeId::new(id), cfg),
                rng: StdRng::seed_from_u64(7),
                clock: SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1)),
                spec: ModemSpec::new(12_000.0),
                commands: Vec::new(),
            }
        }

        fn ctx_at<F: FnOnce(&mut EwMac, &mut MacContext<'_>)>(&mut self, now: SimTime, f: F) {
            let mut ctx = MacContext::new(
                now,
                self.mac.id,
                self.clock,
                self.spec,
                64,
                &mut self.rng,
                &mut self.commands,
            );
            f(&mut self.mac, &mut ctx);
        }

        fn slot(&mut self, slot: SlotIndex) {
            let now = self.clock.start_of(slot);
            self.ctx_at(now, |mac, ctx| mac.on_slot_start(ctx, slot));
        }

        fn enqueue(&mut self, sdu: Sdu) {
            self.ctx_at(SimTime::ZERO, |mac, ctx| mac.on_enqueue(ctx, sdu));
        }

        /// Delivers `frame` (with `timestamp` already set) as decoded at
        /// `timestamp + delay + tx_duration`.
        fn recv(&mut self, frame: Frame, delay: SimDuration) {
            let arrival_start = frame.timestamp + delay;
            let decode_end = arrival_start + self.spec.tx_duration(frame.bits);
            self.ctx_at(decode_end, |mac, ctx| {
                let rx = Reception {
                    frame: &frame,
                    arrival_start,
                    prop_delay: delay,
                };
                mac.on_frame_received(ctx, &rx);
            });
        }

        fn timer(&mut self, now: SimTime, token: TimerToken) {
            self.ctx_at(now, |mac, ctx| mac.on_timer(ctx, token));
        }

        fn drain(&mut self) -> Vec<MacCommand> {
            std::mem::take(&mut self.commands)
        }

        fn sent_kinds(&mut self) -> Vec<FrameKind> {
            self.drain()
                .into_iter()
                .filter_map(|c| match c {
                    MacCommand::SendFrame { frame, .. } => Some(frame.kind),
                    _ => None,
                })
                .collect()
        }
    }

    fn sdu_to(next_hop: u32) -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(0),
            next_hop: NodeId::new(next_hop),
            bits: 2_048,
            created: SimTime::ZERO,
            attempt: 0,
        }
    }

    fn stamped(mut frame: Frame, clock: &SlotClock, slot: SlotIndex) -> Frame {
        frame.timestamp = clock.start_of(slot);
        frame
    }

    #[test]
    fn idle_node_with_traffic_sends_rts_at_slot_start() {
        let mut h = Harness::new(0);
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
        h.enqueue(sdu_to(5));
        h.slot(0);
        let cmds = h.drain();
        let rts = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, at } => Some((frame.clone(), *at)),
                _ => None,
            })
            .expect("an RTS is sent");
        assert_eq!(rts.0.kind, FrameKind::Rts);
        assert_eq!(rts.0.dst, NodeId::new(5));
        assert_eq!(rts.1, SimTime::ZERO, "at the slot boundary");
        assert_eq!(rts.0.pair_delay, Some(SimDuration::from_millis(400)));
        assert!(rts.0.data_duration.is_some());
    }

    #[test]
    fn full_sender_handshake_happy_path() {
        let mut h = Harness::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
        h.enqueue(sdu_to(5));
        h.slot(0); // RTS out
        assert_eq!(h.sent_kinds(), [FrameKind::Rts]);

        // CTS back in slot 1.
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                .with_pair_delay(SimDuration::from_millis(400))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(400));
        assert!(h.drain().is_empty(), "no command until the data slot");

        h.slot(2); // Data out
        let kinds = h.sent_kinds();
        assert_eq!(kinds, [FrameKind::Data]);

        // Ack in the Eq-5 slot: TD+τ = 170.667+400 ms < |ts| -> slot 3.
        let ack = stamped(
            Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64),
            &clock,
            3,
        );
        h.recv(ack, SimDuration::from_millis(400));
        assert_eq!(h.mac.queue_len(), 0, "SDU delivered");
        assert_eq!(h.mac.role, Role::Idle);
    }

    #[test]
    fn receiver_full_path_rts_cts_data_ack() {
        let mut h = Harness::new(5);
        let clock = h.clock;
        // RTS from node 0 in slot 0.
        let rts = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(0), NodeId::new(5), 64)
                .with_rp(10)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(400));
        h.slot(1);
        let cmds = h.drain();
        let cts = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .expect("CTS sent");
        assert_eq!(cts.kind, FrameKind::Cts);
        assert_eq!(cts.dst, NodeId::new(0));
        assert_eq!(cts.pair_delay, Some(SimDuration::from_millis(400)));

        // Data arrives in slot 2.
        let data = stamped(
            Frame::data(FrameKind::Data, NodeId::new(0), sdu_to(5)),
            &clock,
            2,
        );
        h.recv(data, SimDuration::from_millis(400));
        // Eq 5: ack at slot 3.
        h.slot(3);
        assert_eq!(h.sent_kinds(), [FrameKind::Ack]);
        assert_eq!(h.mac.role, Role::Idle);
    }

    #[test]
    fn receiver_picks_highest_rp() {
        let mut h = Harness::new(5);
        let clock = h.clock;
        for (src, rp) in [(0u32, 10u32), (1, 99), (2, 50)] {
            let rts = stamped(
                Frame::control(FrameKind::Rts, NodeId::new(src), NodeId::new(5), 64)
                    .with_rp(rp)
                    .with_data_duration(SimDuration::from_micros(170_667)),
                &clock,
                0,
            );
            h.recv(rts, SimDuration::from_millis(300));
        }
        h.slot(1);
        let cmds = h.drain();
        let cts_dst = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, .. } if frame.kind == FrameKind::Cts => {
                    Some(frame.dst)
                }
                _ => None,
            })
            .expect("CTS sent");
        assert_eq!(cts_dst, NodeId::new(1), "highest rp wins");
    }

    #[test]
    fn overhearing_negotiation_imposes_quiet() {
        let mut h = Harness::new(9);
        let clock = h.clock;
        // Overhear CTS(1 -> 2) in slot 0 with pair info.
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(1), NodeId::new(2), 64)
                .with_pair_delay(SimDuration::from_millis(600))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(cts, SimDuration::from_millis(500));
        h.drain();
        // Now enqueue traffic: the node must hold its RTS during the quiet.
        h.enqueue(sdu_to(1));
        h.slot(1);
        assert_eq!(h.sent_kinds(), Vec::<FrameKind>::new(), "quiet: no RTS");
        // The exchange (ack slot 2) ends early in slot 3; by slot 4 the
        // quiet has expired.
        h.slot(4);
        assert_eq!(h.sent_kinds(), [FrameKind::Rts]);
    }

    #[test]
    fn contention_loser_asks_for_extra_communication() {
        let mut h = Harness::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(300))]);
        h.enqueue(sdu_to(5));
        h.slot(0); // RTS(0->5)
        h.drain();

        // Node 5 answers node 7 instead: CTS(5->7) in slot 1.
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(7), 64)
                .with_pair_delay(SimDuration::from_millis(700))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(300));
        let cmds = h.drain();
        let exr = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, at } if frame.kind == FrameKind::ExRts => {
                    Some((frame.clone(), *at))
                }
                _ => None,
            })
            .expect("EXR sent after losing contention");
        assert_eq!(exr.0.dst, NodeId::new(5));
        assert_eq!(h.mac.extra_attempts(), 1);
        assert!(matches!(h.mac.role, Role::ExtraRequesting { .. }));

        // EXC comes back quickly.
        let mut exc = Frame::control(FrameKind::ExCts, NodeId::new(5), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(300));
        exc.timestamp = exr.1 + SimDuration::from_millis(320);
        h.recv(exc, SimDuration::from_millis(300));
        let cmds = h.drain();
        let (exdata, at) = cmds
            .iter()
            .find_map(|c| match c {
                MacCommand::SendFrame { frame, at } if frame.kind == FrameKind::ExData => {
                    Some((frame.clone(), *at))
                }
                _ => None,
            })
            .expect("EXData scheduled");
        // Eq 6: arrival = ack-slot start + ω + guard; ack slot for the
        // (5,7) pair: data slot 2, TD+τ < |ts| -> slot 3.
        let expected_arrival =
            clock.start_of(3) + clock.omega() + EwMacConfig::default().extra_guard;
        assert_eq!(at + SimDuration::from_millis(300), expected_arrival);
        assert_eq!(exdata.dst, NodeId::new(5));

        // EXAck closes the exchange.
        let mut exack = Frame::control(FrameKind::ExAck, NodeId::new(5), NodeId::new(0), 64);
        exack.timestamp = at + SimDuration::from_secs(1);
        h.recv(exack, SimDuration::from_millis(300));
        assert_eq!(h.mac.queue_len(), 0);
        assert_eq!(h.mac.extra_successes(), 1);
        assert_eq!(h.mac.role, Role::Idle);
    }

    #[test]
    fn extra_disabled_falls_back_to_plain_failure() {
        let mut h = Harness::with_cfg(0, EwMacConfig::default().without_extra());
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(300))]);
        h.enqueue(sdu_to(5));
        h.slot(0);
        h.drain();
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(7), 64)
                .with_pair_delay(SimDuration::from_millis(700))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(300));
        let kinds: Vec<FrameKind> = h.sent_kinds();
        assert!(kinds.is_empty(), "no EXR with extra disabled: {kinds:?}");
        assert_eq!(h.mac.role, Role::Idle);
        assert_eq!(h.mac.extra_attempts(), 0);
    }

    #[test]
    fn granting_side_answers_exr_and_acks_exdata() {
        let mut h = Harness::new(5);
        let clock = h.clock;
        // Node 5 becomes a receiver for node 7 first.
        let rts = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(7), NodeId::new(5), 64)
                .with_rp(50)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts, SimDuration::from_millis(700));
        h.slot(1); // CTS(5->7)
        assert_eq!(h.sent_kinds(), [FrameKind::Cts]);

        // Node 0's EXR arrives shortly after (well before Data(7,5)).
        let mut exr = Frame::control(FrameKind::ExRts, NodeId::new(0), NodeId::new(5), 64)
            .with_data_duration(SimDuration::from_micros(170_667));
        exr.timestamp = clock.start_of(1) + SimDuration::from_millis(320);
        h.recv(exr, SimDuration::from_millis(300));
        let kinds = h.sent_kinds();
        assert_eq!(kinds, [FrameKind::ExCts], "grant issued");
        assert!(h.mac.grant.is_some());

        // Data from 7 arrives in slot 2; node 5 acks at slot 3.
        let data = stamped(
            Frame::data(
                FrameKind::Data,
                NodeId::new(7),
                Sdu {
                    id: 9,
                    origin: NodeId::new(7),
                    next_hop: NodeId::new(5),
                    bits: 2_048,
                    created: SimTime::ZERO,
                    attempt: 0,
                },
            ),
            &clock,
            2,
        );
        h.recv(data, SimDuration::from_millis(700));
        h.slot(3);
        assert_eq!(h.sent_kinds(), [FrameKind::Ack]);

        // EXData from node 0 lands after the Ack; node 5 EXAcks it.
        let mut exdata = Frame::data(
            FrameKind::ExData,
            NodeId::new(0),
            Sdu {
                id: 11,
                origin: NodeId::new(0),
                next_hop: NodeId::new(5),
                bits: 2_048,
                created: SimTime::ZERO,
                attempt: 0,
            },
        );
        exdata.timestamp = clock.start_of(3) + SimDuration::from_millis(100);
        h.recv(exdata, SimDuration::from_millis(300));
        assert_eq!(h.sent_kinds(), [FrameKind::ExAck]);
        assert!(h.mac.grant.is_none());
    }

    #[test]
    fn busy_receiver_ignores_new_rts() {
        let mut h = Harness::new(5);
        let clock = h.clock;
        let rts1 = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(7), NodeId::new(5), 64)
                .with_rp(50)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            0,
        );
        h.recv(rts1, SimDuration::from_millis(700));
        h.slot(1);
        assert_eq!(h.sent_kinds(), [FrameKind::Cts]);
        // A second RTS in slot 1 must be ignored at slot 2 (role Receiving).
        let rts2 = stamped(
            Frame::control(FrameKind::Rts, NodeId::new(8), NodeId::new(5), 64)
                .with_rp(90)
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(rts2, SimDuration::from_millis(200));
        h.slot(2);
        assert_eq!(h.sent_kinds(), Vec::<FrameKind>::new());
    }

    #[test]
    fn missing_ack_triggers_retransmission_with_backoff() {
        let mut h = Harness::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
        h.enqueue(sdu_to(5));
        h.slot(0);
        h.drain();
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                .with_pair_delay(SimDuration::from_millis(400))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(400));
        h.slot(2);
        assert_eq!(h.sent_kinds(), [FrameKind::Data]);
        // No Ack in slot 3; at slot 4 the sender gives up this attempt.
        h.slot(3);
        h.slot(4);
        assert_eq!(h.mac.role, Role::Idle);
        assert_eq!(h.mac.queue_len(), 1, "SDU kept for retry");
        assert_eq!(h.mac.queue.front().unwrap().retries, 1);
        // Eventually it re-contends, and the Data goes out flagged retx.
        let mut sent_retx = false;
        for slot in 5..40 {
            h.slot(slot);
            for cmd in h.drain() {
                if let MacCommand::SendFrame { frame, .. } = cmd {
                    if frame.kind == FrameKind::Rts {
                        // Answer it immediately.
                        let cts = stamped(
                            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                                .with_pair_delay(SimDuration::from_millis(400))
                                .with_data_duration(SimDuration::from_micros(170_667)),
                            &clock,
                            slot + 1,
                        );
                        h.recv(cts, SimDuration::from_millis(400));
                    }
                    if frame.kind == FrameKind::Data {
                        assert!(frame.retx, "retransmitted data must be flagged");
                        sent_retx = true;
                    }
                }
            }
            if sent_retx {
                break;
            }
        }
        assert!(sent_retx, "retransmission never happened");
    }

    #[test]
    fn sdu_dropped_after_max_retries() {
        let cfg = EwMacConfig {
            max_retries: 1,
            ..EwMacConfig::default()
        };
        let mut h = Harness::with_cfg(0, cfg);
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
        h.enqueue(sdu_to(5));
        // Drive many slots; never answer anything. Contention failures do
        // not consume retries (only failed data attempts do), so force two
        // data rounds by answering CTS but never Ack.
        let clock = h.clock;
        let mut drops = 0;
        for slot in 0..200 {
            h.slot(slot);
            for cmd in h.drain() {
                if let MacCommand::SendFrame { frame, .. } = cmd {
                    if frame.kind == FrameKind::Rts {
                        let cts = stamped(
                            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
                                .with_pair_delay(SimDuration::from_millis(400))
                                .with_data_duration(SimDuration::from_micros(170_667)),
                            &clock,
                            slot + 1,
                        );
                        h.recv(cts, SimDuration::from_millis(400));
                    }
                }
            }
            if h.mac.queue_len() == 0 {
                drops += 1;
                break;
            }
        }
        assert_eq!(drops, 1, "SDU dropped after exhausting retries");
    }

    #[test]
    fn exc_timeout_returns_to_idle() {
        let mut h = Harness::new(0);
        let clock = h.clock;
        h.mac
            .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(300))]);
        h.enqueue(sdu_to(5));
        h.slot(0);
        h.drain();
        let cts = stamped(
            Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(7), 64)
                .with_pair_delay(SimDuration::from_millis(700))
                .with_data_duration(SimDuration::from_micros(170_667)),
            &clock,
            1,
        );
        h.recv(cts, SimDuration::from_millis(300));
        assert!(matches!(h.mac.role, Role::ExtraRequesting { .. }));
        h.timer(clock.start_of(3), TIMER_EXC);
        assert_eq!(h.mac.role, Role::Idle);
        assert_eq!(h.mac.queue_len(), 1, "SDU survives for normal retry");
    }

    #[test]
    fn neighbor_table_learns_from_every_packet() {
        let mut h = Harness::new(0);
        let clock = h.clock;
        assert!(h.mac.neighbor_table().is_empty());
        let beacon = stamped(
            Frame::control(FrameKind::Beacon, NodeId::new(3), NodeId::new(0), 64),
            &clock,
            0,
        );
        h.recv(beacon, SimDuration::from_millis(123));
        assert_eq!(
            h.mac.neighbor_table().delay_of(NodeId::new(3)),
            Some(SimDuration::from_millis(123))
        );
    }

    #[test]
    fn maintenance_profile_is_one_hop_reactive() {
        let mac = EwMac::new(NodeId::new(0), EwMacConfig::default());
        let p = mac.maintenance();
        assert_eq!(p.scope, NeighborInfoScope::OneHop);
        assert!(p.periodic_refresh.is_none());
        assert!(p.piggyback_bits > 0);
    }
}
