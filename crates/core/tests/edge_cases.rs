//! EW-MAC edge cases exercised through the public `MacProtocol` surface:
//! the protocol is scripted with hand-built receptions and judged purely on
//! the frames and timers it emits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use uasn_ewmac::{EwMac, EwMacConfig};
use uasn_net::mac::{MacCommand, MacContext, MacProtocol, Reception, TimerToken};
use uasn_net::node::NodeId;
use uasn_net::packet::{Frame, FrameKind, Sdu};
use uasn_net::slots::{SlotClock, SlotIndex};
use uasn_phy::modem::ModemSpec;
use uasn_sim::time::{SimDuration, SimTime};

struct Script {
    mac: EwMac,
    rng: StdRng,
    clock: SlotClock,
    spec: ModemSpec,
    commands: Vec<MacCommand>,
}

impl Script {
    fn new(id: u32) -> Self {
        Script {
            mac: EwMac::new(NodeId::new(id), EwMacConfig::default()),
            rng: StdRng::seed_from_u64(99),
            clock: SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1)),
            spec: ModemSpec::new(12_000.0),
            commands: Vec::new(),
        }
    }

    fn ctx<F: FnOnce(&mut EwMac, &mut MacContext<'_>)>(&mut self, now: SimTime, f: F) {
        let mut ctx = MacContext::new(
            now,
            NodeId::new(0),
            self.clock,
            self.spec,
            64,
            &mut self.rng,
            &mut self.commands,
        );
        f(&mut self.mac, &mut ctx);
    }

    fn slot(&mut self, s: SlotIndex) {
        let now = self.clock.start_of(s);
        self.ctx(now, |m, c| m.on_slot_start(c, s));
    }

    fn recv(&mut self, frame: Frame, delay_ms: u64) {
        let delay = SimDuration::from_millis(delay_ms);
        let arrival = frame.timestamp + delay;
        let now = arrival + self.spec.tx_duration(frame.bits);
        self.ctx(now, |m, c| {
            m.on_frame_received(
                c,
                &Reception {
                    frame: &frame,
                    arrival_start: arrival,
                    prop_delay: delay,
                },
            )
        });
    }

    fn sent(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.commands)
            .into_iter()
            .filter_map(|c| match c {
                MacCommand::SendFrame { frame, .. } => Some(frame),
                _ => None,
            })
            .collect()
    }

    fn timers_set(&self) -> Vec<TimerToken> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                MacCommand::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .collect()
    }
}

fn stamped(mut f: Frame, clock: &SlotClock, slot: SlotIndex) -> Frame {
    f.timestamp = clock.start_of(slot);
    f
}

fn sdu(id: u64, next: u32) -> Sdu {
    Sdu {
        id,
        origin: NodeId::new(0),
        next_hop: NodeId::new(next),
        bits: 2_048,
        created: SimTime::ZERO,
        attempt: 0,
    }
}

#[test]
fn stale_rts_is_not_answered_a_slot_late() {
    let mut s = Script::new(5);
    let clock = s.clock;
    // An RTS sent in slot 0 must be decided at the start of slot 1;
    // if the node was busy then, the request is void by slot 2.
    let rts = stamped(
        Frame::control(FrameKind::Rts, NodeId::new(1), NodeId::new(5), 64)
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        0,
    );
    s.recv(rts, 400);
    // Skip slot 1 entirely (e.g. the dispatcher was wedged) — at slot 2 the
    // stale candidate must not produce a CTS.
    s.slot(2);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::Cts),
        "answered a stale RTS"
    );
}

#[test]
fn queue_is_fifo_across_deliveries() {
    let mut s = Script::new(0);
    let clock = s.clock;
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
    s.ctx(SimTime::ZERO, |m, c| {
        m.on_enqueue(c, sdu(10, 5));
        m.on_enqueue(c, sdu(11, 5));
    });
    // Run the first SDU through a full successful exchange.
    s.slot(0);
    let rts_out = s.sent();
    assert_eq!(rts_out[0].kind, FrameKind::Rts);
    let cts = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(400))
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        1,
    );
    s.recv(cts, 400);
    s.slot(2);
    let data = s.sent();
    assert_eq!(data[0].kind, FrameKind::Data);
    assert_eq!(data[0].sdu.unwrap().id, 10, "head of queue goes first");
    let ack = stamped(
        Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64),
        &clock,
        3,
    );
    s.recv(ack, 400);
    assert_eq!(s.mac.queue_len(), 1);
    // The second exchange must carry SDU 11.
    s.slot(4);
    s.sent();
    let cts2 = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(400))
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        5,
    );
    s.recv(cts2, 400);
    s.slot(6);
    let data2 = s.sent();
    assert_eq!(data2[0].sdu.unwrap().id, 11);
}

#[test]
fn unexpected_cts_is_ignored() {
    let mut s = Script::new(0);
    let clock = s.clock;
    // A CTS addressed to us while idle (stale/duplicated) must not trigger
    // a data transmission.
    let cts = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(400))
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        1,
    );
    s.recv(cts, 400);
    s.slot(2);
    s.slot(3);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::Data),
        "idle node transmitted data after stale CTS"
    );
}

#[test]
fn cts_from_wrong_peer_does_not_advance_the_handshake() {
    let mut s = Script::new(0);
    let clock = s.clock;
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
    s.ctx(SimTime::ZERO, |m, c| m.on_enqueue(c, sdu(1, 5)));
    s.slot(0); // RTS to n5
    s.sent();
    // n7 answers instead (misdelivery); must not be taken as a grant.
    let cts = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(7), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(300))
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        1,
    );
    s.recv(cts, 300);
    s.slot(2);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::Data),
        "accepted a CTS from the wrong peer"
    );
}

#[test]
fn duplicate_data_is_acked_once_per_exchange() {
    let mut s = Script::new(5);
    let clock = s.clock;
    let rts = stamped(
        Frame::control(FrameKind::Rts, NodeId::new(1), NodeId::new(5), 64)
            .with_rp(9)
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        0,
    );
    s.recv(rts, 400);
    s.slot(1);
    assert_eq!(s.sent()[0].kind, FrameKind::Cts);
    let data = stamped(
        Frame::data(FrameKind::Data, NodeId::new(1), sdu(7, 5)),
        &clock,
        2,
    );
    s.recv(data.clone(), 400);
    // A duplicated decode of the same data in the same exchange must not
    // double anything.
    s.recv(data, 400);
    s.slot(3);
    let acks: Vec<_> = s
        .sent()
        .into_iter()
        .filter(|f| f.kind == FrameKind::Ack)
        .collect();
    assert_eq!(acks.len(), 1, "exactly one Ack per exchange");
}

#[test]
fn grant_is_exclusive_until_resolved() {
    let mut s = Script::new(5);
    let clock = s.clock;
    // Become a receiver (shareable window).
    let rts = stamped(
        Frame::control(FrameKind::Rts, NodeId::new(7), NodeId::new(5), 64)
            .with_rp(9)
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        0,
    );
    s.recv(rts, 700);
    s.slot(1);
    s.sent();
    // First EXR gets the grant…
    let mut exr1 = Frame::control(FrameKind::ExRts, NodeId::new(1), NodeId::new(5), 64)
        .with_data_duration(SimDuration::from_micros(170_667));
    exr1.timestamp = clock.start_of(1) + SimDuration::from_millis(100);
    s.recv(exr1, 100);
    let first: Vec<_> = s.sent();
    assert_eq!(
        first.iter().filter(|f| f.kind == FrameKind::ExCts).count(),
        1
    );
    // …a second EXR in the same window must be refused.
    let mut exr2 = Frame::control(FrameKind::ExRts, NodeId::new(2), NodeId::new(5), 64)
        .with_data_duration(SimDuration::from_micros(170_667));
    exr2.timestamp = clock.start_of(1) + SimDuration::from_millis(150);
    s.recv(exr2, 100);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::ExCts),
        "granted two extras into one window"
    );
}

#[test]
fn exr_to_an_idle_node_is_refused() {
    let mut s = Script::new(5);
    let clock = s.clock;
    let mut exr = Frame::control(FrameKind::ExRts, NodeId::new(1), NodeId::new(5), 64)
        .with_data_duration(SimDuration::from_micros(170_667));
    exr.timestamp = clock.start_of(0) + SimDuration::from_millis(50);
    s.recv(exr, 100);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::ExCts),
        "an idle node has no waiting window to share"
    );
}

#[test]
fn overheard_extra_control_imposes_quiet() {
    let mut s = Script::new(9);
    let clock = s.clock;
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(300))]);
    // Overhear someone else's EXC.
    let mut exc = Frame::control(FrameKind::ExCts, NodeId::new(1), NodeId::new(2), 64);
    exc.timestamp = clock.start_of(0) + SimDuration::from_millis(200);
    s.recv(exc, 300);
    // With traffic queued, the next two slot boundaries fall inside the
    // imposed quiet window — no RTS.
    s.ctx(clock.start_of(0) + SimDuration::from_millis(900), |m, c| {
        m.on_enqueue(c, sdu(1, 5))
    });
    s.slot(1);
    s.slot(2);
    assert!(
        s.sent().iter().all(|f| f.kind != FrameKind::Rts),
        "transmitted into someone's extra exchange"
    );
    s.slot(4);
    assert!(
        s.sent().iter().any(|f| f.kind == FrameKind::Rts),
        "quiet never expired"
    );
}

#[test]
fn exc_timer_is_armed_with_the_exr() {
    let mut s = Script::new(0);
    let clock = s.clock;
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(300))]);
    s.ctx(SimTime::ZERO, |m, c| m.on_enqueue(c, sdu(1, 5)));
    s.slot(0);
    s.sent();
    let cts = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(7), 64)
            .with_pair_delay(SimDuration::from_millis(800))
            .with_data_duration(SimDuration::from_micros(170_667)),
        &clock,
        1,
    );
    s.recv(cts, 300);
    let frames: Vec<FrameKind> = s
        .commands
        .iter()
        .filter_map(|c| match c {
            MacCommand::SendFrame { frame, .. } => Some(frame.kind),
            _ => None,
        })
        .collect();
    assert!(frames.contains(&FrameKind::ExRts));
    assert!(
        !s.timers_set().is_empty(),
        "an EXR without a timeout can wedge the protocol"
    );
}

#[test]
fn aggregation_bundles_same_next_hop_sdus() {
    let mut s = Script::new(0);
    s.mac = EwMac::new(
        NodeId::new(0),
        EwMacConfig::default().with_aggregation(8_192),
    );
    let clock = s.clock;
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
    s.ctx(SimTime::ZERO, |m, c| {
        m.on_enqueue(c, sdu(1, 5));
        m.on_enqueue(c, sdu(2, 5));
        m.on_enqueue(c, sdu(3, 5));
        m.on_enqueue(c, sdu(4, 7)); // different next hop: must not ride along
    });
    s.slot(0);
    let rts = &s.sent()[0];
    // The announced TD covers three 2048-bit SDUs.
    assert_eq!(
        rts.data_duration.unwrap(),
        SimDuration::from_micros(512_000),
        "TD must announce the aggregated payload"
    );
    let cts = stamped(
        Frame::control(FrameKind::Cts, NodeId::new(5), NodeId::new(0), 64)
            .with_pair_delay(SimDuration::from_millis(400))
            .with_data_duration(SimDuration::from_micros(512_000)),
        &clock,
        1,
    );
    s.recv(cts, 400);
    s.slot(2);
    let data = &s.sent()[0];
    assert_eq!(data.kind, FrameKind::Data);
    assert_eq!(data.bits, 3 * 2_048);
    assert_eq!(data.bundle.len(), 2);
    // Eq 5 with the aggregated duration: 512 ms + 400 ms -> next slot.
    let ack = stamped(
        Frame::control(FrameKind::Ack, NodeId::new(5), NodeId::new(0), 64),
        &clock,
        3,
    );
    s.recv(ack, 400);
    assert_eq!(
        s.mac.queue_len(),
        1,
        "three delivered, the cross-hop one left"
    );
}

#[test]
fn aggregation_respects_the_bit_cap() {
    let mut s = Script::new(0);
    s.mac = EwMac::new(
        NodeId::new(0),
        EwMacConfig::default().with_aggregation(4_096),
    );
    s.mac
        .install_neighbors(&[(NodeId::new(5), SimDuration::from_millis(400))]);
    s.ctx(SimTime::ZERO, |m, c| {
        for id in 1..=4 {
            m.on_enqueue(c, sdu(id, 5));
        }
    });
    s.slot(0);
    let rts = &s.sent()[0];
    // Cap 4096 bits -> exactly two 2048-bit SDUs.
    assert_eq!(
        rts.data_duration.unwrap(),
        SimDuration::from_micros(341_333)
    );
}
