//! Property-based tests for EW-MAC's §4.2 timing algebra: for every
//! geometry the extra-communication windows must respect the negotiated
//! exchange — this is the paper's central non-interference claim, checked
//! as arithmetic rather than by simulation.

use proptest::prelude::*;

use uasn_ewmac::extra::{
    exc_reply_ok, exdata_grant_timeout, exdata_send_time, exr_send_time, ObservedNegotiation,
};
use uasn_ewmac::priority::pick_winner;
use uasn_net::node::NodeId;
use uasn_net::slots::SlotClock;
use uasn_sim::time::SimDuration;

fn clock() -> SlotClock {
    SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1))
}

fn arb_obs() -> impl Strategy<Value = ObservedNegotiation> {
    (
        proptest::bool::ANY,
        0u64..500,
        1_000u64..1_000_000,  // pair delay µs (≤ τmax)
        10_000u64..2_000_000, // data duration µs
    )
        .prop_map(
            |(peer_is_receiver, control_slot, pair_us, td_us)| ObservedNegotiation {
                peer: NodeId::new(1),
                other: NodeId::new(2),
                peer_is_receiver,
                control_slot,
                pair_delay: SimDuration::from_micros(pair_us),
                data_duration: SimDuration::from_micros(td_us),
            },
        )
}

proptest! {
    /// Eq 5: the Ack slot always starts after the data has fully arrived.
    #[test]
    fn ack_slot_clears_the_data(obs in arb_obs()) {
        let c = clock();
        let ack_start = c.start_of(obs.ack_slot(&c));
        let data_arrival_end =
            c.start_of(obs.data_slot()) + obs.data_duration + obs.pair_delay;
        prop_assert!(ack_start >= data_arrival_end);
    }

    /// When the EXR is admitted, its full reception at the peer ends before
    /// the peer's next negotiated packet starts arriving — period III/V of
    /// Fig 2, the request-phase non-interference guarantee.
    #[test]
    fn admitted_exr_never_touches_the_negotiated_window(
        obs in arb_obs(),
        tau_ij_us in 1_000u64..1_000_000,
        decode_offset_us in 0u64..2_000_000,
    ) {
        let c = clock();
        let tau_ij = SimDuration::from_micros(tau_ij_us);
        let guard = SimDuration::from_millis(2);
        // The loser decodes the overheard packet somewhere after the
        // control slot began.
        let now = c.start_of(obs.control_slot)
            + SimDuration::from_micros(5_333 + decode_offset_us);
        if let Some(send_at) = exr_send_time(&c, &obs, now, tau_ij, guard) {
            prop_assert_eq!(send_at, now, "extra requests go out immediately");
            let arrival_end = send_at + tau_ij + c.omega();
            let window_close = if obs.peer_is_receiver {
                obs.data_arrival_at_receiver(&c)
            } else {
                c.start_of(obs.control_slot + 1) + obs.pair_delay
            };
            prop_assert!(
                arrival_end + guard <= window_close,
                "EXR tail {arrival_end} crosses the window close {window_close}"
            );
        }
    }

    /// Eq 6 (+guard): the EXData always starts arriving strictly after the
    /// peer has finished its Ack business — never during it.
    #[test]
    fn exdata_arrival_is_strictly_after_the_ack(
        obs in arb_obs(),
        tau_ij_us in 1_000u64..1_000_000,
    ) {
        let c = clock();
        let tau_ij = SimDuration::from_micros(tau_ij_us);
        let guard = SimDuration::from_millis(2);
        let send_at = exdata_send_time(&c, &obs, tau_ij, guard);
        let arrival = send_at + tau_ij;
        let ack_business_end = if obs.peer_is_receiver {
            // peer transmits the Ack
            c.start_of(obs.ack_slot(&c)) + c.omega()
        } else {
            // peer receives the Ack
            c.start_of(obs.ack_slot(&c)) + obs.pair_delay + c.omega()
        };
        prop_assert!(arrival > ack_business_end);
        prop_assert_eq!(arrival, ack_business_end + guard);
    }

    /// The grant timeout always postdates the promised EXData arrival, so a
    /// granting node can never abandon an extra exchange that is still on
    /// schedule.
    #[test]
    fn grant_timeout_covers_the_promised_arrival(
        obs in arb_obs(),
        tau_ij_us in 1_000u64..1_000_000,
        exdata_us in 10_000u64..2_000_000,
    ) {
        let c = clock();
        let guard = SimDuration::from_millis(2);
        let tau_ij = SimDuration::from_micros(tau_ij_us);
        let exdata = SimDuration::from_micros(exdata_us);
        let timeout = exdata_grant_timeout(&c, &obs, exdata, guard);
        let arrival_end = exdata_send_time(&c, &obs, tau_ij, guard) + tau_ij + exdata;
        prop_assert!(timeout >= arrival_end);
    }

    /// EXC admission implies the EXC itself clears the peer's schedule.
    #[test]
    fn admitted_exc_fits_before_the_busy_moment(
        obs in arb_obs(),
        reply_offset_us in 0u64..3_000_000,
    ) {
        let c = clock();
        let guard = SimDuration::from_millis(2);
        let now = c.start_of(obs.control_slot) + SimDuration::from_micros(reply_offset_us);
        if exc_reply_ok(&c, &obs, now, guard) {
            let busy_at = if obs.peer_is_receiver {
                obs.data_arrival_at_receiver(&c)
            } else {
                c.start_of(obs.control_slot + 1) + obs.pair_delay
            };
            prop_assert!(now + c.omega() + guard <= busy_at);
        }
    }

    /// Winner selection is permutation-invariant on the winning value.
    #[test]
    fn rts_winner_is_the_max_rp(
        candidates in proptest::collection::vec((0u32..64, 0u32..10_000), 1..10),
    ) {
        let winner = pick_winner(&candidates).expect("non-empty");
        let best = candidates.iter().map(|&(_, rp)| rp).max().unwrap();
        prop_assert_eq!(candidates[winner].1, best);
        // Deterministic tie-break: lowest sender id among the maxima.
        let min_id_among_best = candidates
            .iter()
            .filter(|&&(_, rp)| rp == best)
            .map(|&(id, _)| id)
            .min()
            .unwrap();
        prop_assert_eq!(candidates[winner].0, min_id_among_best);
    }
}
