//! Property-based tests for the network substrate: slot arithmetic, the
//! quiet schedule against an interval oracle, topology connectivity, and
//! routing progress.

use proptest::prelude::*;
use rand::SeedableRng;

use uasn_net::node::NodeId;
use uasn_net::quiet::QuietSchedule;
use uasn_net::routing::{next_hop_uphill, route_uphill};
use uasn_net::slots::SlotClock;
use uasn_net::topology::{stranded_sensors, Deployment};
use uasn_phy::geometry::Point;
use uasn_sim::time::{SimDuration, SimTime};

fn clock() -> SlotClock {
    SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1))
}

proptest! {
    #[test]
    fn slot_of_start_of_roundtrips(slot in 0u64..1_000_000) {
        let c = clock();
        prop_assert_eq!(c.slot_of(c.start_of(slot)), slot);
        prop_assert!(c.is_boundary(c.start_of(slot)));
    }

    #[test]
    fn every_instant_lies_in_its_slot(micros in 0u64..1_000_000_000_000) {
        let c = clock();
        let t = SimTime::from_micros(micros);
        let slot = c.slot_of(t);
        prop_assert!(c.start_of(slot) <= t);
        prop_assert!(t < c.start_of(slot + 1));
        prop_assert!(c.next_boundary(t) > t);
        prop_assert_eq!(c.next_boundary(t), c.start_of(slot + 1));
    }

    #[test]
    fn eq5_ack_slot_is_exact_ceiling(
        data_slot in 0u64..10_000,
        td_micros in 1u64..5_000_000,
        tau_micros in 0u64..1_000_000,
    ) {
        let c = clock();
        let td = SimDuration::from_micros(td_micros);
        let tau = SimDuration::from_micros(tau_micros);
        let ack = c.ack_slot(data_slot, td, tau);
        // Definition: the first slot whose start is at or after the data's
        // arrival end.
        let arrival_end = c.start_of(data_slot) + td + tau;
        prop_assert!(c.start_of(ack) >= arrival_end);
        if ack > data_slot {
            prop_assert!(c.start_of(ack - 1) < arrival_end);
        }
    }

    /// QuietSchedule against a brute-force membership oracle.
    #[test]
    fn quiet_schedule_matches_interval_oracle(
        intervals in proptest::collection::vec((0u64..1_000, 0u64..200), 0..40),
        probes in proptest::collection::vec(0u64..1_400, 1..50),
    ) {
        let mut q = QuietSchedule::new();
        let spans: Vec<(u64, u64)> = intervals.iter().map(|&(s, d)| (s, s + d)).collect();
        for &(s, e) in &spans {
            q.add(SimTime::from_micros(s), SimTime::from_micros(e));
        }
        for &p in &probes {
            let oracle = spans.iter().any(|&(s, e)| s <= p && p < e);
            prop_assert_eq!(
                q.is_quiet(SimTime::from_micros(p)),
                oracle,
                "probe {} against {:?}", p, spans
            );
        }
        //

        // overlaps() agrees with a window oracle too.
        for w in probes.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            if a == b { continue; }
            // Zero-length spans were never stored; skip them in the oracle.
            let oracle = spans.iter().any(|&(s, e)| s < e && s < b && a < e);
            prop_assert_eq!(
                q.overlaps(SimTime::from_micros(a), SimTime::from_micros(b)),
                oracle
            );
        }
    }

    #[test]
    fn quiet_prune_removes_exactly_the_expired(
        intervals in proptest::collection::vec((0u64..1_000, 1u64..200), 1..30),
        now in 0u64..1_400,
    ) {
        let mut q = QuietSchedule::new();
        for &(s, d) in &intervals {
            q.add(SimTime::from_micros(s), SimTime::from_micros(s + d));
        }
        let before = q.len();
        let pruned = q.prune(SimTime::from_micros(now));
        prop_assert_eq!(q.len() + pruned, before);
        // Everything still quiet after `now` must remain reachable.
        prop_assert!(!q.is_quiet(SimTime::from_micros(now)) || q.quiet_until(SimTime::from_micros(now)).is_some());
    }

    /// The layered column always yields an uphill-connected topology, for
    /// any seed and node count, and depth routing always terminates at a
    /// sink.
    #[test]
    fn layered_column_connectivity_and_routing(
        seed in 0u64..5_000,
        sensors in 4u32..80,
        sinks in 1u32..4,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let deployment = Deployment::paper_column_for(sensors.max(12));
        let nodes = deployment
            .generate(&mut rng, sensors, sinks, 1_500.0)
            .expect("column generates");
        prop_assert!(stranded_sensors(&nodes, 1_500.0).is_empty());

        let positions: Vec<Point> = nodes.iter().map(|n| n.position).collect();
        for idx in sinks as usize..nodes.len() {
            let route = route_uphill(&positions, NodeId::new(idx as u32), 1_500.0);
            let last = *route.last().expect("route is non-empty");
            // Depth strictly decreases along the route and it ends at the
            // surface (a sink).
            for pair in route.windows(2) {
                prop_assert!(
                    positions[pair[1].index()].depth() < positions[pair[0].index()].depth()
                );
            }
            prop_assert!(
                positions[last.index()].depth() == 0.0,
                "route from n{idx} ended at depth {}",
                positions[last.index()].depth()
            );
            prop_assert!(route.len() <= nodes.len(), "route cannot repeat nodes");
        }
    }

    #[test]
    fn next_hop_makes_strict_depth_progress(
        seed in 0u64..5_000,
        sensors in 4u32..60,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nodes = Deployment::paper_column()
            .generate(&mut rng, sensors, 2, 1_500.0)
            .expect("generates");
        let positions: Vec<Point> = nodes.iter().map(|n| n.position).collect();
        for (idx, p) in positions.iter().enumerate() {
            if let Some(next) = next_hop_uphill(&positions, NodeId::new(idx as u32), 1_500.0) {
                prop_assert!(positions[next.index()].depth() < p.depth());
                prop_assert!(p.distance(positions[next.index()]) <= 1_500.0);
            }
        }
    }
}
