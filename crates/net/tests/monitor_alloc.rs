//! Verifies the drop-forensics layer's allocation promises: the verdict
//! histogram a monitored run updates on every attributed loss is a fixed
//! array, so recording, merging, and reading it must never touch the
//! allocator — and when monitoring is off the world holds no histogram at
//! all (covered by `world::tests::monitoring_does_not_perturb_the_run`),
//! so the off path is a single branch.
//!
//! Uses a counting global allocator wrapping the system one. This lives in
//! an integration test (its own crate) because the library forbids unsafe
//! code and `GlobalAlloc` is an unsafe trait.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use uasn_net::metrics::{DropVerdict, VerdictHistogram};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn verdict_recording_allocates_nothing() {
    let mut hist = VerdictHistogram::new();
    let count = allocations_during(|| {
        for i in 0..1_000u64 {
            let verdict = DropVerdict::ALL[(i % DropVerdict::ALL.len() as u64) as usize];
            hist.record(verdict);
        }
        assert_eq!(hist.total(), 1_000);
    });
    assert_eq!(count, 0, "per-loss verdict recording must not allocate");
}

#[test]
fn verdict_merge_and_reads_allocate_nothing() {
    let mut a = VerdictHistogram::new();
    let mut b = VerdictHistogram::new();
    a.record(DropVerdict::MacDrop);
    b.add(DropVerdict::PerLoss, 41);
    let count = allocations_during(|| {
        for _ in 0..1_000 {
            a.merge(&b);
        }
        let mut seen = 0u64;
        for verdict in DropVerdict::ALL {
            seen += a.count(verdict);
            let _ = verdict.as_str();
        }
        assert_eq!(seen, a.total());
        assert!(!a.is_empty());
    });
    assert_eq!(count, 0, "histogram merge/read must not allocate");
}

#[test]
fn the_counter_actually_counts() {
    // Sanity check on the harness itself: a heap allocation is observed.
    let count = allocations_during(|| {
        let v: Vec<u64> = (0..64).collect();
        assert_eq!(v.len(), 64);
    });
    assert!(count > 0, "collecting into a Vec allocates");
}
