//! Traffic generation.
//!
//! Two modes match the two x-axes of the paper's figures:
//!
//! * [`TrafficPattern::Poisson`] — each sensor generates fixed-size SDUs as
//!   a Poisson process; the aggregate network generation rate is the
//!   "offered load (kbps)" axis of Figures 6, 9a, 10b and 11.
//! * [`TrafficPattern::Batch`] — a fixed number of SDUs arrive over a
//!   window and the run continues until all are delivered; the completion
//!   time is Figure 8's "execution time". The paper's conversion ("20
//!   packets per 300 s ≈ 0.136 kbps offered load") is
//!   [`TrafficPattern::batch_for_load`].
//!
//! Two more drive the multi-hop routing sweeps (they delegate the arrival
//! processes to [`uasn_route::workload`]):
//!
//! * [`TrafficPattern::BurstyOnOff`] — Poisson arrivals gated by an on/off
//!   duty cycle; the same mean offered load as `Poisson` but delivered in
//!   bursts that stress MAC queues and the transport's retry budget.
//! * [`TrafficPattern::Convergecast`] — every sensor injects one reading
//!   per round toward the sinks, the classic many-to-one UASN workload.

use rand::RngCore;

use uasn_sim::rng::exponential;
use uasn_sim::time::{SimDuration, SimTime};

/// What the sources inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Poisson arrivals at every sensor, sized so the whole network
    /// generates `offered_load_kbps` kilobits of new data per second.
    Poisson {
        /// Aggregate generation rate, kbps.
        offered_load_kbps: f64,
    },
    /// Exactly `total_packets` SDUs arrive, Poisson-spread over
    /// `window`, split round-robin over sensors. No further traffic.
    Batch {
        /// Total SDUs.
        total_packets: u32,
        /// Arrival window.
        window: SimDuration,
    },
    /// Poisson arrivals gated by an on/off duty cycle at every sensor:
    /// the network still generates `offered_load_kbps` of new data per
    /// second on average, but compressed into `on_s`-long bursts
    /// separated by `off_s` of silence.
    BurstyOnOff {
        /// Mean aggregate generation rate, kbps.
        offered_load_kbps: f64,
        /// Burst length, seconds.
        on_s: f64,
        /// Silence length, seconds.
        off_s: f64,
    },
    /// Convergecast rounds: every sensor injects exactly one SDU per
    /// `period_s`-long round, jittered uniformly over `[0, jitter_s)`
    /// within the round.
    Convergecast {
        /// Round period, seconds.
        period_s: f64,
        /// Per-arrival uniform jitter inside the round, seconds
        /// (must be `< period_s`; `0` fires all sensors together).
        jitter_s: f64,
    },
}

impl TrafficPattern {
    /// The batch equivalent of an offered load, using the paper's own
    /// conversion: `N = load_kbps × window / packet_bits` (so 0.136 kbps,
    /// 300 s, 2 048 bits → 20 packets).
    ///
    /// # Panics
    ///
    /// Panics if arguments are non-positive.
    pub fn batch_for_load(load_kbps: f64, window: SimDuration, packet_bits: u32) -> Self {
        assert!(
            load_kbps.is_finite() && load_kbps > 0.0,
            "load must be positive, got {load_kbps}"
        );
        assert!(packet_bits > 0, "packet size must be positive");
        let n = (load_kbps * 1_000.0 * window.as_secs_f64() / packet_bits as f64).round();
        TrafficPattern::Batch {
            total_packets: (n as u32).max(1),
            window,
        }
    }

    /// Whether this pattern stops injecting after its window.
    pub fn is_batch(&self) -> bool {
        matches!(self, TrafficPattern::Batch { .. })
    }

    /// The per-sensor `uasn-route` workload stream behind this pattern,
    /// when it is one of the heavy-traffic variants (`None` for
    /// `Poisson` / `Batch`, which the world drives natively — keeping
    /// those arrival streams byte-identical to the pre-routing builds).
    ///
    /// # Panics
    ///
    /// Panics on parameters [`SimConfig::validate`] would reject (zero
    /// rates, `jitter_s >= period_s`, …).
    ///
    /// [`SimConfig::validate`]: crate::config::SimConfig::validate
    pub fn workload(&self, packet_bits: u32, sensors: u32) -> Option<uasn_route::WorkloadStream> {
        use uasn_route::{Workload, WorkloadStream};
        match *self {
            TrafficPattern::Poisson { .. } | TrafficPattern::Batch { .. } => None,
            TrafficPattern::BurstyOnOff {
                offered_load_kbps,
                on_s,
                off_s,
            } => {
                let mean = per_sensor_rate(offered_load_kbps, packet_bits, sensors);
                // The burst rate compensates for the silent fraction so the
                // long-run mean matches the offered load.
                let duty = on_s / (on_s + off_s);
                Some(WorkloadStream::new(Workload::BurstyOnOff {
                    rate_hz: mean / duty,
                    on_s,
                    off_s,
                }))
            }
            TrafficPattern::Convergecast { period_s, jitter_s } => {
                Some(WorkloadStream::new(Workload::ConvergecastRounds {
                    period_s,
                    jitter_s,
                }))
            }
        }
    }
}

/// Per-node Poisson arrival stream of SDU creation times.
///
/// # Examples
///
/// ```
/// use uasn_net::traffic::ArrivalStream;
/// use uasn_sim::rng::SeedFactory;
/// use uasn_sim::time::SimTime;
///
/// let mut rng = SeedFactory::new(1).stream("traffic", 0);
/// // one 2048-bit packet every ~10 s on average
/// let mut stream = ArrivalStream::poisson(0.1);
/// let t1 = stream.next_arrival(&mut rng, SimTime::ZERO);
/// let t2 = stream.next_arrival(&mut rng, t1);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalStream {
    /// Mean arrivals per second.
    rate_per_sec: f64,
}

impl ArrivalStream {
    /// A Poisson stream at `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn poisson(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        ArrivalStream { rate_per_sec }
    }

    /// The stream rate in arrivals per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next arrival instant strictly after `after`.
    pub fn next_arrival<R: RngCore>(&self, rng: &mut R, after: SimTime) -> SimTime {
        let gap = exponential(rng, 1.0 / self.rate_per_sec).max(1e-6);
        after + SimDuration::from_secs_f64(gap)
    }
}

/// Converts an aggregate offered load into the per-sensor packet arrival
/// rate: `load_kbps × 1000 / packet_bits / sensors` packets per second.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn per_sensor_rate(offered_load_kbps: f64, packet_bits: u32, sensors: u32) -> f64 {
    assert!(
        offered_load_kbps.is_finite() && offered_load_kbps > 0.0,
        "offered load must be positive, got {offered_load_kbps}"
    );
    assert!(packet_bits > 0, "packet size must be positive");
    assert!(sensors > 0, "need at least one sensor");
    offered_load_kbps * 1_000.0 / packet_bits as f64 / sensors as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use uasn_sim::rng::SeedFactory;

    #[test]
    fn paper_batch_conversion() {
        // §5: "20 per 300 s, i.e. offer load of approximately 0.136".
        let p = TrafficPattern::batch_for_load(0.136, SimDuration::from_secs(300), 2_048);
        match p {
            TrafficPattern::Batch { total_packets, .. } => assert_eq!(total_packets, 20),
            _ => unreachable!(),
        }
        assert!(p.is_batch());
    }

    #[test]
    fn batch_is_at_least_one_packet() {
        let p = TrafficPattern::batch_for_load(1e-6, SimDuration::from_secs(1), 2_048);
        match p {
            TrafficPattern::Batch { total_packets, .. } => assert_eq!(total_packets, 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn per_sensor_rate_partitions_load() {
        // 0.8 kbps over 60 sensors at 2048 bits:
        // 800/2048/60 ≈ 0.00651 pkt/s each.
        let r = per_sensor_rate(0.8, 2_048, 60);
        assert!((r - 0.8 * 1_000.0 / 2_048.0 / 60.0).abs() < 1e-12);
        // Aggregate recovers the offered load.
        let aggregate_kbps = r * 60.0 * 2_048.0 / 1_000.0;
        assert!((aggregate_kbps - 0.8).abs() < 1e-12);
    }

    #[test]
    fn poisson_stream_mean_rate() {
        let mut rng = SeedFactory::new(3).stream("traffic", 9);
        let stream = ArrivalStream::poisson(2.0);
        let mut t = SimTime::ZERO;
        let n = 10_000;
        for _ in 0..n {
            t = stream.next_arrival(&mut rng, t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - 2.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut rng = SeedFactory::new(4).stream("traffic", 0);
        let stream = ArrivalStream::poisson(1_000.0); // very fast
        let mut t = SimTime::ZERO;
        for _ in 0..1_000 {
            let next = stream.next_arrival(&mut rng, t);
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn legacy_patterns_have_no_workload_stream() {
        let p = TrafficPattern::Poisson {
            offered_load_kbps: 0.5,
        };
        assert!(p.workload(2_048, 60).is_none());
        let b = TrafficPattern::batch_for_load(0.136, SimDuration::from_secs(300), 2_048);
        assert!(b.workload(2_048, 60).is_none());
    }

    #[test]
    fn bursty_workload_preserves_the_mean_rate() {
        let p = TrafficPattern::BurstyOnOff {
            offered_load_kbps: 0.8,
            on_s: 10.0,
            off_s: 30.0,
        };
        let stream = p.workload(2_048, 60).expect("bursty workload");
        let mean = stream.workload().mean_rate_hz();
        let expect = per_sensor_rate(0.8, 2_048, 60);
        assert!(
            (mean - expect).abs() < 1e-12,
            "duty-cycle compensation: {mean} vs {expect}"
        );
    }

    #[test]
    fn convergecast_workload_is_one_per_round() {
        let p = TrafficPattern::Convergecast {
            period_s: 60.0,
            jitter_s: 5.0,
        };
        let stream = p.workload(2_048, 60).expect("convergecast workload");
        assert!((stream.workload().mean_rate_hz() - 1.0 / 60.0).abs() < 1e-12);
        assert!(!p.is_batch());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalStream::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_sensors_panics() {
        let _ = per_sensor_rate(0.5, 2_048, 0);
    }
}
