//! Deployment generation.
//!
//! The paper deploys sensors in a water column with sinks on the surface
//! (Figure 1): *"sensors at greater depths transmit packets to sensors
//! closer to the surface"*. Table 2 says "1000 km³" — which, taken as a
//! uniform box with a 1.5 km range and 60 nodes, is severely disconnected.
//! Reproduction decision (DESIGN.md): the default generator is a
//! **layered column** that realises Figure 1 — depth layers one hop apart,
//! sinks on top, guaranteed uphill connectivity — inside a fixed volume, so
//! that raising the node count raises density (degree, hidden-terminal
//! pairs) the way §5's Figure 7 sweep requires. The literal
//! [`Deployment::UniformBox`] remains available.

use rand::Rng;

use uasn_phy::geometry::{Point, Region};

use crate::error::BuildNetworkError;
use crate::node::{NodeId, NodeInfo, NodeRole};

/// How nodes are placed in the water.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deployment {
    /// Uniformly random positions in a region (paper Table 2 taken
    /// literally). No connectivity guarantee.
    UniformBox {
        /// The deployment region.
        region: Region,
    },
    /// Figure-1-style column: sinks on the surface, sensors stratified into
    /// depth layers spaced one acoustic hop apart, with a repair pass that
    /// guarantees every sensor an in-range shallower neighbour.
    LayeredColumn {
        /// Horizontal extent (square side), metres.
        extent_m: f64,
        /// Number of sensor layers below the surface.
        layers: u32,
        /// Vertical spacing between layers, metres. Must be below the
        /// communication range for connectivity to be repairable.
        layer_spacing_m: f64,
    },
}

impl Deployment {
    /// The deployment the figure experiments use: a 2.5 km × 2.5 km column,
    /// five layers 1.2 km apart (inside the 1.5 km range).
    pub fn paper_column() -> Self {
        Deployment::LayeredColumn {
            extent_m: 2_500.0,
            layers: 5,
            layer_spacing_m: 1_200.0,
        }
    }

    /// The density-sweep variant (Figures 7, 9b, 10a): the column volume is
    /// fixed (2.5 km × 2.5 km × 6 km) while the layer count grows with the
    /// node count. Denser deployments multiply the audible degree and the
    /// hidden-terminal pairs each exchange must coexist with — the
    /// contention squeeze behind the paper's Figure-7 claim that reuse
    /// protocols lose their advantage as density grows (see
    /// `crate::analysis` for the static measurement).
    pub fn paper_column_for(sensors: u32) -> Self {
        let layers = (sensors / 12).clamp(5, 20);
        Deployment::LayeredColumn {
            extent_m: 2_500.0,
            layers,
            layer_spacing_m: 6_000.0 / layers as f64,
        }
    }

    /// The bounding region of this deployment.
    pub fn region(&self) -> Region {
        match *self {
            Deployment::UniformBox { region } => region,
            Deployment::LayeredColumn {
                extent_m,
                layers,
                layer_spacing_m,
            } => Region::new(extent_m, extent_m, (layers as f64 + 0.5) * layer_spacing_m),
        }
    }

    /// Generates `sensors` sensor nodes and `sinks` surface sinks.
    ///
    /// Node ids: sinks occupy `0..sinks`, sensors follow. All nodes are
    /// generated with static mobility; callers overlay mobility models
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetworkError::PlacementFailed`] for impossible
    /// parameters (zero sensors/sinks, layer spacing ≥ communication range
    /// in the layered generator).
    pub fn generate<R: Rng>(
        &self,
        rng: &mut R,
        sensors: u32,
        sinks: u32,
        comm_range_m: f64,
    ) -> Result<Vec<NodeInfo>, BuildNetworkError> {
        if sensors == 0 {
            return Err(BuildNetworkError::PlacementFailed {
                reason: "at least one sensor is required".into(),
            });
        }
        if sinks == 0 {
            return Err(BuildNetworkError::PlacementFailed {
                reason: "at least one sink is required".into(),
            });
        }
        match *self {
            Deployment::UniformBox { region } => Ok(generate_uniform(rng, sensors, sinks, &region)),
            Deployment::LayeredColumn {
                extent_m,
                layers,
                layer_spacing_m,
            } => generate_layered(
                rng,
                sensors,
                sinks,
                extent_m,
                layers,
                layer_spacing_m,
                comm_range_m,
            ),
        }
    }
}

fn generate_uniform<R: Rng>(
    rng: &mut R,
    sensors: u32,
    sinks: u32,
    region: &Region,
) -> Vec<NodeInfo> {
    let mut nodes = Vec::with_capacity((sensors + sinks) as usize);
    for i in 0..sinks {
        let p = Point::surface(
            rng.gen_range(0.0..=region.width()),
            rng.gen_range(0.0..=region.length()),
        );
        nodes.push(NodeInfo::anchored(NodeId::new(i), p, NodeRole::Sink));
    }
    for i in 0..sensors {
        let p = Point::new(
            rng.gen_range(0.0..=region.width()),
            rng.gen_range(0.0..=region.length()),
            rng.gen_range(0.0..=region.depth()),
        );
        nodes.push(NodeInfo::anchored(
            NodeId::new(sinks + i),
            p,
            NodeRole::Sensor,
        ));
    }
    nodes
}

#[allow(clippy::too_many_arguments)]
fn generate_layered<R: Rng>(
    rng: &mut R,
    sensors: u32,
    sinks: u32,
    extent_m: f64,
    layers: u32,
    layer_spacing_m: f64,
    comm_range_m: f64,
) -> Result<Vec<NodeInfo>, BuildNetworkError> {
    if layers == 0 {
        return Err(BuildNetworkError::PlacementFailed {
            reason: "layered column needs at least one layer".into(),
        });
    }
    if layer_spacing_m >= comm_range_m {
        return Err(BuildNetworkError::PlacementFailed {
            reason: format!(
                "layer spacing {layer_spacing_m} m is not below the communication range {comm_range_m} m; uphill links cannot exist"
            ),
        });
    }

    let mut nodes = Vec::with_capacity((sensors + sinks) as usize);
    // Sinks: spread over the surface.
    for i in 0..sinks {
        let p = Point::surface(rng.gen_range(0.0..=extent_m), rng.gen_range(0.0..=extent_m));
        nodes.push(NodeInfo::anchored(NodeId::new(i), p, NodeRole::Sink));
    }
    // Sensors: round-robin layer assignment with ±20% depth jitter.
    for i in 0..sensors {
        let layer = 1 + (i % layers);
        let jitter = rng.gen_range(-0.2..0.2) * layer_spacing_m;
        let depth = (layer as f64 * layer_spacing_m + jitter).max(1.0);
        let p = Point::new(
            rng.gen_range(0.0..=extent_m),
            rng.gen_range(0.0..=extent_m),
            depth,
        );
        nodes.push(NodeInfo::anchored(
            NodeId::new(sinks + i),
            p,
            NodeRole::Sensor,
        ));
    }

    // Repair pass, shallowest sensors first so repaired nodes can serve as
    // anchors for deeper ones.
    let mut order: Vec<usize> = (sinks as usize..nodes.len()).collect();
    order.sort_by(|&a, &b| {
        nodes[a]
            .position
            .depth()
            .partial_cmp(&nodes[b].position.depth())
            .expect("depths are finite")
    });
    for idx in order {
        let me = nodes[idx].position;
        let target_range = 0.95 * comm_range_m;
        // Prefer an anchor whose vertical separation alone leaves horizontal
        // slack; with heavy depth jitter in sparse layers none may exist, in
        // which case take the nearest shallower node and move in 3-D.
        let nearest = |vertical_cap: f64| -> Option<Point> {
            nodes
                .iter()
                .filter(|n| {
                    n.position.depth() < me.depth()
                        && me.depth() - n.position.depth() <= vertical_cap
                })
                .min_by(|a, b| {
                    me.distance(a.position)
                        .partial_cmp(&me.distance(b.position))
                        .expect("distances are finite")
                })
                .map(|n| n.position)
        };
        let (anchor, slide_3d) = match nearest(0.9 * target_range) {
            Some(a) => (a, false),
            None => (
                nearest(f64::INFINITY).ok_or_else(|| BuildNetworkError::PlacementFailed {
                    reason: "sensor has no shallower node to anchor to".into(),
                })?,
                true,
            ),
        };
        if me.distance(anchor) > target_range {
            if slide_3d {
                // Move along the line toward the anchor to 0.9 × range,
                // staying strictly deeper than it.
                let d = me.distance(anchor);
                let keep = (0.9 * target_range) / d;
                let moved = Point::new(
                    anchor.x + (me.x - anchor.x) * keep,
                    anchor.y + (me.y - anchor.y) * keep,
                    (anchor.z + (me.z - anchor.z) * keep).max(anchor.z + 1.0),
                );
                nodes[idx].position = moved;
            } else {
                // Slide horizontally toward the anchor until in range; the
                // anchor was chosen with enough vertical slack.
                let dx = anchor.x - me.x;
                let dy = anchor.y - me.y;
                let horiz = (dx * dx + dy * dy).sqrt();
                let dz = me.z - anchor.z;
                let allowed_horiz = (target_range * target_range - dz * dz).max(0.0).sqrt();
                let scale = if horiz > 0.0 {
                    ((horiz - allowed_horiz) / horiz).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                nodes[idx].position = Point::new(me.x + dx * scale, me.y + dy * scale, me.z);
            }
        }
    }
    Ok(nodes)
}

/// Below this node count the plain O(N²) strandedness scan beats building
/// a spatial index for it.
const STRANDED_GRID_THRESHOLD: usize = 256;

/// Sensors with **no** shallower node within `comm_range_m` — the stranded
/// set that would make depth routing impossible.
///
/// Above [`STRANDED_GRID_THRESHOLD`] nodes the scan runs over a uniform
/// grid with cell edge `comm_range_m`, so any in-range witness is in the
/// 27-cell neighbourhood and each candidate still takes the exact distance
/// check — the result is identical to the brute-force scan for every input.
pub fn stranded_sensors(nodes: &[NodeInfo], comm_range_m: f64) -> Vec<NodeId> {
    let has_witness: Box<dyn Fn(&NodeInfo) -> bool> =
        if nodes.len() >= STRANDED_GRID_THRESHOLD && comm_range_m.is_finite() && comm_range_m > 0.0
        {
            let positions: Vec<Point> = nodes.iter().map(|n| n.position).collect();
            let grid = uasn_phy::grid::SpatialGrid::build(comm_range_m, positions.as_slice());
            Box::new(move |n: &NodeInfo| {
                let mut cand = Vec::new();
                grid.candidates_into(n.position, &mut cand);
                cand.iter().map(|&j| &nodes[j as usize]).any(|m| {
                    m.position.depth() < n.position.depth()
                        && n.position.distance(m.position) <= comm_range_m
                })
            })
        } else {
            Box::new(move |n: &NodeInfo| {
                nodes.iter().any(|m| {
                    m.position.depth() < n.position.depth()
                        && n.position.distance(m.position) <= comm_range_m
                })
            })
        };
    nodes
        .iter()
        .filter(|n| !n.is_sink())
        .filter(|n| !has_witness(n))
        .map(|n| n.id)
        .collect()
}

/// All ordered audible pairs `(hearer, speaker)` within `comm_range_m`
/// (symmetric range model).
pub fn audible_pairs(nodes: &[NodeInfo], comm_range_m: f64) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for a in nodes {
        for b in nodes {
            if a.id != b.id && a.position.distance(b.position) <= comm_range_m {
                pairs.push((a.id, b.id));
            }
        }
    }
    pairs
}

/// Mean number of audible neighbours per node — the density statistic the
/// Figure 7/9b/10a sweeps vary.
pub fn mean_degree(nodes: &[NodeInfo], comm_range_m: f64) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    audible_pairs(nodes, comm_range_m).len() as f64 / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn layered_column_is_always_uphill_connected() {
        for seed in 0..10 {
            let nodes = Deployment::paper_column()
                .generate(&mut rng(seed), 60, 3, 1_500.0)
                .expect("generation succeeds");
            assert_eq!(nodes.len(), 63);
            let stranded = stranded_sensors(&nodes, 1_500.0);
            assert!(stranded.is_empty(), "seed {seed}: stranded {stranded:?}");
        }
    }

    #[test]
    fn layered_column_scales_to_dense_networks() {
        for n in [60, 100, 140, 200] {
            let nodes = Deployment::paper_column()
                .generate(&mut rng(42), n, 3, 1_500.0)
                .expect("generation succeeds");
            assert!(stranded_sensors(&nodes, 1_500.0).is_empty(), "n={n}");
        }
    }

    #[test]
    fn density_grows_with_node_count() {
        let sparse = Deployment::paper_column()
            .generate(&mut rng(1), 60, 3, 1_500.0)
            .unwrap();
        let dense = Deployment::paper_column()
            .generate(&mut rng(1), 140, 3, 1_500.0)
            .unwrap();
        assert!(mean_degree(&dense, 1_500.0) > mean_degree(&sparse, 1_500.0));
    }

    #[test]
    fn sinks_are_first_and_on_surface() {
        let nodes = Deployment::paper_column()
            .generate(&mut rng(5), 20, 4, 1_500.0)
            .unwrap();
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id, NodeId::new(i as u32));
            if i < 4 {
                assert!(n.is_sink());
                assert_eq!(n.position.depth(), 0.0);
            } else {
                assert!(!n.is_sink());
                assert!(n.position.depth() > 0.0);
            }
        }
    }

    #[test]
    fn uniform_box_fills_region() {
        let region = Region::cube(10_000.0);
        let nodes = Deployment::UniformBox { region }
            .generate(&mut rng(9), 200, 2, 1_500.0)
            .unwrap();
        for n in &nodes {
            assert!(region.contains(n.position), "{} outside region", n.position);
        }
        // Table-2-literal box at 60 nodes is expected to be disconnected —
        // documenting the reproduction decision as a test.
        let sparse = Deployment::UniformBox { region }
            .generate(&mut rng(10), 60, 2, 1_500.0)
            .unwrap();
        assert!(!stranded_sensors(&sparse, 1_500.0).is_empty());
    }

    #[test]
    fn zero_sensor_or_sink_rejected() {
        let d = Deployment::paper_column();
        assert!(d.generate(&mut rng(0), 0, 1, 1_500.0).is_err());
        assert!(d.generate(&mut rng(0), 10, 0, 1_500.0).is_err());
    }

    #[test]
    fn layer_spacing_must_be_below_range() {
        let d = Deployment::LayeredColumn {
            extent_m: 2_000.0,
            layers: 3,
            layer_spacing_m: 1_600.0,
        };
        let err = d.generate(&mut rng(0), 10, 1, 1_500.0).unwrap_err();
        assert!(matches!(err, BuildNetworkError::PlacementFailed { .. }));
    }

    #[test]
    fn audible_pairs_are_symmetric() {
        let nodes = Deployment::paper_column()
            .generate(&mut rng(2), 30, 2, 1_500.0)
            .unwrap();
        let pairs = audible_pairs(&nodes, 1_500.0);
        for &(a, b) in &pairs {
            assert!(pairs.contains(&(b, a)), "({a},{b}) missing reverse");
        }
    }

    #[test]
    fn region_covers_layers() {
        let d = Deployment::paper_column();
        let r = d.region();
        assert!(r.depth() >= 5.0 * 1_200.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Deployment::paper_column()
            .generate(&mut rng(77), 40, 2, 1_500.0)
            .unwrap();
        let b = Deployment::paper_column()
            .generate(&mut rng(77), 40, 2, 1_500.0)
            .unwrap();
        assert_eq!(a, b);
    }
}
