//! Simulation configuration (Table 2 and friends).

use uasn_clock::ClockModelConfig;
use uasn_phy::channel::AcousticChannel;
use uasn_phy::energy::PowerProfile;
use uasn_sim::time::{SimDuration, SimTime};

use crate::error::BuildNetworkError;
use crate::topology::Deployment;
use crate::traffic::TrafficPattern;

/// Mobility settings for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Whether nodes drift at all (the paper randomly assigns each node one
    /// of static / horizontal / vertical when enabled).
    pub enabled: bool,
    /// Maximum drift speed, m/s.
    pub max_speed_ms: f64,
    /// How often positions are advanced.
    pub update_interval: SimDuration,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            enabled: false,
            max_speed_ms: 0.5,
            update_interval: SimDuration::from_secs(10),
        }
    }
}

/// Full configuration of one simulation run.
///
/// [`SimConfig::paper_default`] reproduces Table 2; builder-style `with_*`
/// methods override individual fields for the sweeps.
///
/// # Examples
///
/// ```
/// use uasn_net::config::SimConfig;
///
/// let cfg = SimConfig::paper_default()
///     .with_sensors(80)
///     .with_offered_load_kbps(0.8)
///     .with_seed(3);
/// assert_eq!(cfg.sensors, 80);
/// cfg.validate().expect("paper defaults are valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of sensor nodes (Table 2: 60).
    pub sensors: u32,
    /// Number of surface sinks.
    pub sinks: u32,
    /// Node placement strategy.
    pub deployment: Deployment,
    /// The acoustic channel.
    pub channel: AcousticChannel,
    /// Link bitrate, bits/s (Table 2: 12 kbps).
    pub bitrate_bps: f64,
    /// Control packet size, bits (Table 2: 64).
    pub control_bits: u32,
    /// Data packet size, bits (Table 2: 2048, swept 1024–4096).
    pub data_bits: u32,
    /// Traffic injection.
    pub traffic: TrafficPattern,
    /// Observation window (Table 2: 300 s).
    pub sim_time: SimDuration,
    /// Hard cap for batch runs that never complete.
    pub max_time: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Mobility settings.
    pub mobility: MobilityConfig,
    /// Modem power profile.
    pub power: PowerProfile,
    /// Whether nodes re-enqueue received data toward the surface
    /// (multi-hop forwarding per Figure 1).
    pub forwarding: bool,
    /// When `true`, neighbour tables start empty and nodes learn delays
    /// from an in-simulation Hello phase (§4.3) — staggered beacons in the
    /// opening slots — instead of the oracle installation. Two-hop views
    /// are then never oracle-perfect, which notably disarms CS-MAC's
    /// stealing (it requires cross-delay knowledge).
    pub hello_init: bool,
    /// When set, each generated SDU draws its payload uniformly from
    /// `[min, max]` bits instead of the fixed `data_bits` (§4.3: "data
    /// packets are not bound by a fixed data size").
    pub data_bits_range: Option<(u32, u32)>,
    /// When set, the world schedules a periodic sampler that snapshots
    /// per-node queue depth, MAC state, channel occupancy, and the
    /// cumulative metric counters every `sample_interval`, exposing the
    /// series through [`crate::world::RunOutput`]. `None` (the default)
    /// adds no events, so the seed event stream — and therefore every
    /// seeded run — is byte-for-byte unchanged.
    pub sample_interval: Option<SimDuration>,
    /// When `true` (the default), transmissions fan out through the
    /// per-pair [`uasn_phy::cache::LinkBudgetCache`] with acoustic-range
    /// culling; when `false`, every broadcast recomputes each receiver's
    /// link budget from positions — the slow reference path the golden-trace
    /// suite compares against. Both paths produce bit-identical runs.
    pub fastpath: bool,
    /// When `true` (the default), the fast path's link-budget cache carries
    /// a uniform spatial grid (cells sized from the channel's detection
    /// radius, incrementally re-binned on mobility ticks) so each row build
    /// visits only candidate-neighbour cells instead of all N nodes. The
    /// grid only skips receivers the cache's distance cull would provably
    /// reject, so runs are bit-identical with it on or off; the flag exists
    /// for the perf harness and the swarm golden-trace suite, which compare
    /// the two. Ignored (no grid is built) on the reference path or when the
    /// PER model admits no detection radius.
    pub spatial_index: bool,
    /// Per-node clock model. [`ClockModelConfig::ideal`] (the default)
    /// reproduces the paper's perfect-synchronization assumption: no RNG
    /// streams are drawn, no events added, and every seeded run is
    /// byte-for-byte identical to a build without the clock subsystem.
    pub clock: ClockModelConfig,
    /// Guard band appended to every slot (|ts| = ω + τmax + guard) to
    /// absorb clock error at slot boundaries. Zero (the default) is the
    /// paper's slot length.
    pub slot_guard: SimDuration,
    /// When `true`, the run is instrumented for performance observability:
    /// the engine attributes wall time to each event kind's handler, the
    /// world records fan-out/queue-depth distributions and link-cache
    /// counters, and [`crate::world::RunOutput::profile`] carries the
    /// resulting report. `false` (the default) records nothing and
    /// allocates nothing. The instrumentation reads only the wall clock —
    /// never RNG streams or the event queue — so seeded runs are
    /// byte-for-byte identical with it on or off.
    pub profile: bool,
    /// Multi-hop routing + end-to-end transport. `None` (the default)
    /// keeps the legacy single-enqueue pipeline: SDUs get their next hop
    /// from [`crate::routing::next_hop_uphill`] once and relays re-enqueue
    /// under [`SimConfig::forwarding`], with no routing headers, no extra
    /// events, no extra RNG draws — every seeded run is byte-for-byte
    /// identical to a build without the routing subsystem. `Some` routes
    /// every SDU through the configured
    /// [`uasn_route::ForwardPolicy`] with a hop-count TTL, emits the
    /// `route`/`relay`/`e2e-deliver`/`e2e-drop` trace records, and (when
    /// [`uasn_route::RouteConfig::transport`] is set) arms origin-side
    /// retransmission against sink acks.
    pub route: Option<uasn_route::RouteConfig>,
    /// When `true`, the run is instrumented for online observability: the
    /// world attributes a causal [`crate::metrics::DropVerdict`] to every
    /// lost SDU and [`crate::world::RunOutput::verdicts`] carries the
    /// mergeable per-verdict histogram (harnesses additionally attach
    /// streaming invariant monitors to the tracer). `false` (the default)
    /// records nothing and allocates nothing on the hot path. Attribution
    /// only observes drops the simulation already decided — never RNG
    /// streams or the event queue — so seeded runs are byte-for-byte
    /// identical with it on or off.
    pub monitor: bool,
}

impl SimConfig {
    /// Table 2 defaults: 60 sensors + 3 sinks in the layered column,
    /// 12 kbps, 1.5 km range/1.5 km/s (via [`AcousticChannel::paper_default`]),
    /// 64-bit control, 2048-bit data, 300 s, offered load 0.5 kbps.
    pub fn paper_default() -> Self {
        SimConfig {
            sensors: 60,
            sinks: 3,
            deployment: Deployment::paper_column(),
            channel: AcousticChannel::paper_default(),
            bitrate_bps: 12_000.0,
            control_bits: 64,
            data_bits: 2_048,
            traffic: TrafficPattern::Poisson {
                offered_load_kbps: 0.5,
            },
            sim_time: SimDuration::from_secs(300),
            max_time: SimDuration::from_secs(3_000),
            seed: 1,
            mobility: MobilityConfig::default(),
            power: PowerProfile::default(),
            forwarding: true,
            hello_init: false,
            data_bits_range: None,
            sample_interval: None,
            fastpath: true,
            spatial_index: true,
            clock: ClockModelConfig::ideal(),
            slot_guard: SimDuration::ZERO,
            route: None,
            profile: false,
            monitor: false,
        }
    }

    /// Sets the sensor count.
    pub fn with_sensors(mut self, sensors: u32) -> Self {
        self.sensors = sensors;
        self
    }

    /// Sets the Poisson offered load (kbps network-wide).
    pub fn with_offered_load_kbps(mut self, load: f64) -> Self {
        self.traffic = TrafficPattern::Poisson {
            offered_load_kbps: load,
        };
        self
    }

    /// Switches to batch traffic equivalent to `load` kbps (Figure 8): the
    /// packet count follows the paper's conversion over the full
    /// observation window, but the arrivals burst into the first ~20 s so
    /// the completion time measures how fast the protocol drains the work,
    /// not the arrival process.
    pub fn with_batch_load_kbps(mut self, load: f64) -> Self {
        let TrafficPattern::Batch { total_packets, .. } =
            TrafficPattern::batch_for_load(load, self.sim_time, self.data_bits)
        else {
            unreachable!("batch_for_load builds a batch");
        };
        self.traffic = TrafficPattern::Batch {
            total_packets,
            window: SimDuration::from_secs(20).min(self.sim_time),
        };
        self
    }

    /// Sets the data packet size in bits.
    pub fn with_data_bits(mut self, bits: u32) -> Self {
        self.data_bits = bits;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the paper's random per-node mobility at up to
    /// `max_speed_ms`.
    pub fn with_mobility(mut self, max_speed_ms: f64) -> Self {
        self.mobility = MobilityConfig {
            enabled: true,
            max_speed_ms,
            ..self.mobility
        };
        self
    }

    /// Sets the observation window.
    pub fn with_sim_time(mut self, t: SimDuration) -> Self {
        self.sim_time = t;
        self
    }

    /// Replaces the oracle neighbour installation with an in-simulation
    /// Hello phase (§4.3).
    pub fn with_hello_init(mut self) -> Self {
        self.hello_init = true;
        self
    }

    /// Draws each SDU's size uniformly from `[min, max]` bits.
    pub fn with_data_bits_range(mut self, min: u32, max: u32) -> Self {
        self.data_bits_range = Some((min, max));
        self
    }

    /// Enables the periodic time-series sampler at `interval`.
    pub fn with_sample_interval(mut self, interval: SimDuration) -> Self {
        self.sample_interval = Some(interval);
        self
    }

    /// Enables (or disables) performance-observability instrumentation for
    /// the run; see [`SimConfig::profile`].
    pub fn with_profiling(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Enables (or disables) online observability — per-SDU drop
    /// forensics — for the run; see [`SimConfig::monitor`].
    pub fn with_monitoring(mut self, monitor: bool) -> Self {
        self.monitor = monitor;
        self
    }

    /// Selects between the cached fan-out (`true`, the default) and the
    /// recompute-everything reference path (`false`). Runs are bit-identical
    /// either way; the flag exists for the perf harness and the golden-trace
    /// regression suite.
    pub fn with_fastpath(mut self, fastpath: bool) -> Self {
        self.fastpath = fastpath;
        self
    }

    /// Enables (or disables) the fast path's spatial grid index; see
    /// [`SimConfig::spatial_index`]. Runs are bit-identical either way.
    pub fn with_spatial_index(mut self, spatial_index: bool) -> Self {
        self.spatial_index = spatial_index;
        self
    }

    /// Installs a full per-node clock model (offset, skew, jitter,
    /// measurement noise, optional resync).
    pub fn with_clock_model(mut self, clock: ClockModelConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Shorthand for the sensitivity sweeps: the representative
    /// [`ClockModelConfig::drifting`] model at `skew_ppm`.
    pub fn with_clock_drift(mut self, skew_ppm: f64) -> Self {
        self.clock = ClockModelConfig::drifting(skew_ppm);
        self
    }

    /// Appends `guard` to every slot (|ts| = ω + τmax + guard).
    pub fn with_slot_guard(mut self, guard: SimDuration) -> Self {
        self.slot_guard = guard;
        self
    }

    /// Installs a full routing + transport configuration; see
    /// [`SimConfig::route`].
    pub fn with_route(mut self, route: uasn_route::RouteConfig) -> Self {
        self.route = Some(route);
        self
    }

    /// Shorthand: greedy depth routing at the default TTL, no transport —
    /// the routed twin of the legacy forwarding pipeline.
    pub fn with_routing(self) -> Self {
        self.with_route(uasn_route::RouteConfig::greedy())
    }

    /// Shorthand: greedy depth routing with the default end-to-end
    /// transport (sink acks, retry budget).
    pub fn with_reliable_route(self) -> Self {
        self.with_route(uasn_route::RouteConfig::reliable())
    }

    /// Switches to bursty on/off traffic at `load` kbps mean offered load;
    /// see [`crate::traffic::TrafficPattern::BurstyOnOff`].
    pub fn with_bursty_load_kbps(mut self, load: f64, on_s: f64, off_s: f64) -> Self {
        self.traffic = TrafficPattern::BurstyOnOff {
            offered_load_kbps: load,
            on_s,
            off_s,
        };
        self
    }

    /// Switches to convergecast rounds: one SDU per sensor per `period_s`,
    /// jittered over `[0, jitter_s)`; see
    /// [`crate::traffic::TrafficPattern::Convergecast`].
    pub fn with_convergecast(mut self, period_s: f64, jitter_s: f64) -> Self {
        self.traffic = TrafficPattern::Convergecast { period_s, jitter_s };
        self
    }

    /// The worst-case per-node |local − global| clock error this
    /// configuration can produce over its own observation window. Zero for
    /// the ideal model.
    pub fn clock_error_bound(&self) -> SimDuration {
        self.clock.worst_case_error(self.sim_time)
    }

    /// The simulation horizon as an instant.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.sim_time
    }

    /// Total node count.
    pub fn total_nodes(&self) -> u32 {
        self.sensors + self.sinks
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetworkError::InvalidConfig`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), BuildNetworkError> {
        fn bad(field: &'static str, reason: impl Into<String>) -> BuildNetworkError {
            BuildNetworkError::InvalidConfig {
                field,
                reason: reason.into(),
            }
        }
        if self.sensors == 0 {
            return Err(bad("sensors", "must be at least 1"));
        }
        if self.sinks == 0 {
            return Err(bad("sinks", "must be at least 1"));
        }
        if !(self.bitrate_bps.is_finite() && self.bitrate_bps > 0.0) {
            return Err(bad("bitrate_bps", "must be finite and positive"));
        }
        if self.control_bits == 0 {
            return Err(bad("control_bits", "must be positive"));
        }
        if self.data_bits == 0 {
            return Err(bad("data_bits", "must be positive"));
        }
        if self.data_bits < self.control_bits {
            return Err(bad(
                "data_bits",
                "data packets must be at least control-packet sized",
            ));
        }
        if self.sim_time.is_zero() {
            return Err(bad("sim_time", "must be positive"));
        }
        if self.max_time < self.sim_time {
            return Err(bad("max_time", "must be at least sim_time"));
        }
        match self.traffic {
            TrafficPattern::Poisson { offered_load_kbps } => {
                if !(offered_load_kbps.is_finite() && offered_load_kbps > 0.0) {
                    return Err(bad("traffic", "offered load must be finite and positive"));
                }
            }
            TrafficPattern::Batch {
                total_packets,
                window,
            } => {
                if total_packets == 0 {
                    return Err(bad("traffic", "batch must contain at least one packet"));
                }
                if window > self.max_time {
                    return Err(bad("traffic", "batch window exceeds max_time"));
                }
            }
            TrafficPattern::BurstyOnOff {
                offered_load_kbps,
                on_s,
                off_s,
            } => {
                if !(offered_load_kbps.is_finite() && offered_load_kbps > 0.0) {
                    return Err(bad("traffic", "offered load must be finite and positive"));
                }
                if !(on_s.is_finite() && on_s > 0.0) {
                    return Err(bad("traffic", "burst on-time must be finite and positive"));
                }
                if !(off_s.is_finite() && off_s > 0.0) {
                    return Err(bad("traffic", "burst off-time must be finite and positive"));
                }
            }
            TrafficPattern::Convergecast { period_s, jitter_s } => {
                if !(period_s.is_finite() && period_s > 0.0) {
                    return Err(bad("traffic", "round period must be finite and positive"));
                }
                if !(jitter_s.is_finite() && jitter_s >= 0.0 && jitter_s < period_s) {
                    return Err(bad("traffic", "round jitter must lie in [0, period)"));
                }
            }
        }
        if let Some(route) = &self.route {
            route
                .validate()
                .map_err(|(field, reason)| bad(field, reason))?;
        }
        if let Some((min, max)) = self.data_bits_range {
            if min == 0 || max < min {
                return Err(bad("data_bits_range", "need 0 < min <= max"));
            }
            if min < self.control_bits {
                return Err(bad(
                    "data_bits_range",
                    "data packets must be at least control-packet sized",
                ));
            }
        }
        if let Some(interval) = self.sample_interval {
            if interval.is_zero() {
                return Err(bad("sample_interval", "must be positive when set"));
            }
        }
        if self.mobility.enabled {
            if !(self.mobility.max_speed_ms.is_finite() && self.mobility.max_speed_ms > 0.0) {
                return Err(bad("mobility", "max speed must be finite and positive"));
            }
            if self.mobility.update_interval.is_zero() {
                return Err(bad("mobility", "update interval must be positive"));
            }
        }
        self.clock
            .validate()
            .map_err(|reason| bad("clock", reason))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_table2() {
        let cfg = SimConfig::paper_default();
        cfg.validate().expect("valid");
        assert_eq!(cfg.sensors, 60);
        assert_eq!(cfg.bitrate_bps, 12_000.0);
        assert_eq!(cfg.control_bits, 64);
        assert_eq!(cfg.data_bits, 2_048);
        assert_eq!(cfg.sim_time, SimDuration::from_secs(300));
        assert_eq!(cfg.channel.max_range_m(), 1_500.0);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SimConfig::paper_default()
            .with_sensors(140)
            .with_offered_load_kbps(0.8)
            .with_data_bits(4_096)
            .with_seed(9)
            .with_mobility(0.5);
        assert_eq!(cfg.sensors, 140);
        assert_eq!(cfg.data_bits, 4_096);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.mobility.enabled);
        match cfg.traffic {
            TrafficPattern::Poisson { offered_load_kbps } => {
                assert_eq!(offered_load_kbps, 0.8)
            }
            _ => unreachable!(),
        }
        cfg.validate().expect("valid");
    }

    #[test]
    fn batch_builder_uses_paper_conversion() {
        let cfg = SimConfig::paper_default().with_batch_load_kbps(0.136);
        match cfg.traffic {
            TrafficPattern::Batch { total_packets, .. } => assert_eq!(total_packets, 20),
            _ => unreachable!(),
        }
        cfg.validate().expect("valid");
    }

    #[test]
    fn invalid_fields_are_named() {
        let assert_field = |cfg: SimConfig, field: &str| {
            match cfg.validate() {
                Err(BuildNetworkError::InvalidConfig { field: f, .. }) => {
                    assert_eq!(f, field)
                }
                other => panic!("expected invalid `{field}`, got {other:?}"),
            };
        };
        assert_field(SimConfig::paper_default().with_sensors(0), "sensors");
        assert_field(
            SimConfig {
                sinks: 0,
                ..SimConfig::paper_default()
            },
            "sinks",
        );
        assert_field(
            SimConfig {
                bitrate_bps: 0.0,
                ..SimConfig::paper_default()
            },
            "bitrate_bps",
        );
        assert_field(SimConfig::paper_default().with_data_bits(0), "data_bits");
        assert_field(
            SimConfig::paper_default().with_offered_load_kbps(-1.0),
            "traffic",
        );
        assert_field(
            SimConfig {
                max_time: SimDuration::from_secs(1),
                ..SimConfig::paper_default()
            },
            "max_time",
        );
        assert_field(SimConfig::paper_default().with_data_bits(32), "data_bits");
    }

    #[test]
    fn clock_defaults_are_ideal_and_invalid_models_are_named() {
        let cfg = SimConfig::paper_default();
        assert!(cfg.clock.is_ideal());
        assert!(cfg.slot_guard.is_zero());
        assert!(cfg.clock_error_bound().is_zero());

        let drifting = SimConfig::paper_default()
            .with_clock_drift(100.0)
            .with_slot_guard(SimDuration::from_millis(20));
        drifting.validate().expect("valid");
        assert!(!drifting.clock.is_ideal());
        assert!(!drifting.clock_error_bound().is_zero());

        let mut bad_clock = SimConfig::paper_default().with_clock_drift(50.0);
        bad_clock.clock.skew_ppm = f64::NAN;
        match bad_clock.validate() {
            Err(BuildNetworkError::InvalidConfig { field, .. }) => assert_eq!(field, "clock"),
            other => panic!("expected invalid clock, got {other:?}"),
        }
    }

    #[test]
    fn route_defaults_off_and_builders_install_it() {
        let cfg = SimConfig::paper_default();
        assert!(cfg.route.is_none(), "routing must default off");

        let routed = SimConfig::paper_default().with_routing();
        let route = routed.route.expect("routing installed");
        assert_eq!(route.policy, uasn_route::ForwardPolicy::Greedy);
        assert_eq!(route.ttl, uasn_route::DEFAULT_TTL);
        assert!(route.transport.is_none());
        routed.validate().expect("valid");

        let reliable = SimConfig::paper_default().with_reliable_route();
        assert!(reliable.route.expect("installed").transport.is_some());

        let mut bad = SimConfig::paper_default()
            .with_routing()
            .route
            .expect("installed");
        bad.ttl = 0;
        let cfg = SimConfig::paper_default().with_route(bad);
        match cfg.validate() {
            Err(BuildNetworkError::InvalidConfig { field, .. }) => {
                assert_eq!(field, "route.ttl")
            }
            other => panic!("expected invalid route.ttl, got {other:?}"),
        }
    }

    #[test]
    fn heavy_traffic_patterns_validate() {
        let bursty = SimConfig::paper_default().with_bursty_load_kbps(0.8, 10.0, 30.0);
        bursty.validate().expect("valid bursty");
        let cc = SimConfig::paper_default().with_convergecast(60.0, 5.0);
        cc.validate().expect("valid convergecast");

        let assert_traffic_invalid = |cfg: SimConfig| match cfg.validate() {
            Err(BuildNetworkError::InvalidConfig { field, .. }) => assert_eq!(field, "traffic"),
            other => panic!("expected invalid traffic, got {other:?}"),
        };
        assert_traffic_invalid(SimConfig::paper_default().with_bursty_load_kbps(0.0, 10.0, 30.0));
        assert_traffic_invalid(SimConfig::paper_default().with_bursty_load_kbps(0.8, 0.0, 30.0));
        assert_traffic_invalid(SimConfig::paper_default().with_bursty_load_kbps(0.8, 10.0, -1.0));
        assert_traffic_invalid(SimConfig::paper_default().with_convergecast(0.0, 0.0));
        assert_traffic_invalid(SimConfig::paper_default().with_convergecast(60.0, 60.0));
    }

    #[test]
    fn horizon_and_totals() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.horizon(), SimTime::from_secs(300));
        assert_eq!(cfg.total_nodes(), 63);
    }
}
