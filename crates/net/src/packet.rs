//! Frames and service data units.
//!
//! A [`Frame`] is what a modem puts on the water: one of the paper's packet
//! kinds (Table 1 — RTS, CTS, Data, Ack, EXR, EXC, EXData, EXAck, plus the
//! Hello/maintenance beacon and ROPA's RTA), carrying the fields the
//! protocols negotiate with: the sending timestamp (every packet — §4.3),
//! the random priority `rp` (RTS), the pair propagation delay τ announced in
//! negotiation packets, and the announced data duration the receiver needs
//! to schedule the Ack slot (Eq 5).
//!
//! An [`Sdu`] is the unit the traffic generator hands the MAC: "this many
//! data bits for that next hop".

use std::fmt;

use uasn_sim::time::{SimDuration, SimTime};

use crate::node::NodeId;

/// The paper's packet kinds (Table 1) plus the maintenance beacon and
/// ROPA's appending request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Request to send, at a slot boundary.
    Rts,
    /// Clear to send, at a slot boundary.
    Cts,
    /// Negotiated data, at a slot boundary.
    Data,
    /// Acknowledgement, at a slot boundary (Eq 5).
    Ack,
    /// Extra RTS — EW-MAC's mid-slot negotiation request (EXR).
    ExRts,
    /// Extra CTS — EW-MAC's mid-slot grant (EXC).
    ExCts,
    /// Extra data riding a waiting window (EXData).
    ExData,
    /// Acknowledgement of extra data (EXAck).
    ExAck,
    /// Hello / neighbour-maintenance beacon (initialisation §4.3, and the
    /// periodic two-hop refresh ROPA and CS-MAC pay for).
    Beacon,
    /// ROPA's reverse-appending request sent during a sender's wait window.
    Rta,
}

impl FrameKind {
    /// Whether this kind is a control packet (everything except data).
    pub fn is_control(self) -> bool {
        !matches!(self, FrameKind::Data | FrameKind::ExData)
    }

    /// Whether this kind carries payload data.
    pub fn is_data(self) -> bool {
        matches!(self, FrameKind::Data | FrameKind::ExData)
    }

    /// Whether this kind belongs to EW-MAC's extra-communication exchange.
    pub fn is_extra(self) -> bool {
        matches!(
            self,
            FrameKind::ExRts | FrameKind::ExCts | FrameKind::ExData | FrameKind::ExAck
        )
    }

    /// The kind's stable short label used in display output and trace
    /// fields; [`FrameKind::from_label`] inverts it.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Rts => "RTS",
            FrameKind::Cts => "CTS",
            FrameKind::Data => "Data",
            FrameKind::Ack => "Ack",
            FrameKind::ExRts => "EXR",
            FrameKind::ExCts => "EXC",
            FrameKind::ExData => "EXData",
            FrameKind::ExAck => "EXAck",
            FrameKind::Beacon => "Beacon",
            FrameKind::Rta => "RTA",
        }
    }

    /// Parses a label produced by [`FrameKind::label`] back into the kind.
    pub fn from_label(label: &str) -> Option<FrameKind> {
        Some(match label {
            "RTS" => FrameKind::Rts,
            "CTS" => FrameKind::Cts,
            "Data" => FrameKind::Data,
            "Ack" => FrameKind::Ack,
            "EXR" => FrameKind::ExRts,
            "EXC" => FrameKind::ExCts,
            "EXData" => FrameKind::ExData,
            "EXAck" => FrameKind::ExAck,
            "Beacon" => FrameKind::Beacon,
            "RTA" => FrameKind::Rta,
            _ => return None,
        })
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A unit of application data for the MAC to deliver one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sdu {
    /// Unique id across the run (assigned by the traffic generator).
    pub id: u64,
    /// The node that originally generated the data.
    pub origin: NodeId,
    /// The next-hop destination for this MAC exchange.
    pub next_hop: NodeId,
    /// Payload size in bits.
    pub bits: u32,
    /// Generation (or forwarding-enqueue) time.
    pub created: SimTime,
    /// Routing header: the transport attempt (copy number) this SDU
    /// instance belongs to. 0 for first injections and all single-hop
    /// traffic; each transport retry stamps a fresh copy number so
    /// per-copy hop accounting never conflates a stale in-flight frame
    /// with its retransmission.
    pub attempt: u32,
}

/// One over-the-water frame.
///
/// Constructed by MAC protocols through [`Frame::control`] /
/// [`Frame::data`]; the simulator stamps [`timestamp`](Frame::timestamp)
/// with the actual transmit start (the paper appends the sending timestamp
/// to every packet).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Packet kind.
    pub kind: FrameKind,
    /// Transmitting node.
    pub src: NodeId,
    /// Addressed node (every kind here is unicast-addressed; overhearers
    /// still decode it).
    pub dst: NodeId,
    /// Frame length in bits (control frames share one size — §3.1).
    pub bits: u32,
    /// Transmit start time, stamped by the simulator at transmission.
    pub timestamp: SimTime,
    /// Random priority value carried by RTS frames (§3.1).
    pub rp: u32,
    /// Propagation delay between the negotiating pair, announced in
    /// CTS/EXC frames so overhearers can compute waiting windows (§4.2).
    pub pair_delay: Option<SimDuration>,
    /// Announced duration of the upcoming data transmission (TD in Eq 5),
    /// carried by RTS/CTS so neighbours can compute the Ack slot.
    pub data_duration: Option<SimDuration>,
    /// The SDU carried by a data frame.
    pub sdu: Option<Sdu>,
    /// Whether this data frame is a retransmission (overhead accounting).
    pub retx: bool,
    /// One-hop delay entries piggybacked on this frame (§5.3: ROPA and
    /// CS-MAC "control packets include the extra … neighbor information").
    /// Receivers with two-hop scope install them as the sender's table.
    pub announced: Vec<(NodeId, SimDuration)>,
    /// Further SDUs aggregated into this data frame beyond [`Frame::sdu`]
    /// (§2: "data should be collected and then transmitted when the amount
    /// of data is sufficient"; §4.3: packets are "not bound by a fixed
    /// data size"). Empty for unaggregated traffic.
    pub bundle: Vec<Sdu>,
}

impl Frame {
    /// Builds a control frame of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a data kind or `bits` is zero.
    pub fn control(kind: FrameKind, src: NodeId, dst: NodeId, bits: u32) -> Self {
        assert!(kind.is_control(), "use Frame::data for data kinds");
        assert!(bits > 0, "control frame must have positive size");
        Frame {
            kind,
            src,
            dst,
            bits,
            timestamp: SimTime::ZERO,
            rp: 0,
            pair_delay: None,
            data_duration: None,
            sdu: None,
            retx: false,
            announced: Vec::new(),
            bundle: Vec::new(),
        }
    }

    /// Builds a data frame carrying `sdu`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a data kind.
    pub fn data(kind: FrameKind, src: NodeId, sdu: Sdu) -> Self {
        assert!(kind.is_data(), "use Frame::control for control kinds");
        Frame {
            kind,
            src,
            dst: sdu.next_hop,
            bits: sdu.bits,
            timestamp: SimTime::ZERO,
            rp: 0,
            pair_delay: None,
            data_duration: None,
            sdu: Some(sdu),
            retx: false,
            announced: Vec::new(),
            bundle: Vec::new(),
        }
    }

    /// Sets the RTS priority value.
    pub fn with_rp(mut self, rp: u32) -> Self {
        self.rp = rp;
        self
    }

    /// Announces the negotiating-pair propagation delay.
    pub fn with_pair_delay(mut self, tau: SimDuration) -> Self {
        self.pair_delay = Some(tau);
        self
    }

    /// Announces the upcoming data duration (TD).
    pub fn with_data_duration(mut self, td: SimDuration) -> Self {
        self.data_duration = Some(td);
        self
    }

    /// Marks the frame as a retransmission.
    pub fn as_retransmission(mut self) -> Self {
        self.retx = true;
        self
    }

    /// Piggybacks one-hop delay entries on the frame.
    pub fn with_announced(mut self, entries: Vec<(NodeId, SimDuration)>) -> Self {
        self.announced = entries;
        self
    }

    /// Aggregates further SDUs into this data frame; the frame length grows
    /// by their payloads.
    ///
    /// # Panics
    ///
    /// Panics on a non-data frame or if any bundled SDU has a different
    /// next hop than the primary one.
    pub fn with_bundle(mut self, extra: Vec<Sdu>) -> Self {
        assert!(self.kind.is_data(), "only data frames carry bundles");
        for sdu in &extra {
            assert_eq!(
                sdu.next_hop, self.dst,
                "bundled SDUs must share the frame's next hop"
            );
            self.bits += sdu.bits;
        }
        self.bundle = extra;
        self
    }

    /// Every SDU riding this frame (primary first, then the bundle).
    pub fn sdus(&self) -> impl Iterator<Item = &Sdu> + '_ {
        self.sdu.iter().chain(self.bundle.iter())
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}->{} {}b @{}]",
            self.kind, self.src, self.dst, self.bits, self.timestamp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdu() -> Sdu {
        Sdu {
            id: 1,
            origin: NodeId::new(5),
            next_hop: NodeId::new(2),
            bits: 2_048,
            created: SimTime::from_secs(1),
            attempt: 0,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(FrameKind::Rts.is_control());
        assert!(FrameKind::Beacon.is_control());
        assert!(FrameKind::Rta.is_control());
        assert!(!FrameKind::Data.is_control());
        assert!(FrameKind::Data.is_data());
        assert!(FrameKind::ExData.is_data());
        assert!(FrameKind::ExRts.is_extra());
        assert!(FrameKind::ExAck.is_extra());
        assert!(!FrameKind::Rts.is_extra());
    }

    #[test]
    fn control_frame_builder() {
        let f = Frame::control(FrameKind::Rts, NodeId::new(1), NodeId::new(2), 64).with_rp(77);
        assert_eq!(f.kind, FrameKind::Rts);
        assert_eq!(f.bits, 64);
        assert_eq!(f.rp, 77);
        assert_eq!(f.sdu, None);
        assert!(!f.retx);
    }

    #[test]
    fn data_frame_builder_takes_size_from_sdu() {
        let f = Frame::data(FrameKind::Data, NodeId::new(5), sdu());
        assert_eq!(f.bits, 2_048);
        assert_eq!(f.dst, NodeId::new(2));
        assert_eq!(f.sdu.unwrap().origin, NodeId::new(5));
    }

    #[test]
    fn builders_set_negotiation_fields() {
        let f = Frame::control(FrameKind::Cts, NodeId::new(2), NodeId::new(1), 64)
            .with_pair_delay(SimDuration::from_millis(400))
            .with_data_duration(SimDuration::from_millis(171));
        assert_eq!(f.pair_delay, Some(SimDuration::from_millis(400)));
        assert_eq!(f.data_duration, Some(SimDuration::from_millis(171)));
    }

    #[test]
    fn retransmission_flag() {
        let f = Frame::data(FrameKind::Data, NodeId::new(5), sdu()).as_retransmission();
        assert!(f.retx);
    }

    #[test]
    #[should_panic(expected = "use Frame::data")]
    fn control_builder_rejects_data_kind() {
        let _ = Frame::control(FrameKind::Data, NodeId::new(0), NodeId::new(1), 64);
    }

    #[test]
    #[should_panic(expected = "use Frame::control")]
    fn data_builder_rejects_control_kind() {
        let mut s = sdu();
        s.bits = 64;
        // Deliberately wrong kind:
        let _ = Frame {
            kind: FrameKind::Rts,
            ..Frame::data(FrameKind::Rts, NodeId::new(0), s)
        };
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Data,
            FrameKind::Ack,
            FrameKind::ExRts,
            FrameKind::ExCts,
            FrameKind::ExData,
            FrameKind::ExAck,
            FrameKind::Beacon,
            FrameKind::Rta,
        ] {
            assert_eq!(FrameKind::from_label(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(FrameKind::from_label("bogus"), None);
    }

    #[test]
    fn display_is_informative() {
        let f = Frame::control(FrameKind::Rts, NodeId::new(1), NodeId::new(2), 64);
        let s = f.to_string();
        assert!(
            s.contains("RTS") && s.contains("n1") && s.contains("n2"),
            "{s}"
        );
    }
}
