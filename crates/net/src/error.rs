//! Error types for network construction and configuration.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a simulation configuration or building a
/// network from it.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildNetworkError {
    /// A configuration field failed validation.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// The generated topology leaves some sensor with no route toward the
    /// surface.
    Disconnected {
        /// How many sensors cannot reach a shallower neighbour.
        stranded: usize,
    },
    /// Topology generation could not place the requested nodes.
    PlacementFailed {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetworkError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field `{field}`: {reason}")
            }
            BuildNetworkError::Disconnected { stranded } => write!(
                f,
                "topology is disconnected: {stranded} sensor(s) have no shallower neighbour in range"
            ),
            BuildNetworkError::PlacementFailed { reason } => {
                write!(f, "node placement failed: {reason}")
            }
        }
    }
}

impl Error for BuildNetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildNetworkError::InvalidConfig {
            field: "offered_load_kbps",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("offered_load_kbps"));

        let e = BuildNetworkError::Disconnected { stranded: 3 };
        assert!(e.to_string().contains("3 sensor"));

        let e = BuildNetworkError::PlacementFailed {
            reason: "region too small".into(),
        };
        assert!(e.to_string().contains("region too small"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(BuildNetworkError::Disconnected { stranded: 1 });
    }
}
