//! Neighbour propagation-delay tables.
//!
//! §4.3: every packet carries its sending timestamp; a receiver computes the
//! propagation delay as `arrival − timestamp` and keeps a per-neighbour
//! entry, refreshed on every reception. EW-MAC maintains **one-hop** tables
//! only; ROPA and CS-MAC additionally maintain **two-hop** tables (their
//! published designs), which the paper charges against their overhead and
//! energy. The bit-size constants here drive that accounting.

use std::collections::BTreeMap;

use uasn_sim::time::{SimDuration, SimTime};

use crate::node::NodeId;

/// Bits needed to store one neighbour entry (id + delay) in memory; used
/// for storage-side maintenance accounting.
pub const ENTRY_BITS: u64 = 32;

/// Bits charged per entry when a table is *announced* over the channel.
/// Announcements are delta-compressed relative to the previous broadcast,
/// so the on-air cost per entry is below the storage cost.
pub const ANNOUNCE_BITS_PER_ENTRY: u64 = 8;

/// One neighbour's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// Last measured propagation delay to/from the neighbour.
    pub delay: SimDuration,
    /// When the measurement was taken.
    pub measured_at: SimTime,
}

impl NeighborEntry {
    /// Age of the measurement at `now` (zero if `now` reads earlier than
    /// the measurement — possible when timestamps come from a stepped-back
    /// local clock).
    pub fn age(&self, now: SimTime) -> SimDuration {
        SimDuration::from_micros(now.as_micros().saturating_sub(self.measured_at.as_micros()))
    }
}

/// One-hop propagation-delay table (what EW-MAC maintains).
///
/// Deterministically ordered (`BTreeMap`) so iteration order can never
/// perturb reproducibility.
///
/// # Examples
///
/// ```
/// use uasn_net::neighbor::OneHopTable;
/// use uasn_net::node::NodeId;
/// use uasn_sim::time::{SimDuration, SimTime};
///
/// let mut table = OneHopTable::new();
/// table.observe(NodeId::new(3), SimDuration::from_millis(400), SimTime::ZERO);
/// assert_eq!(
///     table.delay_of(NodeId::new(3)),
///     Some(SimDuration::from_millis(400))
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OneHopTable {
    entries: BTreeMap<NodeId, NeighborEntry>,
}

impl OneHopTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OneHopTable::default()
    }

    /// Records (or refreshes) a delay measurement for `neighbor`.
    pub fn observe(&mut self, neighbor: NodeId, delay: SimDuration, now: SimTime) {
        self.entries.insert(
            neighbor,
            NeighborEntry {
                delay,
                measured_at: now,
            },
        );
    }

    /// The last measured delay to `neighbor`, if any.
    pub fn delay_of(&self, neighbor: NodeId) -> Option<SimDuration> {
        self.entries.get(&neighbor).map(|e| e.delay)
    }

    /// The full entry for `neighbor`, if any.
    pub fn entry(&self, neighbor: NodeId) -> Option<&NeighborEntry> {
        self.entries.get(&neighbor)
    }

    /// All known neighbours, ascending by id.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }

    /// Iterates `(neighbor, entry)` pairs, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NeighborEntry)> + '_ {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes entries older than `max_age` at time `now`; returns how many
    /// were dropped. Models table expiry under mobility.
    pub fn expire(&mut self, now: SimTime, max_age: SimDuration) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.duration_since(e.measured_at) <= max_age);
        before - self.entries.len()
    }

    /// Bits needed to announce this table (maintenance accounting).
    pub fn announcement_bits(&self) -> u64 {
        self.entries.len() as u64 * ENTRY_BITS
    }

    /// The largest known delay, if any — a node's local estimate of its
    /// neighbourhood τmax.
    pub fn max_delay(&self) -> Option<SimDuration> {
        self.entries.values().map(|e| e.delay).max()
    }

    /// Age of the stored measurement for `neighbor` at `now`, if any.
    /// Under mobility this is what bounds how far the stored delay can
    /// have drifted from the true one (see `uasn-clock`'s
    /// `DelayEstimator::staleness_bound`).
    pub fn age_of(&self, neighbor: NodeId, now: SimTime) -> Option<SimDuration> {
        self.entries.get(&neighbor).map(|e| e.age(now))
    }

    /// The oldest measurement age in the table at `now` — the staleness a
    /// node must budget for when it trusts any entry without knowing which
    /// one a future exchange will use.
    pub fn oldest_age(&self, now: SimTime) -> Option<SimDuration> {
        self.entries.values().map(|e| e.age(now)).max()
    }
}

/// Two-hop table: for each one-hop neighbour, a snapshot of *their* one-hop
/// delays (what ROPA and CS-MAC maintain and periodically re-broadcast).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TwoHopTable {
    snapshots: BTreeMap<NodeId, OneHopTable>,
}

impl TwoHopTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TwoHopTable::default()
    }

    /// Installs `neighbor`'s announced one-hop table.
    pub fn install(&mut self, neighbor: NodeId, table: OneHopTable) {
        self.snapshots.insert(neighbor, table);
    }

    /// The delay between `neighbor` and one of *its* neighbours `other`, if
    /// known.
    pub fn delay_between(&self, neighbor: NodeId, other: NodeId) -> Option<SimDuration> {
        self.snapshots.get(&neighbor)?.delay_of(other)
    }

    /// The snapshot announced by `neighbor`, if any.
    pub fn snapshot(&self, neighbor: NodeId) -> Option<&OneHopTable> {
        self.snapshots.get(&neighbor)
    }

    /// Number of neighbours with installed snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no snapshots are installed.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total stored entries across all snapshots.
    pub fn total_entries(&self) -> usize {
        self.snapshots.values().map(OneHopTable::len).sum()
    }

    /// Bits needed to store/refresh the whole two-hop view.
    pub fn storage_bits(&self) -> u64 {
        self.total_entries() as u64 * ENTRY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn observe_and_query() {
        let mut table = OneHopTable::new();
        assert!(table.is_empty());
        table.observe(NodeId::new(1), d(300), t(0));
        table.observe(NodeId::new(2), d(900), t(0));
        assert_eq!(table.len(), 2);
        assert_eq!(table.delay_of(NodeId::new(1)), Some(d(300)));
        assert_eq!(table.delay_of(NodeId::new(9)), None);
    }

    #[test]
    fn observation_refreshes() {
        let mut table = OneHopTable::new();
        table.observe(NodeId::new(1), d(300), t(0));
        table.observe(NodeId::new(1), d(350), t(10));
        assert_eq!(table.len(), 1);
        assert_eq!(table.delay_of(NodeId::new(1)), Some(d(350)));
        assert_eq!(table.entry(NodeId::new(1)).unwrap().measured_at, t(10));
    }

    #[test]
    fn neighbors_iterate_in_id_order() {
        let mut table = OneHopTable::new();
        for id in [5u32, 1, 3] {
            table.observe(NodeId::new(id), d(100), t(0));
        }
        let ids: Vec<u32> = table.neighbors().map(|n| n.index() as u32).collect();
        assert_eq!(ids, [1, 3, 5]);
    }

    #[test]
    fn expire_drops_stale_entries() {
        let mut table = OneHopTable::new();
        table.observe(NodeId::new(1), d(300), t(0));
        table.observe(NodeId::new(2), d(400), t(90));
        let dropped = table.expire(t(100), SimDuration::from_secs(60));
        assert_eq!(dropped, 1);
        assert_eq!(table.delay_of(NodeId::new(1)), None);
        assert_eq!(table.delay_of(NodeId::new(2)), Some(d(400)));
    }

    #[test]
    fn ages_track_measurement_time() {
        let mut table = OneHopTable::new();
        table.observe(NodeId::new(1), d(300), t(10));
        table.observe(NodeId::new(2), d(400), t(40));
        assert_eq!(
            table.age_of(NodeId::new(1), t(100)),
            Some(SimDuration::from_secs(90))
        );
        assert_eq!(table.age_of(NodeId::new(9), t(100)), None);
        assert_eq!(table.oldest_age(t(100)), Some(SimDuration::from_secs(90)));
        // A stepped-back clock can present `now` before `measured_at`;
        // ages saturate at zero instead of underflowing.
        assert_eq!(table.age_of(NodeId::new(2), t(0)), Some(SimDuration::ZERO));
        assert_eq!(OneHopTable::new().oldest_age(t(5)), None);
    }

    #[test]
    fn max_delay_is_local_tau_max() {
        let mut table = OneHopTable::new();
        assert_eq!(table.max_delay(), None);
        table.observe(NodeId::new(1), d(300), t(0));
        table.observe(NodeId::new(2), d(950), t(0));
        assert_eq!(table.max_delay(), Some(d(950)));
    }

    #[test]
    fn announcement_bits_scale_with_entries() {
        let mut table = OneHopTable::new();
        assert_eq!(table.announcement_bits(), 0);
        table.observe(NodeId::new(1), d(1), t(0));
        table.observe(NodeId::new(2), d(2), t(0));
        assert_eq!(table.announcement_bits(), 2 * ENTRY_BITS);
    }

    #[test]
    fn two_hop_lookup() {
        let mut mine = TwoHopTable::new();
        let mut theirs = OneHopTable::new();
        theirs.observe(NodeId::new(7), d(420), t(0));
        mine.install(NodeId::new(3), theirs);
        assert_eq!(
            mine.delay_between(NodeId::new(3), NodeId::new(7)),
            Some(d(420))
        );
        assert_eq!(mine.delay_between(NodeId::new(3), NodeId::new(8)), None);
        assert_eq!(mine.delay_between(NodeId::new(4), NodeId::new(7)), None);
        assert_eq!(mine.len(), 1);
        assert_eq!(mine.total_entries(), 1);
        assert_eq!(mine.storage_bits(), ENTRY_BITS);
    }

    #[test]
    fn two_hop_reinstall_replaces() {
        let mut mine = TwoHopTable::new();
        let mut a = OneHopTable::new();
        a.observe(NodeId::new(7), d(420), t(0));
        a.observe(NodeId::new(8), d(100), t(0));
        mine.install(NodeId::new(3), a);
        assert_eq!(mine.total_entries(), 2);
        let mut b = OneHopTable::new();
        b.observe(NodeId::new(9), d(50), t(5));
        mine.install(NodeId::new(3), b);
        assert_eq!(mine.total_entries(), 1);
        assert_eq!(mine.delay_between(NodeId::new(3), NodeId::new(7)), None);
    }
}
