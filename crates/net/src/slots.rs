//! The synchronized slot clock.
//!
//! §4.1: *"the duration of time slot |ts| is ω + τmax"* — one control packet
//! plus the worst-case propagation delay — and every negotiated packet
//! starts exactly at a slot boundary. All slotted protocols in the workspace
//! (EW-MAC, S-FAMA, CS-MAC's base handshake) share this clock.

use uasn_sim::time::{SimDuration, SimTime};

/// Index of a time slot since t = 0.
pub type SlotIndex = u64;

/// The network-wide slot clock: slots of length `ω + τmax` anchored at
/// t = 0 (the network is assumed synchronized — §3.1).
///
/// # Examples
///
/// ```
/// use uasn_net::slots::SlotClock;
/// use uasn_sim::time::{SimDuration, SimTime};
///
/// // ω = 5.333 ms (64 bits at 12 kbps), τmax = 1 s.
/// let clock = SlotClock::new(
///     SimDuration::from_micros(5_333),
///     SimDuration::from_secs(1),
/// );
/// assert_eq!(clock.slot_len(), SimDuration::from_micros(1_005_333));
/// assert_eq!(clock.slot_of(SimTime::ZERO), 0);
/// assert_eq!(clock.start_of(2).as_micros(), 2 * 1_005_333);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotClock {
    omega: SimDuration,
    tau_max: SimDuration,
    guard: SimDuration,
    slot_len: SimDuration,
}

impl SlotClock {
    /// Creates a clock from the control-packet duration ω and the maximum
    /// propagation delay τmax, with no guard band (the paper's |ts|).
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero.
    pub fn new(omega: SimDuration, tau_max: SimDuration) -> Self {
        SlotClock::with_guard(omega, tau_max, SimDuration::ZERO)
    }

    /// Creates a clock whose slots carry an extra `guard` band:
    /// |ts| = ω + τmax + guard. The guard absorbs per-node clock error so
    /// imperfectly synchronized boundary perceptions still land every
    /// negotiated packet inside its intended slot. A zero guard reproduces
    /// [`SlotClock::new`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if ω or τmax is zero (the guard may be zero).
    pub fn with_guard(omega: SimDuration, tau_max: SimDuration, guard: SimDuration) -> Self {
        assert!(!omega.is_zero(), "control-packet duration must be positive");
        assert!(
            !tau_max.is_zero(),
            "maximum propagation delay must be positive"
        );
        SlotClock {
            omega,
            tau_max,
            guard,
            slot_len: omega + tau_max + guard,
        }
    }

    /// The control-packet transmit duration ω.
    pub fn omega(&self) -> SimDuration {
        self.omega
    }

    /// The maximum one-hop propagation delay τmax.
    pub fn tau_max(&self) -> SimDuration {
        self.tau_max
    }

    /// The guard band appended to every slot (zero in the paper's model).
    pub fn guard(&self) -> SimDuration {
        self.guard
    }

    /// The slot length |ts| = ω + τmax + guard.
    pub fn slot_len(&self) -> SimDuration {
        self.slot_len
    }

    /// The slot containing instant `t` (slots are half-open:
    /// `[start, start + |ts|)`).
    pub fn slot_of(&self, t: SimTime) -> SlotIndex {
        t.duration_since(SimTime::ZERO).div_rem(self.slot_len).0
    }

    /// The start instant of slot `slot`.
    pub fn start_of(&self, slot: SlotIndex) -> SimTime {
        SimTime::ZERO + self.slot_len.saturating_mul(slot)
    }

    /// The first slot boundary strictly after `t`.
    pub fn next_boundary(&self, t: SimTime) -> SimTime {
        self.start_of(self.slot_of(t) + 1)
    }

    /// Offset of `t` within its slot.
    pub fn offset_in_slot(&self, t: SimTime) -> SimDuration {
        t.duration_since(self.start_of(self.slot_of(t)))
    }

    /// Whether `t` lies exactly on a slot boundary.
    pub fn is_boundary(&self, t: SimTime) -> bool {
        self.offset_in_slot(t).is_zero()
    }

    /// Eq 5 of the paper: the slot in which the receiver transmits the Ack
    /// for a data packet sent at slot `data_slot`, with transmit duration
    /// `td` over a link of propagation delay `tau`:
    ///
    /// ```text
    /// ts(Ack) = ts(Data) + ceil((TD + τ) / |ts|)
    /// ```
    pub fn ack_slot(&self, data_slot: SlotIndex, td: SimDuration, tau: SimDuration) -> SlotIndex {
        data_slot + (td + tau).div_ceil(self.slot_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SlotClock {
        // Table 2 numbers: 64-bit control at 12 kbps, 1.5 km at 1.5 km/s.
        SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1))
    }

    #[test]
    fn slot_len_is_omega_plus_tau_max() {
        let c = clock();
        assert_eq!(c.slot_len().as_micros(), 1_005_333);
        assert_eq!(c.omega().as_micros(), 5_333);
        assert_eq!(c.tau_max(), SimDuration::from_secs(1));
    }

    #[test]
    fn slots_are_half_open() {
        let c = clock();
        let len = c.slot_len();
        assert_eq!(c.slot_of(SimTime::ZERO), 0);
        assert_eq!(
            c.slot_of(SimTime::ZERO + len - SimDuration::from_micros(1)),
            0
        );
        assert_eq!(c.slot_of(SimTime::ZERO + len), 1);
    }

    #[test]
    fn start_and_slot_roundtrip() {
        let c = clock();
        for slot in [0u64, 1, 7, 299] {
            assert_eq!(c.slot_of(c.start_of(slot)), slot);
            assert!(c.is_boundary(c.start_of(slot)));
        }
    }

    #[test]
    fn next_boundary_is_strictly_after() {
        let c = clock();
        let b0 = c.start_of(0);
        assert_eq!(c.next_boundary(b0), c.start_of(1));
        let mid = b0 + SimDuration::from_millis(500);
        assert_eq!(c.next_boundary(mid), c.start_of(1));
    }

    #[test]
    fn offset_in_slot() {
        let c = clock();
        let t = c.start_of(3) + SimDuration::from_millis(42);
        assert_eq!(c.offset_in_slot(t), SimDuration::from_millis(42));
        assert!(!c.is_boundary(t));
    }

    #[test]
    fn ack_slot_eq5_examples() {
        let c = clock();
        // Data of 2048 bits at 12 kbps = 170.667 ms; τ = 600 ms.
        // TD + τ = 770.667 ms < one slot -> Ack in the next slot.
        let td = SimDuration::from_micros(170_667);
        let tau = SimDuration::from_millis(600);
        assert_eq!(c.ack_slot(10, td, tau), 11);

        // A large data packet spanning more than one slot pushes the Ack out.
        let big_td = SimDuration::from_secs(2);
        assert_eq!(c.ack_slot(10, big_td, tau), 10 + 3); // 2.6 s / 1.0053 s -> ceil = 3
    }

    #[test]
    fn ack_slot_exact_boundary() {
        let c = clock();
        // TD + τ exactly one slot -> Ack exactly one slot later.
        let tau = SimDuration::from_millis(500);
        let td = c.slot_len() - tau;
        assert_eq!(c.ack_slot(4, td, tau), 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_omega_panics() {
        let _ = SlotClock::new(SimDuration::ZERO, SimDuration::from_secs(1));
    }

    #[test]
    fn guard_band_lengthens_slots_and_zero_guard_is_identity() {
        let base = clock();
        let guarded = SlotClock::with_guard(
            SimDuration::from_micros(5_333),
            SimDuration::from_secs(1),
            SimDuration::from_millis(20),
        );
        assert_eq!(guarded.guard(), SimDuration::from_millis(20));
        assert_eq!(
            guarded.slot_len(),
            base.slot_len() + SimDuration::from_millis(20)
        );
        assert_eq!(
            guarded.start_of(3),
            SimTime::ZERO + guarded.slot_len().saturating_mul(3)
        );
        // Zero guard is byte-identical to the paper's clock.
        let zero = SlotClock::with_guard(
            SimDuration::from_micros(5_333),
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        );
        assert_eq!(zero, base);
        assert!(base.guard().is_zero());
    }
}
