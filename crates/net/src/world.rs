//! The network simulator: nodes + channel + MAC protocols + measurement.
//!
//! [`Simulation`] builds a deployed network from a [`SimConfig`] and a MAC
//! factory, drives it on the `uasn-sim` engine, and returns a
//! [`MetricsReport`]. Physics lives here — propagation delays and PER from
//! `uasn-phy`, collision overlap in each node's modem ledger, energy
//! integration — while protocols only see the [`MacProtocol`] callbacks.
//!
//! Event flow for one transmission: a MAC queues `SendFrame` → `TxStart`
//! stamps the timestamp, seizes the modem and fans out `RxStart`/`RxEnd`
//! pairs to every audible node at its propagation delay → `RxEnd` consults
//! the receiver's modem ledger (overlap ⇒ collision, own-tx ⇒ half-duplex
//! loss) and the channel's PER draw, then delivers the decoded frame to the
//! receiving MAC (addressed or overheard).

use std::collections::HashMap;

use rand::rngs::StdRng;

use uasn_clock::{DelayEstimator, VirtualClock};
use uasn_phy::cache::LinkBudgetCache;
use uasn_phy::channel::AcousticChannel;
use uasn_phy::energy::EnergyMeter;
use uasn_phy::geometry::Point;
use uasn_phy::grid::SpatialGrid;
use uasn_phy::mobility::MobilityModel;
use uasn_phy::modem::{Modem, ModemSpec, ModemState, ReceptionId};
use uasn_phy::soa::{PositionSource, PositionTable};
use uasn_route::{
    select_next_hop, Candidate, RouteConfig, TimeoutVerdict, TransportTable, WorkloadStream,
};
use uasn_sim::engine::{Engine, EventLabel, RunStats, Schedule, StopReason};
use uasn_sim::profile::{MetricsRegistry, ProfileReport};
use uasn_sim::rng::SeedFactory;
use uasn_sim::time::{SimDuration, SimTime};
use uasn_sim::trace::{field, Field, TraceLevel, Tracer};

use crate::config::SimConfig;
use crate::error::BuildNetworkError;
use crate::mac::{
    DropReason, MacCommand, MacContext, MacProtocol, MaintenanceProfile, NeighborInfoScope,
    Reception, TimerToken,
};
use crate::metrics::{DeliveryMetrics, DropVerdict, MetricsReport, VerdictHistogram};
use crate::neighbor::ANNOUNCE_BITS_PER_ENTRY;
use crate::node::{NodeId, NodeInfo, NodeRole};
use crate::packet::{Frame, Sdu};
use crate::routing::next_hop_uphill;
use crate::sampling::{NodeSample, Snapshot, TimeSeries};
use crate::slots::{SlotClock, SlotIndex};
use crate::topology::stranded_sensors;
use crate::traffic::{per_sensor_rate, ArrivalStream, TrafficPattern};

/// Builds one MAC instance per node.
pub type MacFactory<'f> = dyn Fn(NodeId) -> Box<dyn MacProtocol> + 'f;

/// Simulator events.
#[derive(Debug, Clone, PartialEq)]
enum NetEvent {
    /// Dispatch `on_start` to every MAC (fires once at t = 0).
    Start,
    /// A slot boundary.
    SlotStart(SlotIndex),
    /// Traffic source fires at `node`; recurring sources reschedule.
    TrafficArrival { node: u32, recurring: bool },
    /// A queued frame's transmit time arrived.
    TxStart { node: u32, token: u64 },
    /// A transmission finished.
    TxEnd { node: u32, token: u64 },
    /// A frame's first bit reaches a receiver.
    RxStart { token: u64 },
    /// A frame's last bit reaches a receiver.
    RxEnd { token: u64 },
    /// A MAC timer fires.
    Timer { node: u32, token: TimerToken },
    /// Advance drifting nodes.
    MobilityTick,
    /// Charge periodic neighbour-maintenance costs.
    MaintenanceTick,
    /// Record a time-series snapshot and reschedule.
    SampleTick,
    /// One node's *perceived* slot boundary (non-ideal clocks only: the
    /// shared `SlotStart` broadcast splits into per-node events at each
    /// node's local reading of the boundary).
    NodeSlotStart { node: u32, slot: SlotIndex },
    /// Periodic clock-resynchronization round (non-ideal clocks with a
    /// resync model only).
    ResyncTick,
    /// An origin-side transport timeout fires for `sdu` (routed runs with
    /// transport only). Stale fires — the SDU was already acked or
    /// exhausted — are no-ops.
    RouteTimeout { sdu: u64 },
    /// The sink's end-to-end ack for `sdu` reaches its origin (routed
    /// runs with transport only).
    RouteAck { sdu: u64 },
}

impl EventLabel for NetEvent {
    fn label(&self) -> &'static str {
        match self {
            NetEvent::Start => "start",
            NetEvent::SlotStart(_) => "slot-start",
            NetEvent::TrafficArrival { .. } => "traffic",
            NetEvent::TxStart { .. } => "tx-start",
            NetEvent::TxEnd { .. } => "tx-end",
            NetEvent::RxStart { .. } => "rx-start",
            NetEvent::RxEnd { .. } => "rx-end",
            NetEvent::Timer { .. } => "timer",
            NetEvent::MobilityTick => "mobility",
            NetEvent::MaintenanceTick => "maintenance",
            NetEvent::SampleTick => "sample",
            NetEvent::NodeSlotStart { .. } => "node-slot-start",
            NetEvent::ResyncTick => "resync",
            NetEvent::RouteTimeout { .. } => "route-timeout",
            NetEvent::RouteAck { .. } => "route-ack",
        }
    }
}

/// Aggregate sync-error observations over one run (non-ideal clocks only).
///
/// Per-node |local − global| is sampled at every resync round and once more
/// at the end of the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Number of per-node error samples taken.
    pub samples: u64,
    /// Sum of sampled |local − global|, µs.
    pub sum_abs_error_us: u64,
    /// Largest sampled |local − global|, µs.
    pub max_abs_error_us: u64,
    /// Completed resynchronization rounds.
    pub resyncs: u64,
}

impl ClockStats {
    fn record(&mut self, err: SimDuration) {
        self.samples += 1;
        self.sum_abs_error_us += err.as_micros();
        self.max_abs_error_us = self.max_abs_error_us.max(err.as_micros());
    }

    /// Mean sampled |local − global|, µs.
    pub fn mean_abs_error_us(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_abs_error_us as f64 / self.samples as f64
        }
    }
}

#[derive(Debug)]
struct PendingRx {
    node: u32,
    frame: Frame,
    arrival_start: SimTime,
    /// Global send instant — the true-propagation reference. The frame's
    /// own `timestamp` is the *sender-local* reading and drifts with it.
    sent_at: SimTime,
    pre_lost: bool,
    /// Path copies of one transmission share a group: a surface echo never
    /// collides with its own direct arrival.
    group: u64,
    /// Surface echoes occupy the receiver but never decode.
    is_echo: bool,
    rid: Option<ReceptionId>,
}

/// Live state of the routing + transport subsystem; `Some` iff
/// [`SimConfig::route`] was set. Absent, the world draws no "route" RNG
/// stream, schedules no route events, and emits no route trace records,
/// so `route: None` runs are byte-identical to pre-routing builds.
#[derive(Debug)]
struct RouteRuntime {
    cfg: RouteConfig,
    /// Policy stream (`"route"`); only randomized policies ever draw it.
    rng: StdRng,
    /// MAC hops traversed so far by each in-flight SDU copy, keyed by
    /// `(sdu id, attempt)` — the attempt is the routing header stamped on
    /// the copy, so a stale frame from an earlier transport attempt keeps
    /// its own counter instead of corrupting the retry's. Entries are
    /// removed only at points that also emit a path-closing trace record
    /// (or physically end the copy), keeping the world's hop accounting
    /// and the audit monitors' path state in lock-step.
    hops: HashMap<(u64, u32), u32>,
    /// Origin-side retransmission state; `Some` iff
    /// [`RouteConfig::transport`] was set.
    transport: Option<TransportTable>,
    /// Scratch candidate list, reused across selections so the forwarding
    /// hot path does not allocate.
    cand_buf: Vec<Candidate>,
}

/// Fills `buf` with `from`'s forwarding candidates: every strictly
/// shallower node within acoustic range, visited in ascending node order.
/// Exactly the neighbourhood [`next_hop_uphill`] scans, so the greedy
/// policy reproduces the legacy choice bit-for-bit.
fn gather_candidates<P: PositionSource + ?Sized>(
    positions: &P,
    from: usize,
    comm_range_m: f64,
    buf: &mut Vec<Candidate>,
) {
    buf.clear();
    let me = positions.position(from);
    for idx in 0..positions.node_count() {
        let p = positions.position(idx);
        if idx == from || p.depth() >= me.depth() {
            continue;
        }
        let dist = me.distance(p);
        if dist > comm_range_m {
            continue;
        }
        buf.push(Candidate {
            node: idx as u32,
            depth_m: p.depth(),
            dist_m: dist,
        });
    }
}

struct NetworkWorld {
    cfg: SimConfig,
    clock: SlotClock,
    spec: ModemSpec,
    channel: AcousticChannel,
    /// Memoized per-transmitter fan-out rows (consulted only when
    /// `cfg.fastpath`; invalidated by mobility ticks).
    link_cache: LinkBudgetCache,
    now: SimTime,

    roles: Vec<NodeRole>,
    /// Hot per-node position state in struct-of-arrays layout: the fan-out,
    /// culling, and mobility loops stream one coordinate array at a time
    /// instead of striding over `Point` structs.
    positions: PositionTable,
    mobility_models: Vec<MobilityModel>,
    modems: Vec<Modem>,
    meters: Vec<EnergyMeter>,
    macs: Vec<Option<Box<dyn MacProtocol>>>,
    mac_rngs: Vec<StdRng>,
    maintenance: Vec<MaintenanceProfile>,

    channel_rng: StdRng,
    mobility_rng: StdRng,
    traffic_rng: StdRng,
    traffic_stream: Option<ArrivalStream>,
    /// Heavy-traffic arrival stream (bursty / convergecast patterns);
    /// `None` for the legacy Poisson/Batch patterns, whose arrival maths
    /// stay untouched.
    workload_stream: Option<WorkloadStream>,
    /// Routing + transport runtime; `Some` iff `cfg.route`.
    route: Option<RouteRuntime>,

    metrics: DeliveryMetrics,
    /// First-copy gate per `(sdu, node, copy)` triple. The copy component
    /// is 0 in legacy runs — the historical `(sdu, node)` key — and the
    /// SDU's enqueue timestamp in routed runs, so a transport retry (a
    /// genuinely new copy) can traverse nodes its lost predecessor
    /// visited while MAC-level duplicates of one copy still dedup.
    delivered: std::collections::HashSet<(u64, u32, u64)>,
    cmd_buf: Vec<MacCommand>,
    pending_tx: HashMap<u64, Frame>,
    inflight_tx: HashMap<u64, Frame>,
    pending_rx: HashMap<u64, PendingRx>,
    timers: HashMap<(u32, u64), uasn_sim::event::EventKey>,
    /// Scratch for the fan-out's batched event pushes: `schedule_arrival` /
    /// `schedule_echo` stage their `RxStart`/`RxEnd` pairs here and
    /// `handle_tx_start` flushes them through `Schedule::at_batch` in one
    /// reserve-then-push pass. Push order equals the old per-call `sched.at`
    /// order, so event sequence numbers — and therefore equal-time FIFO
    /// ordering — are bit-identical to the unbatched path.
    event_buf: Vec<(SimTime, NetEvent)>,
    next_token: u64,
    next_sdu_id: u64,
    traffic_end: SimTime,
    tracer: Tracer,
    series: Option<TimeSeries>,

    /// Per-node drifting clocks; `None` under the (default) ideal model, in
    /// which case no clock RNG stream is ever drawn, no extra events exist,
    /// and traces stay byte-identical to pre-clock builds.
    clocks: Option<Vec<VirtualClock>>,
    /// Timestamp-difference delay estimation (noise + staleness model).
    estimator: DelayEstimator,
    /// Detection-noise stream; advanced only on non-ideal decodes.
    meas_rng: StdRng,
    /// Cached worst-case per-node clock error for the run-info record.
    clock_error: SimDuration,
    clock_stats: ClockStats,
    /// Performance-observability registry (fan-out degrees, queue depths,
    /// cache counters). Disabled unless `cfg.profile`; a disabled registry
    /// records nothing and allocates nothing, and an enabled one only ever
    /// *observes* — it is never read back by protocol logic, so runs are
    /// byte-identical with profiling on or off.
    registry: MetricsRegistry,
    /// Drop-forensics verdict histogram; `Some` iff `cfg.monitor`. Like
    /// the registry it only *observes* losses the simulation has already
    /// decided, so runs are byte-identical with monitoring on or off.
    verdicts: Option<VerdictHistogram>,
}

impl std::fmt::Debug for NetworkWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkWorld")
            .field("nodes", &self.positions.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl NetworkWorld {
    fn node_count(&self) -> usize {
        self.positions.len()
    }

    fn sync_energy(&mut self, node: usize) {
        let state = self.modems[node].state();
        self.meters[node].set_state(self.now, state);
    }

    fn trace_fields(
        &mut self,
        level: TraceLevel,
        node: usize,
        tag: &'static str,
        detail: impl FnOnce() -> (String, Vec<Field>),
    ) {
        if self.tracer.enabled(level) {
            let (msg, fields) = detail();
            self.tracer
                .record_fields(self.now, level, Some(node), tag, msg, fields);
        }
    }

    /// Emits the run-description record every audit needs: which protocol,
    /// network shape, and the slot geometry the invariant checker replays
    /// against.
    fn trace_run_info(&mut self) {
        if !self.tracer.enabled(TraceLevel::Info) {
            return;
        }
        let protocol = self.macs[0].as_ref().map(|m| m.name()).unwrap_or("unknown");
        let sinks = self.roles.iter().filter(|r| **r == NodeRole::Sink).count();
        let mut fields = vec![
            field("protocol", protocol),
            field("nodes", self.node_count()),
            field("sinks", sinks),
            field("bitrate_bps", self.cfg.bitrate_bps),
            field("omega_us", self.clock.omega().as_micros()),
            field("tau_max_us", self.clock.tau_max().as_micros()),
            field("slot_us", self.clock.slot_len().as_micros()),
            field("mobility", self.cfg.mobility.enabled),
            field("forwarding", self.cfg.forwarding),
        ];
        // Emitted only when the run departs from the ideal-sync paper model,
        // so ideal-mode traces keep their historical byte layout.
        if !(self.cfg.slot_guard.is_zero() && self.cfg.clock.is_ideal()) {
            fields.push(field("guard_us", self.clock.guard().as_micros()));
            fields.push(field("clock_error_us", self.clock_error.as_micros()));
        }
        // Same pattern for routing: only routed runs carry the fields, so
        // `route: None` traces keep their historical byte layout.
        if let Some(route) = &self.cfg.route {
            fields.push(field("route_policy", route.policy.as_str()));
            fields.push(field("route_ttl", route.ttl));
            fields.push(field("transport", route.transport.is_some()));
        }
        self.tracer.record_fields(
            self.now,
            TraceLevel::Info,
            None,
            "run-info",
            String::new(),
            fields,
        );
    }

    /// Node-local reading of `self.now` (identity under ideal clocks).
    fn local_now(&mut self, node: usize) -> SimTime {
        match self.clocks.as_mut() {
            Some(clocks) => clocks[node].local_time(self.now),
            None => self.now,
        }
    }

    /// Converts a node-local instant back to global time. Clamped to the
    /// present for drifting clocks — the affine inverse can land a few µs
    /// either side of the true global instant, and the scheduler must never
    /// receive a time in the past.
    fn to_global(&self, node: usize, local: SimTime) -> SimTime {
        match self.clocks.as_ref() {
            Some(clocks) => clocks[node].global_for_local(local).max(self.now),
            None => local,
        }
    }

    /// Runs `f` against node `node`'s MAC and then applies the commands it
    /// queued. The MAC sees its **own** clock's reading of now; commands it
    /// schedules are converted back to global time in `apply_command`.
    fn with_mac<F>(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, f: F)
    where
        F: FnOnce(&mut dyn MacProtocol, &mut MacContext<'_>),
    {
        debug_assert!(self.cmd_buf.is_empty());
        let local_now = self.local_now(node);
        let mut mac = self.macs[node].take().expect("MAC missing during dispatch");
        {
            let mut ctx = MacContext::new(
                local_now,
                NodeId::new(node as u32),
                self.clock,
                self.spec,
                self.cfg.control_bits,
                &mut self.mac_rngs[node],
                &mut self.cmd_buf,
            );
            f(mac.as_mut(), &mut ctx);
        }
        self.macs[node] = Some(mac);
        let commands: Vec<MacCommand> = self.cmd_buf.drain(..).collect();
        for cmd in commands {
            self.apply_command(sched, node, cmd);
        }
    }

    fn apply_command(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, cmd: MacCommand) {
        match cmd {
            MacCommand::SendFrame { frame, at } => {
                let at = self.to_global(node, at);
                let token = self.next_token;
                self.next_token += 1;
                self.pending_tx.insert(token, frame);
                sched.at(
                    at,
                    NetEvent::TxStart {
                        node: node as u32,
                        token,
                    },
                );
            }
            MacCommand::SetTimer { at, token } => {
                let at = self.to_global(node, at);
                let key = sched.at(
                    at,
                    NetEvent::Timer {
                        node: node as u32,
                        token,
                    },
                );
                if let Some(old) = self.timers.insert((node as u32, token.0), key) {
                    // Re-arming a token cancels its previous instance.
                    sched.cancel(old);
                }
            }
            MacCommand::CancelTimer { token } => {
                if let Some(key) = self.timers.remove(&(node as u32, token.0)) {
                    sched.cancel(key);
                }
            }
            MacCommand::ChargeMaintenance { bits } => {
                self.metrics.per_node[node].maintenance_bits += bits;
                self.meters[node].charge_maintenance_bits(bits);
            }
            MacCommand::SduDropped { id, reason } => {
                self.metrics.per_node[node].sdus_dropped += 1;
                self.metrics.record_mac_drop(self.now, id);
                self.record_verdict(match reason {
                    DropReason::RetryExhausted => DropVerdict::MacDrop,
                    DropReason::HandshakeTimeout => DropVerdict::HandshakeTimeout,
                    DropReason::QueueOverflow => DropVerdict::QueueOverflow,
                });
                self.trace_fields(TraceLevel::Debug, node, "sdu-drop", || {
                    (
                        format!("sdu {id} dropped by MAC ({})", reason.as_str()),
                        vec![field("sdu", id), field("reason", reason.as_str())],
                    )
                });
            }
        }
    }

    /// Attributes one loss to the forensics histogram. A no-op unless
    /// [`SimConfig::monitor`](crate::config::SimConfig::monitor) was set.
    fn record_verdict(&mut self, verdict: DropVerdict) {
        if let Some(verdicts) = self.verdicts.as_mut() {
            verdicts.record(verdict);
        }
    }

    fn handle_tx_start(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, token: u64) {
        let Some(mut frame) = self.pending_tx.remove(&token) else {
            return;
        };
        if self.modems[node].is_transmitting() {
            self.metrics.per_node[node].tx_dropped += 1;
            self.record_verdict(DropVerdict::ModemBusy);
            self.trace_fields(TraceLevel::Debug, node, "tx-drop", || {
                (
                    format!("{frame} dropped: modem busy"),
                    vec![
                        field("reason", "modem-busy"),
                        field("kind", frame.kind.label()),
                        field("src", frame.src.index()),
                        field("dst", frame.dst.index()),
                        field("bits", frame.bits),
                    ],
                )
            });
            return;
        }
        // §4.3: the frame carries the *sender's* clock reading, which is
        // what receivers difference against. Identical to `self.now` under
        // ideal clocks.
        frame.timestamp = self.local_now(node);
        let duration = self.spec.tx_duration(frame.bits);
        self.modems[node].begin_transmit(self.now, self.now + duration);
        self.sync_energy(node);
        self.metrics.transmission_started(self.now);

        let counters = &mut self.metrics.per_node[node];
        if frame.kind.is_data() {
            counters.data_bits_sent += frame.bits as u64;
            counters.data_frames_sent += 1;
            if frame.retx {
                counters.retx_bits += frame.bits as u64;
                counters.retx_frames += 1;
            }
        } else {
            counters.control_bits_sent += frame.bits as u64;
            counters.control_frames_sent += 1;
        }
        let piggyback = self.maintenance[node].piggyback_bits;
        if piggyback > 0 {
            self.metrics.per_node[node].maintenance_bits += piggyback;
            self.meters[node].charge_maintenance_bits(piggyback);
        }
        self.trace_fields(TraceLevel::Debug, node, "tx", || {
            let mut fields = vec![
                field("kind", frame.kind.label()),
                field("dst", frame.dst.index()),
                field("bits", frame.bits),
                field("dur_us", duration.as_micros()),
            ];
            if let Some(tau) = frame.pair_delay {
                fields.push(field("pair_delay_us", tau.as_micros()));
            }
            if let Some(td) = frame.data_duration {
                fields.push(field("data_dur_us", td.as_micros()));
            }
            if let Some(sdu) = &frame.sdu {
                fields.push(field("sdu", sdu.id));
                fields.push(field("origin", sdu.origin.index()));
                if frame.retx {
                    fields.push(field("retx", true));
                }
            }
            if !frame.bundle.is_empty() {
                fields.push(field("bundle", frame.bundle.len()));
            }
            (frame.to_string(), fields)
        });

        // Fan out arrivals to every audible node. Both paths visit audible
        // receivers in ascending index order and call the same arithmetic
        // on the same `(distance, snr)` pairs, so the channel-RNG stream —
        // and therefore the whole run — is bit-identical between them.
        debug_assert!(self.event_buf.is_empty());
        let fanout: u64;
        if self.cfg.fastpath {
            self.link_cache
                .ensure_row(&self.channel, &self.positions, node);
            fanout = self.link_cache.row_len(node) as u64;
            for k in 0..self.link_cache.row_len(node) {
                let link = self.link_cache.link_at(node, k);
                let pre_lost = !self.channel.draw_delivery_at(
                    &mut self.channel_rng,
                    link.distance_m,
                    link.snr_db,
                    frame.bits,
                );
                self.schedule_arrival(link.rx, &frame, token, link.delay, duration, pre_lost);
                if let Some(echo_delay) = link.echo_delay {
                    self.schedule_echo(link.rx, &frame, token, echo_delay, duration);
                }
            }
        } else {
            let src_pos = self.positions.get(node);
            let mut degree = 0u64;
            for j in 0..self.node_count() {
                if j == node {
                    continue;
                }
                let dst_pos = self.positions.get(j);
                if !self.channel.is_audible(src_pos, dst_pos) {
                    continue;
                }
                degree += 1;
                let delay = self.channel.propagation_delay(src_pos, dst_pos);
                let pre_lost = !self.channel.draw_delivery(
                    &mut self.channel_rng,
                    src_pos,
                    dst_pos,
                    frame.bits,
                );
                self.schedule_arrival(j as u32, &frame, token, delay, duration, pre_lost);

                // Surface-bounce echo (when the channel models multipath):
                // a delayed, data-less copy that occupies the receiver.
                if self.channel.echo_audible(src_pos, dst_pos) {
                    let echo_delay = self.channel.echo_delay(src_pos, dst_pos);
                    self.schedule_echo(j as u32, &frame, token, echo_delay, duration);
                }
            }
            fanout = degree;
        }
        // One reserve + push pass for the whole fan-out instead of 2(+2)
        // heap pushes per receiver. The drain preserves push order, so the
        // queue assigns the same sequence numbers the per-call path would.
        let mut buf = std::mem::take(&mut self.event_buf);
        sched.at_batch(buf.drain(..));
        self.event_buf = buf;
        self.registry.observe("net.fanout", fanout);

        self.inflight_tx.insert(token, frame);
        sched.at(
            self.now + duration,
            NetEvent::TxEnd {
                node: node as u32,
                token,
            },
        );
    }

    /// Books one direct-path reception: pending-rx entry plus its
    /// `RxStart`/`RxEnd` pair staged into [`Self::event_buf`] (the caller
    /// flushes the whole fan-out in one batch). Token allocation order is
    /// part of the determinism contract shared by the fast and reference
    /// fan-outs.
    fn schedule_arrival(
        &mut self,
        rx_node: u32,
        frame: &Frame,
        group: u64,
        delay: SimDuration,
        duration: SimDuration,
        pre_lost: bool,
    ) {
        let rx_token = self.next_token;
        self.next_token += 1;
        let arrival_start = self.now + delay;
        self.pending_rx.insert(
            rx_token,
            PendingRx {
                node: rx_node,
                frame: frame.clone(),
                arrival_start,
                sent_at: self.now,
                pre_lost,
                group,
                is_echo: false,
                rid: None,
            },
        );
        self.event_buf
            .push((arrival_start, NetEvent::RxStart { token: rx_token }));
        self.event_buf.push((
            arrival_start + duration,
            NetEvent::RxEnd { token: rx_token },
        ));
    }

    /// Books one surface-echo reception: occupies the receiver, never
    /// decodes. Staged into [`Self::event_buf`] like direct arrivals.
    fn schedule_echo(
        &mut self,
        rx_node: u32,
        frame: &Frame,
        group: u64,
        echo_delay: SimDuration,
        duration: SimDuration,
    ) {
        let echo_token = self.next_token;
        self.next_token += 1;
        let echo_start = self.now + echo_delay;
        self.pending_rx.insert(
            echo_token,
            PendingRx {
                node: rx_node,
                frame: frame.clone(),
                arrival_start: echo_start,
                sent_at: self.now,
                pre_lost: true,
                group,
                is_echo: true,
                rid: None,
            },
        );
        self.event_buf
            .push((echo_start, NetEvent::RxStart { token: echo_token }));
        self.event_buf
            .push((echo_start + duration, NetEvent::RxEnd { token: echo_token }));
    }

    fn handle_tx_end(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, token: u64) {
        let frame = self
            .inflight_tx
            .remove(&token)
            .expect("TxEnd without inflight frame");
        self.modems[node].end_transmit(self.now);
        self.sync_energy(node);
        self.metrics.transmission_ended(self.now);
        self.with_mac(sched, node, |mac, ctx| mac.on_frame_sent(ctx, &frame));
    }

    fn handle_rx_start(&mut self, token: u64) {
        let entry = self
            .pending_rx
            .get_mut(&token)
            .expect("RxStart without pending reception");
        let node = entry.node as usize;
        let duration = self.spec.tx_duration(entry.frame.bits);
        let rid =
            self.modems[node].begin_reception_grouped(self.now, self.now + duration, entry.group);
        entry.rid = Some(rid);
        self.sync_energy(node);
    }

    fn handle_rx_end(&mut self, sched: &mut Schedule<'_, NetEvent>, token: u64) {
        let entry = self
            .pending_rx
            .remove(&token)
            .expect("RxEnd without pending reception");
        let node = entry.node as usize;
        let rid = entry.rid.expect("reception never started");
        let survived = self.modems[node].end_reception(self.now, rid);
        self.sync_energy(node);
        if entry.is_echo {
            // Echoes only occupy the channel; nothing to decode.
            return;
        }
        if !survived || entry.pre_lost {
            let reason = if survived { "channel" } else { "collision" };
            if survived {
                // A PER draw took the frame; collisions and half-duplex
                // losses are already counted by the modem ledger and are
                // outside the drop-verdict taxonomy.
                self.record_verdict(DropVerdict::PerLoss);
            }
            self.trace_fields(TraceLevel::Debug, node, "rx-lost", || {
                (
                    format!("{} ({reason})", entry.frame),
                    vec![
                        field("reason", reason),
                        field("kind", entry.frame.kind.label()),
                        field("src", entry.frame.src.index()),
                        field("dst", entry.frame.dst.index()),
                        field("bits", entry.frame.bits),
                        field("start_us", entry.arrival_start.as_micros()),
                    ],
                )
            });
            return;
        }
        let frame = entry.frame;
        // True propagation for the trace: global send → global first-bit
        // arrival. (Equals `arrival − frame.timestamp` under ideal clocks.)
        let prop_delay = entry.arrival_start.duration_since(entry.sent_at);
        // What the receiver *measures* (§4.3): the sender-local timestamp
        // differenced against its own local arrival reading — it knows the
        // frame duration exactly, so it back-dates from the decode instant —
        // plus one detection-noise draw. Both endpoints' clock errors leak
        // into this value; under ideal clocks it is exactly `prop_delay` and
        // the noise stream is never touched.
        let drifting = self.clocks.is_some();
        let (arrival_seen, measured) = if drifting {
            let local_arrival =
                uasn_phy::timestamp::rx_arrival(self.local_now(node), self.spec, frame.bits);
            let raw = self.estimator.estimate(frame.timestamp, local_arrival);
            (local_arrival, self.estimator.noisy(raw, &mut self.meas_rng))
        } else {
            (entry.arrival_start, prop_delay)
        };

        // Deliver to the MAC first (it may answer with an Ack schedule)…
        let reception = Reception {
            frame: &frame,
            arrival_start: arrival_seen,
            prop_delay: measured,
        };
        let me = NodeId::new(entry.node);
        let addressed = reception.addressed_to(me);
        self.trace_fields(TraceLevel::Debug, node, "rx", || {
            let mut fields = vec![
                field("kind", frame.kind.label()),
                field("src", frame.src.index()),
                field("dst", frame.dst.index()),
                field("bits", frame.bits),
                field("start_us", entry.arrival_start.as_micros()),
                field("prop_us", prop_delay.as_micros()),
                field("addressed", addressed),
            ];
            if drifting {
                fields.push(field("meas_us", measured.as_micros()));
            }
            if let Some(sdu) = &frame.sdu {
                fields.push(field("sdu", sdu.id));
                fields.push(field("origin", sdu.origin.index()));
            }
            (frame.to_string(), fields)
        });
        self.with_mac(sched, node, |mac, ctx| {
            mac.on_frame_received(ctx, &reception)
        });

        // …then account data deliveries (every SDU riding the frame) and
        // forward toward the surface.
        if addressed && frame.kind.is_data() {
            let sdus: Vec<Sdu> = frame.sdus().copied().collect();
            for sdu in sdus {
                let copy = if self.route.is_some() {
                    sdu.created.as_micros()
                } else {
                    0
                };
                let first_copy = self.delivered.insert((sdu.id, entry.node, copy));
                if !first_copy {
                    continue;
                }
                self.metrics.per_node[sdu.origin.index()].origin_bits_delivered += sdu.bits as u64;
                let counters = &mut self.metrics.per_node[node];
                counters.data_bits_received += sdu.bits as u64;
                counters.sdus_received += 1;
                if frame.kind == crate::packet::FrameKind::ExData {
                    counters.extra_bits_received += sdu.bits as u64;
                }
                self.metrics
                    .record_delivery_latency(self.now.duration_since(sdu.created));
                self.metrics.record_mac_delivery(self.now, sdu.id);
                if self.roles[node] == NodeRole::Sink {
                    let e2e = self.metrics.record_sink_arrival(self.now, sdu.id, sdu.bits);
                    self.trace_fields(TraceLevel::Info, node, "sink", || {
                        let mut fields = vec![
                            field("sdu", sdu.id),
                            field("origin", sdu.origin.index()),
                            field("bits", sdu.bits),
                        ];
                        if let Some(e2e) = e2e {
                            fields.push(field("e2e_us", e2e.as_micros()));
                        }
                        (
                            format!("sdu {} from {} reached sink", sdu.id, sdu.origin),
                            fields,
                        )
                    });
                    if self.route.is_some() {
                        self.route_sink_arrival(sched, node, &sdu, e2e);
                    }
                } else if self.route.is_some() {
                    self.route_relay(sched, node, sdu);
                } else if self.cfg.forwarding {
                    self.forward(sched, node, sdu);
                }
            }
        }
    }

    fn forward(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, sdu: Sdu) {
        match next_hop_uphill(
            &self.positions,
            NodeId::new(node as u32),
            self.channel.max_range_m(),
        ) {
            Some(next) => {
                let fwd = Sdu {
                    next_hop: next,
                    created: self.now,
                    ..sdu
                };
                self.trace_fields(TraceLevel::Debug, node, "enq", || {
                    (
                        format!("sdu {} forwarded toward {next}", fwd.id),
                        vec![
                            field("sdu", fwd.id),
                            field("origin", fwd.origin.index()),
                            field("next_hop", next.index()),
                            field("bits", fwd.bits),
                            field("fwd", true),
                        ],
                    )
                });
                self.with_mac(sched, node, |mac, ctx| mac.on_enqueue(ctx, fwd));
                self.observe_queue_depth(node);
            }
            None => {
                self.metrics.per_node[node].unroutable += 1;
                self.record_verdict(DropVerdict::NoAudibleReceiver);
            }
        }
    }

    /// Policy-driven next hop for `node` (routed runs only). The greedy
    /// policy never draws the route RNG and ranks candidates exactly like
    /// [`next_hop_uphill`], so a `ForwardPolicy::Greedy` run makes the
    /// same per-hop decisions as the legacy pipeline.
    fn route_next_hop(&mut self, node: usize) -> Option<NodeId> {
        let route = self.route.as_mut().expect("routed run");
        gather_candidates(
            &self.positions,
            node,
            self.channel.max_range_m(),
            &mut route.cand_buf,
        );
        select_next_hop(route.cfg.policy, &route.cand_buf, &mut route.rng).map(NodeId::new)
    }

    /// Whether the transport still holds an in-flight entry for `sdu` —
    /// i.e. a copy-level loss now is *not* the SDU's terminal fate.
    fn route_retry_pending(&self, sdu: u64) -> bool {
        self.route
            .as_ref()
            .and_then(|r| r.transport.as_ref())
            .is_some_and(|t| t.pending(sdu).is_some())
    }

    /// Emits the copy-level or terminal drop record for a routed loss:
    /// `relay-drop` while a transport retry can still rescue the SDU,
    /// `e2e-drop` when this loss is final.
    fn trace_route_drop(&mut self, node: usize, sdu: &Sdu, hops: u32, reason: &'static str) {
        let tag = if self.route_retry_pending(sdu.id) {
            "relay-drop"
        } else {
            "e2e-drop"
        };
        let (id, origin, attempt) = (sdu.id, sdu.origin, sdu.attempt);
        self.trace_fields(TraceLevel::Info, node, tag, || {
            (
                format!("sdu {id} lost at hop {hops} ({reason})"),
                vec![
                    field("sdu", id),
                    field("origin", origin.index()),
                    field("attempt", attempt),
                    field("hops", hops),
                    field("reason", reason),
                ],
            )
        });
    }

    /// Origin-side routing bookkeeping for a freshly injected (or
    /// retried) SDU copy that found a next hop: the `route` trace record,
    /// the hop counter, and — on first injection with transport — the
    /// pending-table entry plus its armed timeout.
    fn route_register_origin(
        &mut self,
        sched: &mut Schedule<'_, NetEvent>,
        node: usize,
        sdu: &Sdu,
        attempt: u32,
    ) {
        let (id, next, bits) = (sdu.id, sdu.next_hop, sdu.bits);
        self.trace_fields(TraceLevel::Info, node, "route", || {
            (
                format!("sdu {id} routed toward {next} (attempt {attempt})"),
                vec![
                    field("sdu", id),
                    field("origin", node),
                    field("next_hop", next.index()),
                    field("attempt", attempt),
                ],
            )
        });
        let now_us = self.now.as_micros();
        let route = self.route.as_mut().expect("routed run");
        route.hops.insert((id, attempt), 0);
        if attempt == 0 {
            if let Some(table) = route.transport.as_mut() {
                let deadline_us = table.register(id, node as u32, bits, now_us);
                sched.at(
                    SimTime::ZERO + SimDuration::from_micros(deadline_us),
                    NetEvent::RouteTimeout { sdu: id },
                );
            }
        }
    }

    /// Relays a routed SDU copy at an intermediate node: charge the hop
    /// against the TTL, pick the next hop, re-enqueue. Copy losses under
    /// a pending transport entry are non-terminal (`relay-drop`); without
    /// one they are the SDU's end-to-end fate (`e2e-drop`).
    fn route_relay(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, sdu: Sdu) {
        let route = self.route.as_mut().expect("routed run");
        let ttl = route.cfg.ttl;
        let copy = (sdu.id, sdu.attempt);
        let traversed = route.hops.get(&copy).copied().unwrap_or(0) + 1;
        route.hops.insert(copy, traversed);
        if traversed >= ttl {
            self.metrics.per_node[node].ttl_dropped += 1;
            self.record_verdict(DropVerdict::TtlExhausted);
            self.trace_route_drop(node, &sdu, traversed, "ttl-exhausted");
            // The drop record closed this copy's audit path; its hop
            // counter goes with it (other copies keep theirs).
            self.route.as_mut().expect("routed run").hops.remove(&copy);
            return;
        }
        match self.route_next_hop(node) {
            Some(next) => {
                let fwd = Sdu {
                    next_hop: next,
                    created: self.now,
                    ..sdu
                };
                self.trace_fields(TraceLevel::Info, node, "relay", || {
                    (
                        format!("sdu {} relayed toward {next} (hop {traversed})", fwd.id),
                        vec![
                            field("sdu", fwd.id),
                            field("origin", fwd.origin.index()),
                            field("next_hop", next.index()),
                            field("attempt", fwd.attempt),
                            field("hops", traversed),
                            field("bits", fwd.bits),
                        ],
                    )
                });
                self.with_mac(sched, node, |mac, ctx| mac.on_enqueue(ctx, fwd));
                self.observe_queue_depth(node);
            }
            None => {
                self.metrics.per_node[node].unroutable += 1;
                self.record_verdict(DropVerdict::NoAudibleReceiver);
                self.trace_route_drop(node, &sdu, traversed, "unroutable");
                self.route.as_mut().expect("routed run").hops.remove(&copy);
            }
        }
    }

    /// Completes a routed SDU's journey at a sink: record the path
    /// length, emit `e2e-deliver`, and (with transport) launch the ack
    /// back toward the origin at one direct propagation delay — the
    /// abstract out-of-band ack channel of the minimal transport.
    fn route_sink_arrival(
        &mut self,
        sched: &mut Schedule<'_, NetEvent>,
        node: usize,
        sdu: &Sdu,
        e2e: Option<SimDuration>,
    ) {
        let route = self.route.as_mut().expect("routed run");
        // The copy physically ends at the sink either way; its hop
        // counter is done (a sink never relays).
        let counted = route.hops.remove(&(sdu.id, sdu.attempt));
        // Duplicate copy or late attempt: the SDU already completed.
        let Some(e2e) = e2e else { return };
        let hops = counted.unwrap_or(0) + 1;
        self.metrics.path_hops.record(u64::from(hops));
        let (id, origin, attempt) = (sdu.id, sdu.origin, sdu.attempt);
        self.trace_fields(TraceLevel::Info, node, "e2e-deliver", || {
            (
                format!("sdu {id} delivered end-to-end in {hops} hops"),
                vec![
                    field("sdu", id),
                    field("origin", origin.index()),
                    field("sink", node),
                    field("attempt", attempt),
                    field("hops", hops),
                    field("e2e_us", e2e.as_micros()),
                ],
            )
        });
        let has_transport = self.route.as_ref().expect("routed run").transport.is_some();
        if has_transport {
            let delay = self
                .channel
                .propagation_delay(self.positions.get(node), self.positions.get(origin.index()));
            sched.at(self.now + delay, NetEvent::RouteAck { sdu: id });
        }
    }

    /// An armed transport timeout fired. Stale fires (already acked or
    /// exhausted) are no-ops; live ones either re-inject the SDU at its
    /// origin with the backoff-doubled deadline, or retire it as a
    /// terminal retry-budget loss.
    fn handle_route_timeout(&mut self, sched: &mut Schedule<'_, NetEvent>, sdu: u64) {
        let now_us = self.now.as_micros();
        let outcome = {
            let Some(route) = self.route.as_mut() else {
                return;
            };
            let Some(table) = route.transport.as_mut() else {
                return;
            };
            let Some(outcome) = table.on_timeout(sdu, now_us) else {
                return;
            };
            outcome
        };
        let (entry, verdict) = outcome;
        let origin = entry.origin as usize;
        match verdict {
            TimeoutVerdict::Retry { deadline_us } => {
                sched.at(
                    SimTime::ZERO + SimDuration::from_micros(deadline_us),
                    NetEvent::RouteTimeout { sdu },
                );
                match self.route_next_hop(origin) {
                    Some(next) => {
                        let fwd = Sdu {
                            id: sdu,
                            origin: NodeId::new(entry.origin),
                            next_hop: next,
                            bits: entry.bits,
                            created: self.now,
                            attempt: entry.attempts,
                        };
                        self.route_register_origin(sched, origin, &fwd, entry.attempts);
                        self.with_mac(sched, origin, |mac, ctx| mac.on_enqueue(ctx, fwd));
                        self.observe_queue_depth(origin);
                    }
                    None => {
                        // This attempt is burnt; later timeouts may still
                        // retry (mobility can restore a neighbour).
                        self.metrics.per_node[origin].unroutable += 1;
                        self.record_verdict(DropVerdict::NoAudibleReceiver);
                        let stub = Sdu {
                            id: sdu,
                            origin: NodeId::new(entry.origin),
                            next_hop: NodeId::new(entry.origin),
                            bits: entry.bits,
                            created: self.now,
                            attempt: entry.attempts,
                        };
                        self.trace_route_drop(origin, &stub, 0, "unroutable");
                    }
                }
            }
            TimeoutVerdict::Exhausted => {
                self.metrics.per_node[origin].retry_dropped += 1;
                self.record_verdict(DropVerdict::RetryBudgetExhausted);
                let attempts = entry.attempts;
                // The terminal e2e-drop record below closes every audit
                // path of this SDU, so all copies' hop counters go too.
                let route = self.route.as_mut().expect("routed run");
                for a in 0..=attempts {
                    route.hops.remove(&(sdu, a));
                }
                self.trace_fields(TraceLevel::Info, origin, "e2e-drop", || {
                    (
                        format!("sdu {sdu} lost end-to-end (retry budget exhausted)"),
                        vec![
                            field("sdu", sdu),
                            field("origin", origin),
                            field("attempts", attempts),
                            field("reason", "retry-exhausted"),
                        ],
                    )
                });
            }
        }
    }

    /// The sink's end-to-end ack reached the origin: retire the pending
    /// transport entry (duplicates and post-exhaustion acks are no-ops).
    fn handle_route_ack(&mut self, sdu: u64) {
        if let Some(table) = self.route.as_mut().and_then(|r| r.transport.as_mut()) {
            table.ack(sdu);
        }
    }

    /// Records the node's post-enqueue MAC queue depth into the
    /// performance registry. Gated on the registry being enabled so the
    /// unprofiled hot path never pays the virtual `queue_len` call.
    fn observe_queue_depth(&mut self, node: usize) {
        if self.registry.is_enabled() {
            let depth = self.macs[node]
                .as_ref()
                .map(|mac| mac.queue_len() as u64)
                .unwrap_or(0);
            self.registry.observe("net.queue_depth", depth);
        }
    }

    fn handle_traffic(&mut self, sched: &mut Schedule<'_, NetEvent>, node: usize, recurring: bool) {
        if recurring && self.now >= self.traffic_end {
            return; // offered-load window closed
        }
        let sdu_id = self.next_sdu_id;
        self.next_sdu_id += 1;
        self.metrics.per_node[node].sdus_generated += 1;
        let bits = match self.cfg.data_bits_range {
            Some((min, max)) => {
                use rand::Rng;
                self.traffic_rng.gen_range(min..=max)
            }
            None => self.cfg.data_bits,
        };
        let chosen = if self.route.is_some() {
            self.route_next_hop(node)
        } else {
            next_hop_uphill(
                &self.positions,
                NodeId::new(node as u32),
                self.channel.max_range_m(),
            )
        };
        match chosen {
            Some(next) => {
                let sdu = Sdu {
                    id: sdu_id,
                    origin: NodeId::new(node as u32),
                    next_hop: next,
                    bits,
                    created: self.now,
                    attempt: 0,
                };
                self.metrics.record_sdu_generated(self.now, sdu_id);
                if self.cfg.traffic.is_batch() {
                    self.metrics.register_batch_sdu(Some(sdu_id));
                }
                self.trace_fields(TraceLevel::Debug, node, "enq", || {
                    (
                        format!("sdu {sdu_id} enqueued for {next}"),
                        vec![
                            field("sdu", sdu_id),
                            field("origin", node),
                            field("next_hop", next.index()),
                            field("bits", bits),
                            field("fwd", false),
                        ],
                    )
                });
                if self.route.is_some() {
                    self.route_register_origin(sched, node, &sdu, 0);
                }
                self.with_mac(sched, node, |mac, ctx| mac.on_enqueue(ctx, sdu));
                self.observe_queue_depth(node);
            }
            None => {
                self.metrics.per_node[node].unroutable += 1;
                self.record_verdict(DropVerdict::NoAudibleReceiver);
                if self.route.is_some() {
                    // Origin-unroutable SDUs are terminal even with
                    // transport: there is nothing to retransmit.
                    let stub = Sdu {
                        id: sdu_id,
                        origin: NodeId::new(node as u32),
                        next_hop: NodeId::new(node as u32),
                        bits,
                        created: self.now,
                        attempt: 0,
                    };
                    self.trace_route_drop(node, &stub, 0, "unroutable");
                }
                if self.cfg.traffic.is_batch() {
                    // An unroutable batch SDU would deadlock completion;
                    // count the arrival as (vacuously) done.
                    self.metrics.register_batch_sdu(None);
                }
            }
        }
        if recurring {
            if let Some(stream) = self.traffic_stream {
                let next = stream.next_arrival(&mut self.traffic_rng, self.now);
                if next < self.traffic_end {
                    sched.at(
                        next,
                        NetEvent::TrafficArrival {
                            node: node as u32,
                            recurring: true,
                        },
                    );
                }
            } else if let Some(stream) = self.workload_stream {
                let next_s = stream.next_arrival(&mut self.traffic_rng, self.now.as_secs_f64());
                let next = SimTime::ZERO + SimDuration::from_secs_f64(next_s);
                if next < self.traffic_end {
                    sched.at(
                        next,
                        NetEvent::TrafficArrival {
                            node: node as u32,
                            recurring: true,
                        },
                    );
                }
            }
        }
    }

    fn handle_mobility_tick(&mut self, sched: &mut Schedule<'_, NetEvent>) {
        let dt = self.cfg.mobility.update_interval;
        let region = self.cfg.deployment.region();
        for i in 0..self.node_count() {
            let model = self.mobility_models[i];
            if model.is_mobile() {
                let next = model.step(
                    &mut self.mobility_rng,
                    self.positions.get(i),
                    &region,
                    dt.as_secs_f64(),
                );
                self.positions.set(i, next);
                // Incremental index update: O(moved) instead of a rebuild.
                self.link_cache.note_move(i as u32, next);
            }
        }
        // Positions changed: every cached fan-out row is now a lie.
        self.link_cache.invalidate();
        sched.after(dt, NetEvent::MobilityTick);
    }

    fn handle_maintenance_tick(&mut self, sched: &mut Schedule<'_, NetEvent>) {
        let mut interval = None;
        for node in 0..self.node_count() {
            let profile = self.maintenance[node];
            let Some(period) = profile.periodic_refresh else {
                continue;
            };
            interval = Some(period);
            let bits = self.maintenance_refresh_bits(node, profile.scope);
            if bits > 0 {
                self.metrics.per_node[node].maintenance_bits += bits;
                self.meters[node].charge_maintenance_bits(bits);
            }
        }
        if let Some(period) = interval {
            sched.after(period, NetEvent::MaintenanceTick);
        }
    }

    /// Bits one table refresh costs `node` right now. A refreshing node
    /// re-broadcasts only its **own** one-hop table (neighbours assemble
    /// two-hop views by listening), so the cost is one entry per audible
    /// neighbour regardless of scope; the scope decides whether refreshes
    /// happen at all and how often (the protocol's `periodic_refresh`).
    fn maintenance_refresh_bits(&mut self, node: usize, scope: NeighborInfoScope) -> u64 {
        if scope == NeighborInfoScope::None {
            return 0;
        }
        self.audible_degree(node) as u64 * ANNOUNCE_BITS_PER_ENTRY
    }

    /// How many nodes can hear `node` right now (its one-hop degree).
    fn audible_degree(&mut self, node: usize) -> usize {
        if self.cfg.fastpath {
            self.link_cache
                .ensure_row(&self.channel, &self.positions, node);
            self.link_cache.row_len(node)
        } else {
            let p = self.positions.get(node);
            (0..self.node_count())
                .filter(|&j| j != node && self.channel.is_audible(p, self.positions.get(j)))
                .count()
        }
    }

    /// One resynchronization round: sample every node's sync error into the
    /// run statistics, then pull its clock back to within the configured
    /// residual of true time.
    fn handle_resync_tick(&mut self, sched: &mut Schedule<'_, NetEvent>) {
        let Some(resync) = self.cfg.clock.resync else {
            return;
        };
        let now = self.now;
        if let Some(clocks) = self.clocks.as_mut() {
            for clock in clocks.iter_mut() {
                let err = clock.error_at(now);
                self.clock_stats.record(err);
                clock.resync(resync.residual, now);
            }
            self.clock_stats.resyncs += 1;
            sched.after(resync.period, NetEvent::ResyncTick);
        }
    }

    fn handle_sample_tick(&mut self, sched: &mut Schedule<'_, NetEvent>) {
        let Some(series) = self.series.as_mut() else {
            return;
        };
        let interval = series.interval;
        let n = self.node_count();
        let busy = self
            .modems
            .iter()
            .filter(|m| m.state() != ModemState::Idle)
            .count();
        let totals = |f: &dyn Fn(&crate::metrics::NodeCounters) -> u64| -> u64 {
            self.metrics.per_node.iter().map(f).sum()
        };
        let snapshot = Snapshot {
            time: self.now,
            channel_busy_fraction: busy as f64 / n as f64,
            sdus_generated: totals(&|c| c.sdus_generated),
            sdus_received: totals(&|c| c.sdus_received),
            data_bits_received: totals(&|c| c.data_bits_received),
            control_bits_sent: totals(&|c| c.control_bits_sent),
            // Per-node counters only learn collisions at finalize; read the
            // live ledgers instead.
            collisions: self.modems.iter().map(|m| m.collisions()).sum(),
            nodes: (0..n)
                .map(|i| {
                    let mac = self.macs[i].as_ref().expect("MAC present between events");
                    NodeSample {
                        queue_len: mac.queue_len() as u32,
                        mac_state: mac.state_label(),
                    }
                })
                .collect(),
        };
        self.series.as_mut().expect("checked above").push(snapshot);
        sched.after(interval, NetEvent::SampleTick);
    }

    fn finalize(&mut self, end: SimTime) -> MetricsReport {
        let duration_s = end.duration_since(SimTime::ZERO).as_secs_f64();
        for node in 0..self.node_count() {
            let counters = &mut self.metrics.per_node[node];
            counters.collisions = self.modems[node].collisions();
            counters.half_duplex_losses = self.modems[node].half_duplex_losses();
            // Active-listening surcharge (§5.2 "power for waiting"): scales
            // with how many neighbours the protocol must monitor.
            let mw = self.maintenance[node].listen_mw_per_neighbor;
            if mw > 0.0 {
                let degree = self.audible_degree(node) as f64;
                self.meters[node].charge_joules(mw / 1_000.0 * degree * duration_s);
            }
        }
        let duration = end.duration_since(SimTime::ZERO);
        let totals = |f: &dyn Fn(&crate::metrics::NodeCounters) -> u64| -> u64 {
            self.metrics.per_node.iter().map(f).sum()
        };
        let data_bits_received = totals(&|c| c.data_bits_received);
        let total_energy_j: f64 = self.meters.iter().map(|m| m.total_joules(end)).sum();
        let avg_power_mw = self
            .meters
            .iter()
            .map(|m| m.average_power_mw(SimTime::ZERO, end))
            .sum::<f64>()
            / self.node_count() as f64;
        let channel_utilization = if duration.is_zero() {
            0.0
        } else {
            self.meters
                .iter()
                .map(|m| {
                    let (tx, rx, _) = m.dwell_times();
                    (tx + rx).as_secs_f64() / duration.as_secs_f64()
                })
                .sum::<f64>()
                / self.node_count() as f64
        };
        MetricsReport {
            protocol: self.macs[0].as_ref().map(|m| m.name()).unwrap_or("unknown"),
            nodes: self.node_count(),
            duration,
            throughput_kbps: uasn_sim::stats::kbps(data_bits_received, duration),
            data_bits_received,
            extra_bits_received: totals(&|c| c.extra_bits_received),
            sdus_received: totals(&|c| c.sdus_received),
            sdus_generated: totals(&|c| c.sdus_generated),
            sink_bits_received: self.metrics.sink_bits,
            avg_power_mw,
            channel_utilization,
            total_energy_j,
            overhead_bits: totals(&|c| c.overhead_bits()),
            control_bits_sent: totals(&|c| c.control_bits_sent),
            maintenance_bits: totals(&|c| c.maintenance_bits),
            retx_bits: totals(&|c| c.retx_bits),
            collisions: totals(&|c| c.collisions),
            half_duplex_losses: totals(&|c| c.half_duplex_losses),
            tx_dropped: totals(&|c| c.tx_dropped),
            unroutable: totals(&|c| c.unroutable),
            ttl_dropped: totals(&|c| c.ttl_dropped),
            retry_dropped: totals(&|c| c.retry_dropped),
            sdus_dropped: totals(&|c| c.sdus_dropped),
            e2e_delivered: self.metrics.e2e_hist.count(),
            mean_latency_s: self.metrics.latency.mean(),
            latency_p95_s: self.metrics.latency_hist.quantile(0.95),
            mean_concurrent_tx: self.metrics.concurrency.average(end),
            fairness_index: {
                let allocations: Vec<f64> = self
                    .metrics
                    .per_node
                    .iter()
                    .filter(|c| c.sdus_generated > 0)
                    .map(|c| c.origin_bits_delivered as f64)
                    .collect();
                uasn_sim::stats::jain_fairness(&allocations)
            },
            completion_time: self.metrics.completion_time,
            delivery_latency_us: self.metrics.delivery_hist.clone(),
            e2e_latency_us: self.metrics.e2e_hist.clone(),
            path_hops: self.metrics.path_hops.clone(),
        }
    }
}

impl uasn_sim::engine::World for NetworkWorld {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, sched: &mut Schedule<'_, NetEvent>) {
        self.now = now;
        match event {
            NetEvent::Start => {
                self.trace_run_info();
                for node in 0..self.node_count() {
                    self.with_mac(sched, node, |mac, ctx| mac.on_start(ctx));
                }
            }
            NetEvent::SlotStart(slot) => {
                for node in 0..self.node_count() {
                    self.with_mac(sched, node, |mac, ctx| mac.on_slot_start(ctx, slot));
                }
                sched.at(self.clock.start_of(slot + 1), NetEvent::SlotStart(slot + 1));
            }
            NetEvent::TrafficArrival { node, recurring } => {
                self.handle_traffic(sched, node as usize, recurring);
            }
            NetEvent::TxStart { node, token } => {
                self.handle_tx_start(sched, node as usize, token);
            }
            NetEvent::TxEnd { node, token } => {
                self.handle_tx_end(sched, node as usize, token);
            }
            NetEvent::RxStart { token } => self.handle_rx_start(token),
            NetEvent::RxEnd { token } => self.handle_rx_end(sched, token),
            NetEvent::Timer { node, token } => {
                // Only dispatch if still armed (re-arm cancels stale fires).
                if self.timers.remove(&(node, token.0)).is_some() {
                    self.with_mac(sched, node as usize, |mac, ctx| mac.on_timer(ctx, token));
                }
            }
            NetEvent::MobilityTick => self.handle_mobility_tick(sched),
            NetEvent::MaintenanceTick => self.handle_maintenance_tick(sched),
            NetEvent::SampleTick => self.handle_sample_tick(sched),
            NetEvent::NodeSlotStart { node, slot } => {
                self.with_mac(sched, node as usize, |mac, ctx| {
                    mac.on_slot_start(ctx, slot)
                });
                // Each node chases *its own* perception of the next
                // boundary; `to_global` clamps to the present, and the slot
                // index advances every firing, so progress is guaranteed.
                let next = self.to_global(node as usize, self.clock.start_of(slot + 1));
                sched.at(
                    next,
                    NetEvent::NodeSlotStart {
                        node,
                        slot: slot + 1,
                    },
                );
            }
            NetEvent::ResyncTick => self.handle_resync_tick(sched),
            NetEvent::RouteTimeout { sdu } => self.handle_route_timeout(sched, sdu),
            NetEvent::RouteAck { sdu } => self.handle_route_ack(sdu),
        }
    }

    fn should_stop(&self) -> bool {
        self.metrics.batch_complete()
    }
}

/// A fully built, runnable simulation.
///
/// # Examples
///
/// Running S-FAMA-shaped dummy MACs is exercised in the crate tests; real
/// protocols live in `uasn-ewmac` and `uasn-baselines`. Typical use:
///
/// ```no_run
/// use uasn_net::config::SimConfig;
/// use uasn_net::world::Simulation;
/// # fn factory(_: uasn_net::node::NodeId) -> Box<dyn uasn_net::mac::MacProtocol> { unimplemented!() }
///
/// let cfg = SimConfig::paper_default();
/// let sim = Simulation::new(cfg, &factory).expect("valid config");
/// let report = sim.run();
/// println!("throughput: {:.3} kbps", report.throughput_kbps);
/// ```
pub struct Simulation {
    engine: Engine<NetEvent>,
    world: NetworkWorld,
    horizon: SimTime,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("world", &self.world)
            .field("horizon", &self.horizon)
            .finish()
    }
}

impl Simulation {
    /// Builds the network: validates the config, places nodes, instantiates
    /// one MAC per node, installs oracle neighbour tables (standing in for
    /// the Hello phase — §4.3), charges initialisation costs, and seeds the
    /// event queue.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetworkError`] for invalid configs or topologies where
    /// some sensor has no uphill neighbour.
    pub fn new(cfg: SimConfig, factory: &MacFactory<'_>) -> Result<Self, BuildNetworkError> {
        cfg.validate()?;
        let seeds = SeedFactory::new(cfg.seed);
        let mut topo_rng = seeds.stream("topology", 0);
        let nodes: Vec<NodeInfo> = cfg.deployment.generate(
            &mut topo_rng,
            cfg.sensors,
            cfg.sinks,
            cfg.channel.max_range_m(),
        )?;
        let stranded = stranded_sensors(&nodes, cfg.channel.max_range_m());
        if !stranded.is_empty() {
            return Err(BuildNetworkError::Disconnected {
                stranded: stranded.len(),
            });
        }

        let n = nodes.len();
        let clock = SlotClock::with_guard(
            ModemSpec::new(cfg.bitrate_bps).tx_duration(cfg.control_bits),
            cfg.channel.max_propagation_delay(),
            cfg.slot_guard,
        );
        let spec = ModemSpec::new(cfg.bitrate_bps);

        let mut mobility_assign = seeds.stream("mobility-assign", 0);
        let mobility_models: Vec<MobilityModel> = nodes
            .iter()
            .map(|info| {
                if cfg.mobility.enabled && !info.is_sink() {
                    MobilityModel::random_paper_model(
                        &mut mobility_assign,
                        cfg.mobility.max_speed_ms,
                    )
                } else {
                    MobilityModel::Static
                }
            })
            .collect();

        let positions: Vec<Point> = nodes.iter().map(|i| i.position).collect();
        let roles: Vec<NodeRole> = nodes.iter().map(|i| i.role).collect();
        let mut macs: Vec<Option<Box<dyn MacProtocol>>> = (0..n)
            .map(|i| Some(factory(NodeId::new(i as u32))))
            .collect();

        // Oracle neighbour installation (the Hello phase). With the spatial
        // index enabled the scan visits only the transmitter's 27-cell
        // neighbourhood; candidates come back in ascending node order and
        // every one still passes the exact `is_audible` check, so the
        // installed tables are identical to the full O(N) scan's.
        let channel = cfg.channel.clone();
        let oracle_grid: Option<SpatialGrid> = if cfg.spatial_index {
            channel
                .index_cell_m()
                .map(|cell| SpatialGrid::build(cell, positions.as_slice()))
        } else {
            None
        };
        let audible_with_delays = |i: usize| -> Vec<(NodeId, SimDuration)> {
            let link = |j: usize| {
                (
                    NodeId::new(j as u32),
                    channel.propagation_delay(positions[i], positions[j]),
                )
            };
            match &oracle_grid {
                Some(grid) => {
                    let mut cand = Vec::new();
                    grid.candidates_into(positions[i], &mut cand);
                    cand.iter()
                        .map(|&j| j as usize)
                        .filter(|&j| j != i && channel.is_audible(positions[i], positions[j]))
                        .map(link)
                        .collect()
                }
                None => (0..n)
                    .filter(|&j| j != i && channel.is_audible(positions[i], positions[j]))
                    .map(link)
                    .collect(),
            }
        };
        let mut maintenance = Vec::with_capacity(n);
        let mut metrics = DeliveryMetrics::new(n);
        let mut meters: Vec<EnergyMeter> = (0..n)
            .map(|_| EnergyMeter::new(cfg.power, SimTime::ZERO))
            .collect();
        for i in 0..n {
            let mac = macs[i].as_mut().expect("just built");
            let profile = mac.maintenance();
            maintenance.push(profile);
            let one_hop = audible_with_delays(i);
            match profile.scope {
                NeighborInfoScope::None => {}
                NeighborInfoScope::OneHop => {
                    mac.install_neighbors(&one_hop);
                    let init_bits =
                        cfg.control_bits as u64 + one_hop.len() as u64 * ANNOUNCE_BITS_PER_ENTRY;
                    metrics.per_node[i].maintenance_bits += init_bits;
                    meters[i].charge_maintenance_bits(init_bits);
                }
                NeighborInfoScope::TwoHop => {
                    mac.install_neighbors(&one_hop);
                    let two_hop: Vec<(NodeId, Vec<(NodeId, SimDuration)>)> = one_hop
                        .iter()
                        .map(|&(j, _)| (j, audible_with_delays(j.index())))
                        .collect();
                    mac.install_two_hop(&two_hop);
                    // The node transmits one hello plus its own table; the
                    // two-hop view is assembled from neighbours' announcements.
                    let init_bits =
                        cfg.control_bits as u64 + one_hop.len() as u64 * ANNOUNCE_BITS_PER_ENTRY;
                    metrics.per_node[i].maintenance_bits += init_bits;
                    meters[i].charge_maintenance_bits(init_bits);
                }
            }
        }

        // Clock-model wiring. Under the (default) ideal model nothing here
        // draws RNG state, schedules events, or tells MACs anything, which
        // keeps golden traces byte-identical. Otherwise every node gets its
        // own drifting clock (independent "clock" streams, so enabling them
        // never perturbs topology/traffic/channel draws) and every MAC
        // learns the worst-case timing-error bound of the run: clock error
        // at both endpoints plus one delay-measurement noise half-width.
        let drifting = !cfg.clock.is_ideal();
        let clocks: Option<Vec<VirtualClock>> = drifting.then(|| {
            (0..n)
                .map(|i| VirtualClock::from_model(&cfg.clock, seeds.stream("clock", i as u64)))
                .collect()
        });
        if drifting {
            let bound = cfg.clock_error_bound() + cfg.clock_error_bound() + cfg.clock.meas_noise;
            for mac in macs.iter_mut() {
                mac.as_mut().expect("just built").install_clock_error(bound);
            }
        }
        let max_speed = if cfg.mobility.enabled {
            cfg.mobility.max_speed_ms
        } else {
            0.0
        };
        let sound_speed =
            cfg.channel.max_range_m() / cfg.channel.max_propagation_delay().as_secs_f64();
        let estimator = DelayEstimator::new(cfg.clock.meas_noise, max_speed, sound_speed);

        // Traffic setup. The legacy Poisson path keeps its own
        // `ArrivalStream` arithmetic untouched (byte-identity with
        // pre-routing builds); the heavy-traffic patterns ride the
        // `uasn-route` workload streams instead.
        let (traffic_stream, traffic_end) = match cfg.traffic {
            TrafficPattern::Poisson { offered_load_kbps } => (
                Some(ArrivalStream::poisson(per_sensor_rate(
                    offered_load_kbps,
                    cfg.data_bits,
                    cfg.sensors,
                ))),
                cfg.horizon(),
            ),
            TrafficPattern::Batch { window, .. } => (None, SimTime::ZERO + window),
            TrafficPattern::BurstyOnOff { .. } | TrafficPattern::Convergecast { .. } => {
                (None, cfg.horizon())
            }
        };
        let workload_stream = cfg.traffic.workload(cfg.data_bits, cfg.sensors);

        // Routing runtime. Only routed runs derive the "route" stream, so
        // `route: None` draws exactly the historical set of seed streams.
        let route = cfg.route.map(|rc| RouteRuntime {
            rng: seeds.stream("route", 0),
            hops: HashMap::new(),
            transport: rc.transport.map(TransportTable::new),
            cand_buf: Vec::new(),
            cfg: rc,
        });

        let positions = PositionTable::from_points(&positions);
        // The fan-out cache only consults the index on the fast path; the
        // reference path keeps its plain O(N) scan as the differential
        // baseline, so it never builds one.
        let link_cache = if cfg.fastpath && cfg.spatial_index {
            LinkBudgetCache::with_index(&channel, &positions)
        } else {
            LinkBudgetCache::new(&channel, n)
        };
        let mut world = NetworkWorld {
            clock,
            spec,
            channel,
            link_cache,
            now: SimTime::ZERO,
            roles,
            positions,
            mobility_models,
            modems: (0..n).map(|_| Modem::new()).collect(),
            meters,
            macs,
            mac_rngs: (0..n).map(|i| seeds.stream("mac", i as u64)).collect(),
            maintenance,
            channel_rng: seeds.stream("channel", 0),
            mobility_rng: seeds.stream("mobility", 0),
            traffic_rng: seeds.stream("traffic", 0),
            traffic_stream,
            workload_stream,
            route,
            metrics,
            delivered: std::collections::HashSet::new(),
            cmd_buf: Vec::new(),
            pending_tx: HashMap::new(),
            inflight_tx: HashMap::new(),
            pending_rx: HashMap::new(),
            timers: HashMap::new(),
            event_buf: Vec::new(),
            next_token: 0,
            next_sdu_id: 0,
            traffic_end,
            tracer: Tracer::disabled(),
            series: cfg.sample_interval.map(TimeSeries::new),
            clocks,
            estimator,
            meas_rng: seeds.stream("delay-meas", 0),
            clock_error: cfg.clock_error_bound(),
            clock_stats: ClockStats::default(),
            registry: MetricsRegistry::new(cfg.profile),
            verdicts: cfg.monitor.then(VerdictHistogram::new),
            cfg,
        };

        // Seed the event queue, pre-sized for the steady state: each
        // in-flight transmission pends ~2 events per audible receiver, plus
        // the periodic ticks and hello beacons.
        let mut engine = Engine::new().with_queue_capacity(128 + 16 * n);
        engine.seed_event(SimTime::ZERO, NetEvent::Start);
        if world.clocks.is_some() {
            // Drifting clocks: the shared boundary broadcast splits into
            // per-node events at each node's local reading of slot 0.
            for i in 0..n {
                let at = world.to_global(i, world.clock.start_of(0));
                engine.seed_event(
                    at,
                    NetEvent::NodeSlotStart {
                        node: i as u32,
                        slot: 0,
                    },
                );
            }
        } else {
            engine.seed_event(SimTime::ZERO, NetEvent::SlotStart(0));
        }
        if world.series.is_some() {
            // Seeded after Start/SlotStart(0) so the t = 0 snapshot sees the
            // state after the opening dispatches (FIFO at equal times).
            engine.seed_event(SimTime::ZERO, NetEvent::SampleTick);
        }
        if world.cfg.hello_init {
            // §4.3 Hello phase: staggered beacons in the opening slots so
            // every node measures its neighbours' delays from real packets.
            for i in 0..n {
                let token = world.next_token;
                world.next_token += 1;
                let me = NodeId::new(i as u32);
                let beacon = Frame::control(
                    crate::packet::FrameKind::Beacon,
                    me,
                    me,
                    world.cfg.control_bits,
                );
                world.pending_tx.insert(token, beacon);
                let at = SimTime::ZERO + SimDuration::from_micros(17_000 * i as u64 + 1_000);
                engine.seed_event(
                    at,
                    NetEvent::TxStart {
                        node: i as u32,
                        token,
                    },
                );
            }
        }
        match world.cfg.traffic {
            TrafficPattern::Poisson { .. } => {
                let stream = world.traffic_stream.expect("poisson stream");
                for i in 0..n {
                    if world.roles[i] == NodeRole::Sensor {
                        let first = stream.next_arrival(&mut world.traffic_rng, SimTime::ZERO);
                        if first < world.traffic_end {
                            engine.seed_event(
                                first,
                                NetEvent::TrafficArrival {
                                    node: i as u32,
                                    recurring: true,
                                },
                            );
                        }
                    }
                }
            }
            TrafficPattern::Batch {
                total_packets,
                window,
            } => {
                world.metrics.expect_batch(total_packets);
                let sensor_ids: Vec<u32> = (0..n)
                    .filter(|&i| world.roles[i] == NodeRole::Sensor)
                    .map(|i| i as u32)
                    .collect();
                use rand::Rng;
                for k in 0..total_packets {
                    let node = sensor_ids[k as usize % sensor_ids.len()];
                    let at = SimTime::ZERO
                        + SimDuration::from_secs_f64(
                            world
                                .traffic_rng
                                .gen_range(0.0..window.as_secs_f64().max(1e-6)),
                        );
                    engine.seed_event(
                        at,
                        NetEvent::TrafficArrival {
                            node,
                            recurring: false,
                        },
                    );
                }
            }
            TrafficPattern::BurstyOnOff { .. } | TrafficPattern::Convergecast { .. } => {
                let stream = world.workload_stream.expect("workload stream");
                for i in 0..n {
                    if world.roles[i] == NodeRole::Sensor {
                        let first_s = stream.next_arrival(&mut world.traffic_rng, 0.0);
                        let first = SimTime::ZERO + SimDuration::from_secs_f64(first_s);
                        if first < world.traffic_end {
                            engine.seed_event(
                                first,
                                NetEvent::TrafficArrival {
                                    node: i as u32,
                                    recurring: true,
                                },
                            );
                        }
                    }
                }
            }
        }
        if world.cfg.mobility.enabled {
            engine.seed_event(
                SimTime::ZERO + world.cfg.mobility.update_interval,
                NetEvent::MobilityTick,
            );
        }
        if world
            .maintenance
            .iter()
            .any(|p| p.periodic_refresh.is_some())
        {
            let period = world
                .maintenance
                .iter()
                .filter_map(|p| p.periodic_refresh)
                .min()
                .expect("checked above");
            engine.seed_event(SimTime::ZERO + period, NetEvent::MaintenanceTick);
        }
        if world.clocks.is_some() {
            if let Some(resync) = world.cfg.clock.resync {
                engine.seed_event(SimTime::ZERO + resync.period, NetEvent::ResyncTick);
            }
        }

        let horizon = if world.cfg.traffic.is_batch() {
            SimTime::ZERO + world.cfg.max_time
        } else {
            world.cfg.horizon()
        };
        Ok(Simulation {
            engine,
            world,
            horizon,
        })
    }

    /// Enables in-memory tracing at `level` (for tests and debugging).
    pub fn with_tracing(mut self, level: TraceLevel) -> Self {
        self.world.tracer = Tracer::capturing(level);
        self
    }

    /// Installs a fully configured tracer (e.g. one streaming JSONL to a
    /// file for offline auditing).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.world.tracer = tracer;
        self
    }

    /// The slot clock the run will use.
    pub fn slot_clock(&self) -> SlotClock {
        self.world.clock
    }

    /// Initial node positions (index = node id), in the world's
    /// struct-of-arrays layout.
    pub fn positions(&self) -> &PositionTable {
        &self.world.positions
    }

    /// Node roles (index = node id).
    pub fn roles(&self) -> &[NodeRole] {
        &self.world.roles
    }

    /// Runs to completion and reports.
    pub fn run(self) -> MetricsReport {
        self.run_full().report
    }

    /// Runs to completion, returning the report plus the captured trace.
    pub fn run_traced(self) -> (MetricsReport, Tracer) {
        let out = self.run_full();
        (out.report, out.tracer)
    }

    /// Runs to completion and returns everything the run produced: the
    /// metrics report, the tracer (and whatever its sinks captured), the
    /// time series when sampling was enabled, and the engine's profiling
    /// statistics.
    pub fn run_full(mut self) -> RunOutput {
        let (stats, engine_cost) = if self.world.cfg.profile {
            let (stats, cost) = self.engine.run_instrumented(&mut self.world, self.horizon);
            (stats, Some(cost))
        } else {
            (
                self.engine.run_profiled(&mut self.world, self.horizon),
                None,
            )
        };
        let end = match stats.stop_reason {
            StopReason::StoppedByWorld => self.engine.now(),
            _ => self.horizon.min(self.engine.now()),
        };
        let report = self.world.finalize(end);
        // Close out the sync-error record with one final per-node sample, so
        // even runs too short for a resync round report nonzero statistics.
        if let Some(clocks) = self.world.clocks.as_mut() {
            for clock in clocks.iter_mut() {
                let err = clock.error_at(end);
                self.world.clock_stats.record(err);
            }
        }
        let clock = self
            .world
            .clocks
            .is_some()
            .then(|| std::mem::take(&mut self.world.clock_stats));
        // Harvest the phy cache counters into the registry *after* the run
        // so the report carries the whole-run totals, then fold everything
        // into the profile. All of this is read-only with respect to the
        // simulation state, so it cannot perturb a subsequent run.
        let profile = engine_cost.map(|cost| {
            let cs = self.world.link_cache.stats();
            let reg = &mut self.world.registry;
            reg.add("phy.cache.hits", cs.hits);
            reg.add("phy.cache.misses", cs.misses);
            reg.add("phy.cache.invalidations", cs.invalidations);
            reg.add("phy.cache.cull_rejects", cs.cull_rejects);
            reg.add("phy.cache.audibility_rejects", cs.audibility_rejects);
            ProfileReport::single(cost, reg.take())
        });
        RunOutput {
            report,
            tracer: std::mem::take(&mut self.world.tracer),
            series: self.world.series.take(),
            stats,
            clock,
            profile,
            verdicts: self.world.verdicts.take(),
        }
    }
}

/// Everything one [`Simulation::run_full`] call produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The paper's measurement axes for the run.
    pub report: MetricsReport,
    /// The tracer (drained of the world; query its capture sinks).
    pub tracer: Tracer,
    /// The sampled time series, when
    /// [`SimConfig::sample_interval`](crate::config::SimConfig::sample_interval)
    /// was set.
    pub series: Option<TimeSeries>,
    /// Engine profiling: event counts per kind, queue depths, wall-clock.
    pub stats: RunStats,
    /// Sync-error statistics; `Some` iff the run used a non-ideal clock
    /// model.
    pub clock: Option<ClockStats>,
    /// Performance profile (per-event-kind wall-time attribution, cache
    /// hit rates, fan-out/queue-depth distributions); `Some` iff
    /// [`SimConfig::profile`](crate::config::SimConfig::profile) was set.
    pub profile: Option<ProfileReport>,
    /// Drop-forensics verdict histogram — one causal verdict per loss the
    /// run decided (modem-busy transmit drops, PER losses, unroutable
    /// SDUs, terminal MAC drops by reason); `Some` iff
    /// [`SimConfig::monitor`](crate::config::SimConfig::monitor) was set.
    pub verdicts: Option<VerdictHistogram>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FrameKind;

    /// A deliberately primitive MAC used to exercise the world plumbing:
    /// transmits the head-of-queue SDU directly at each slot start with
    /// probability 1, no handshake, no Ack.
    #[derive(Debug, Default)]
    struct BlastMac {
        queue: std::collections::VecDeque<Sdu>,
    }

    impl MacProtocol for BlastMac {
        fn name(&self) -> &'static str {
            "BLAST"
        }
        fn maintenance(&self) -> MaintenanceProfile {
            MaintenanceProfile::none()
        }
        fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, _slot: SlotIndex) {
            if let Some(sdu) = self.queue.pop_front() {
                let frame = Frame::data(FrameKind::Data, ctx.node_id(), sdu);
                ctx.send_frame_now(frame);
            }
        }
        fn on_enqueue(&mut self, _ctx: &mut MacContext<'_>, sdu: Sdu) {
            self.queue.push_back(sdu);
        }
        fn on_frame_received(&mut self, _ctx: &mut MacContext<'_>, _rx: &Reception<'_>) {}
        fn queue_len(&self) -> usize {
            self.queue.len()
        }
    }

    fn blast_factory(_: NodeId) -> Box<dyn MacProtocol> {
        Box::new(BlastMac::default())
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: false,
            ..SimConfig::paper_default()
        }
        .with_offered_load_kbps(0.3)
        .with_sim_time(SimDuration::from_secs(60))
    }

    #[test]
    fn builds_and_runs_with_dummy_mac() {
        let sim = Simulation::new(small_cfg(), &blast_factory).expect("builds");
        let report = sim.run();
        assert_eq!(report.protocol, "BLAST");
        assert_eq!(report.nodes, 12);
        assert!(report.sdus_generated > 0, "traffic flowed");
        // With no handshake some data should still land (sparse contention).
        assert!(report.data_bits_received > 0, "some deliveries");
        assert!(report.avg_power_mw > 0.0);
        assert_eq!(report.duration, SimDuration::from_secs(60));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulation::new(small_cfg().with_seed(7), &blast_factory)
            .unwrap()
            .run();
        let b = Simulation::new(small_cfg().with_seed(7), &blast_factory)
            .unwrap()
            .run();
        assert_eq!(a, b);
        let c = Simulation::new(small_cfg().with_seed(8), &blast_factory)
            .unwrap()
            .run();
        assert_ne!(a.sdus_generated, 0);
        // Different seed -> different topology/traffic; reports almost surely
        // differ in some counter.
        assert_ne!(a, c);
    }

    #[test]
    fn delivered_bits_never_exceed_sent_bits() {
        let report = Simulation::new(small_cfg(), &blast_factory).unwrap().run();
        assert!(report.data_bits_received <= report.sdus_generated * 2_048);
    }

    #[test]
    fn batch_mode_completes_or_times_out() {
        let cfg = SimConfig {
            sensors: 6,
            sinks: 2,
            forwarding: true,
            ..SimConfig::paper_default()
        }
        .with_batch_load_kbps(0.05);
        let sim = Simulation::new(cfg, &blast_factory).expect("builds");
        let report = sim.run();
        // Blast MAC has no retransmission: collisions may strand SDUs, so
        // completion is not guaranteed — but the run must terminate and the
        // completion time, if any, must lie within the cap.
        if let Some(t) = report.completion_time {
            assert!(t <= SimTime::ZERO + SimDuration::from_secs(3_000));
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = small_cfg().with_sensors(0);
        assert!(Simulation::new(cfg, &blast_factory).is_err());
    }

    #[test]
    fn tracing_captures_transmissions() {
        let sim = Simulation::new(small_cfg(), &blast_factory)
            .unwrap()
            .with_tracing(TraceLevel::Debug);
        let (_report, tracer) = sim.run_traced();
        assert!(tracer.with_tag("tx").count() > 0);
    }

    #[test]
    fn forwarding_moves_bits_toward_sinks() {
        let cfg = SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: true,
            ..SimConfig::paper_default()
        }
        .with_offered_load_kbps(0.2)
        .with_sim_time(SimDuration::from_secs(120));
        let report = Simulation::new(cfg, &blast_factory).unwrap().run();
        // some SDUs should reach the surface even with the dumb MAC
        assert!(report.sink_bits_received > 0);
    }

    #[test]
    fn hello_init_transmits_beacons_and_learns() {
        let cfg = SimConfig {
            sensors: 8,
            sinks: 2,
            forwarding: false,
            hello_init: true,
            ..SimConfig::paper_default()
        }
        .with_offered_load_kbps(0.3)
        .with_sim_time(SimDuration::from_secs(60));
        let sim = Simulation::new(cfg, &blast_factory)
            .unwrap()
            .with_tracing(TraceLevel::Debug);
        let (report, tracer) = sim.run_traced();
        // One beacon per node went on the air within the opening second.
        let beacons: Vec<_> = tracer
            .with_tag("tx")
            .filter(|r| r.message.starts_with("Beacon"))
            .collect();
        assert_eq!(beacons.len(), 10, "one hello per node");
        assert!(beacons.iter().all(|r| r.time < SimTime::from_secs(2)));
        // Beacon bits are charged as control traffic.
        assert!(report.control_bits_sent >= 10 * 64);
    }

    #[test]
    fn oracle_and_hello_runs_charge_the_same_init_maintenance() {
        // The init charge models the hello broadcast either way; only the
        // on-air beacons differ.
        let base = SimConfig {
            sensors: 8,
            sinks: 2,
            forwarding: false,
            ..SimConfig::paper_default()
        }
        .with_offered_load_kbps(0.3)
        .with_sim_time(SimDuration::from_secs(30));
        let with_hello = SimConfig {
            hello_init: true,
            ..base.clone()
        };
        let a = Simulation::new(base, &blast_factory).unwrap().run();
        let b = Simulation::new(with_hello, &blast_factory).unwrap().run();
        // Blast MAC has a None maintenance scope: zero charge either way.
        assert_eq!(a.maintenance_bits, 0);
        assert_eq!(b.maintenance_bits, 0);
    }

    #[test]
    fn sampler_emits_exactly_horizon_over_interval_snapshots() {
        let cfg = small_cfg().with_sample_interval(SimDuration::from_secs(5));
        let sim = Simulation::new(cfg, &blast_factory).expect("builds");
        let out = sim.run_full();
        let series = out.series.expect("sampling enabled");
        // 60 s horizon, 5 s interval, horizon-exclusive: 12 snapshots.
        assert_eq!(series.len(), 12);
        assert_eq!(series.snapshots[0].time, SimTime::ZERO);
        assert_eq!(series.snapshots[11].time, SimTime::from_secs(55));
        assert_eq!(series.snapshots[0].nodes.len(), 12);
        // The dummy MAC never overrides state_label.
        assert!(series
            .snapshots
            .iter()
            .all(|s| s.nodes.iter().all(|n| n.mac_state == "-")));
        // Counters are cumulative, so they never decrease.
        assert!(series
            .snapshots
            .windows(2)
            .all(|w| w[0].sdus_generated <= w[1].sdus_generated));
        assert!(out
            .stats
            .kind_counts
            .iter()
            .any(|&(k, c)| k == "sample" && c == 12));
    }

    #[test]
    fn fastpath_and_reference_runs_are_identical() {
        // The whole optimisation contract in one assertion: caching and
        // culling may not change any measured number.
        for cfg in [
            small_cfg(),
            small_cfg().with_mobility(0.5),
            SimConfig {
                hello_init: true,
                forwarding: true,
                ..small_cfg()
            },
        ] {
            let fast = Simulation::new(cfg.clone().with_fastpath(true), &blast_factory)
                .unwrap()
                .run();
            let reference = Simulation::new(cfg.with_fastpath(false), &blast_factory)
                .unwrap()
                .run();
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn sampling_does_not_perturb_the_run() {
        let plain = Simulation::new(small_cfg(), &blast_factory).unwrap().run();
        let sampled = Simulation::new(
            small_cfg().with_sample_interval(SimDuration::from_secs(1)),
            &blast_factory,
        )
        .unwrap()
        .run();
        assert_eq!(plain, sampled);
    }

    #[test]
    fn run_full_reports_engine_profile() {
        let sim = Simulation::new(small_cfg(), &blast_factory).unwrap();
        let out = sim.run_full();
        assert_eq!(out.stats.stop_reason, StopReason::HorizonReached);
        assert!(out.stats.events_processed > 0);
        assert!(out.stats.peak_queue_depth > 0);
        let count = |label: &str| {
            out.stats
                .kind_counts
                .iter()
                .find(|&&(k, _)| k == label)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert_eq!(count("start"), 1);
        assert!(count("slot-start") > 0);
        assert_eq!(count("tx-start"), count("tx-end"));
        // Profiling is off by default: no report, nothing recorded.
        assert!(out.profile.is_none());
    }

    #[test]
    fn profiling_does_not_perturb_the_run() {
        // The observability contract in one assertion: with profiling on,
        // the trace stream, the report, and every deterministic engine
        // statistic are byte-for-byte what the unprofiled run produces.
        for cfg in [small_cfg(), small_cfg().with_fastpath(false)] {
            let run = |profile: bool| {
                Simulation::new(cfg.clone().with_profiling(profile), &blast_factory)
                    .unwrap()
                    .with_tracing(TraceLevel::Debug)
                    .run_full()
            };
            let plain = run(false);
            let profiled = run(true);
            assert_eq!(plain.report, profiled.report);
            assert_eq!(
                plain.stats.events_processed,
                profiled.stats.events_processed
            );
            assert_eq!(plain.stats.sim_end, profiled.stats.sim_end);
            assert_eq!(plain.stats.stop_reason, profiled.stats.stop_reason);
            assert_eq!(
                plain.stats.peak_queue_depth,
                profiled.stats.peak_queue_depth
            );
            assert_eq!(plain.stats.kind_counts, profiled.stats.kind_counts);
            let jsonl = |out: &RunOutput| {
                out.tracer
                    .records()
                    .iter()
                    .map(|r| r.to_json_line())
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(jsonl(&plain), jsonl(&profiled));
            assert!(plain.profile.is_none());
            assert!(profiled.profile.is_some());
        }
    }

    #[test]
    fn monitoring_does_not_perturb_the_run() {
        // Same contract as profiling: drop forensics only observes losses
        // the simulation already decided, so with monitoring on the trace
        // stream, the report, and the engine statistics are byte-for-byte
        // what the unmonitored run produces — plus a verdict histogram.
        for cfg in [small_cfg(), small_cfg().with_fastpath(false)] {
            let run = |monitor: bool| {
                Simulation::new(cfg.clone().with_monitoring(monitor), &blast_factory)
                    .unwrap()
                    .with_tracing(TraceLevel::Debug)
                    .run_full()
            };
            let plain = run(false);
            let monitored = run(true);
            assert_eq!(plain.report, monitored.report);
            assert_eq!(
                plain.stats.events_processed,
                monitored.stats.events_processed
            );
            assert_eq!(plain.stats.sim_end, monitored.stats.sim_end);
            assert_eq!(plain.stats.stop_reason, monitored.stats.stop_reason);
            assert_eq!(plain.stats.kind_counts, monitored.stats.kind_counts);
            let jsonl = |out: &RunOutput| {
                out.tracer
                    .records()
                    .iter()
                    .map(|r| r.to_json_line())
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(jsonl(&plain), jsonl(&monitored));
            assert!(plain.verdicts.is_none());
            // Every counted loss reconciles against the delivery counters:
            // the verdict histogram is the same totals, causally split.
            let verdicts = monitored.verdicts.expect("monitoring enabled");
            assert_eq!(
                verdicts.count(DropVerdict::ModemBusy),
                monitored.report.tx_dropped
            );
            assert_eq!(
                verdicts.count(DropVerdict::NoAudibleReceiver),
                monitored.report.unroutable
            );
            assert_eq!(
                verdicts.count(DropVerdict::MacDrop)
                    + verdicts.count(DropVerdict::HandshakeTimeout)
                    + verdicts.count(DropVerdict::QueueOverflow),
                monitored.report.sdus_dropped
            );
        }
    }

    #[test]
    fn profiled_run_attributes_costs_and_cache_traffic() {
        // Long enough that every sensor transmits more than once, so the
        // link cache sees row *re*-use (hits), not just the initial builds.
        let cfg = small_cfg()
            .with_sim_time(SimDuration::from_secs(300))
            .with_profiling(true);
        let out = Simulation::new(cfg, &blast_factory).unwrap().run_full();
        let profile = out.profile.expect("profiling enabled");
        assert_eq!(profile.runs, 1);
        // Engine attribution: sampled handler costs cover the hot kinds.
        assert!(profile.engine.sampled_events > 0);
        let sampled: u64 = profile.engine.handler.iter().map(|k| k.1.sampled).sum();
        assert_eq!(sampled, profile.engine.sampled_events);
        assert!(profile
            .engine
            .handler
            .iter()
            .any(|&(k, _)| k == "slot-start"));
        // Registry content: fan-out distribution and cache counters.
        let snap = &profile.metrics;
        let fanout = snap
            .hists
            .iter()
            .find(|&&(n, _)| n == "net.fanout")
            .map(|(_, h)| h)
            .expect("fan-out histogram");
        assert!(fanout.count() > 0);
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        // The default config runs the fastpath, so every tx after the first
        // hits the cached row and the static topology never invalidates.
        assert!(counter("phy.cache.misses") > 0);
        assert!(counter("phy.cache.hits") > 0);
        assert_eq!(counter("phy.cache.invalidations"), 0);
        // Queue depths were observed on every enqueue.
        assert!(snap.hists.iter().any(|&(n, _)| n == "net.queue_depth"));
        // And the report survives its own JSON encoding.
        let round = ProfileReport::from_json(&profile.to_json()).expect("round trip");
        assert_eq!(round.to_json().to_json(), profile.to_json().to_json());
    }

    #[test]
    fn slot_clock_matches_paper() {
        let sim = Simulation::new(small_cfg(), &blast_factory).unwrap();
        let clock = sim.slot_clock();
        assert_eq!(clock.tau_max(), SimDuration::from_secs(1));
        assert_eq!(clock.omega().as_micros(), 5_333);
    }

    #[test]
    fn ideal_clock_does_not_perturb_the_run() {
        use uasn_clock::ClockModelConfig;
        let plain = Simulation::new(small_cfg(), &blast_factory).unwrap().run();
        let explicit = Simulation::new(
            small_cfg()
                .with_clock_model(ClockModelConfig::ideal())
                .with_slot_guard(SimDuration::ZERO),
            &blast_factory,
        )
        .unwrap()
        .run();
        assert_eq!(plain, explicit);
        // Ideal runs carry no sync statistics and no clock events.
        let out = Simulation::new(small_cfg(), &blast_factory)
            .unwrap()
            .run_full();
        assert!(out.clock.is_none());
        assert!(!out
            .stats
            .kind_counts
            .iter()
            .any(|&(k, _)| k == "node-slot-start" || k == "resync"));
    }

    #[test]
    fn slot_guard_lengthens_the_slots() {
        let sim = Simulation::new(
            small_cfg().with_slot_guard(SimDuration::from_millis(50)),
            &blast_factory,
        )
        .unwrap();
        let clock = sim.slot_clock();
        assert_eq!(clock.guard(), SimDuration::from_millis(50));
        assert_eq!(clock.slot_len().as_micros(), 5_333 + 1_000_000 + 50_000);
    }

    #[test]
    fn drifting_clocks_run_deterministically_and_report_sync_stats() {
        let cfg = small_cfg()
            .with_clock_drift(100.0)
            .with_slot_guard(SimDuration::from_millis(25));
        let a = Simulation::new(cfg.clone(), &blast_factory)
            .unwrap()
            .run_full();
        let b = Simulation::new(cfg, &blast_factory).unwrap().run_full();
        assert_eq!(a.report, b.report);
        let stats = a.clock.expect("drifting run reports sync stats");
        // 12 nodes sampled at least once (the end-of-run sample).
        assert!(stats.samples >= 12, "samples = {}", stats.samples);
        assert!(stats.max_abs_error_us > 0);
        assert!(stats.mean_abs_error_us() > 0.0);
        // The boundary broadcast split into per-node slot events.
        let count = |label: &str| {
            a.stats
                .kind_counts
                .iter()
                .find(|&&(k, _)| k == label)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert_eq!(count("slot-start"), 0);
        assert!(count("node-slot-start") > 0);
        // Traffic still flows end to end under drift + guard.
        assert!(a.report.sdus_generated > 0);
        assert!(a.report.data_bits_received > 0);
    }

    #[test]
    fn greedy_routing_twins_legacy_forwarding() {
        // The byte-identity contract's dynamic half: a greedy routed run
        // makes exactly the per-hop decisions of the legacy forwarding
        // pipeline (same candidate ranking, no RNG draws), so every
        // delivery counter matches; only the new path-length histogram —
        // which legacy runs never record — differs.
        let base = SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: true,
            ..SimConfig::paper_default()
        }
        .with_offered_load_kbps(0.2)
        .with_sim_time(SimDuration::from_secs(120));
        let legacy = Simulation::new(base.clone(), &blast_factory).unwrap().run();
        let routed = Simulation::new(base.with_routing(), &blast_factory)
            .unwrap()
            .run();
        assert_eq!(legacy.sdus_generated, routed.sdus_generated);
        assert_eq!(legacy.sdus_received, routed.sdus_received);
        assert_eq!(legacy.sink_bits_received, routed.sink_bits_received);
        assert_eq!(legacy.e2e_delivered, routed.e2e_delivered);
        assert_eq!(legacy.throughput_kbps, routed.throughput_kbps);
        assert_eq!(legacy.unroutable, routed.unroutable);
        assert!(routed.e2e_delivered > 0, "traffic reached the sinks");
        assert_eq!(legacy.path_hops.count(), 0);
        assert_eq!(routed.path_hops.count(), routed.e2e_delivered);
        assert_eq!(legacy.ttl_dropped, 0);
        assert_eq!(routed.ttl_dropped, 0, "DEFAULT_TTL dwarfs real paths");
    }

    #[test]
    fn routed_runs_are_deterministic_and_traced() {
        let cfg = SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: true,
            ..SimConfig::paper_default()
        }
        .with_convergecast(30.0, 10.0)
        .with_route(
            uasn_route::RouteConfig::reliable()
                .with_policy(uasn_route::ForwardPolicy::RandomShallowest { k: 2 }),
        )
        .with_sim_time(SimDuration::from_secs(120));
        let run = || {
            Simulation::new(cfg.clone(), &blast_factory)
                .unwrap()
                .with_tracing(TraceLevel::Info)
                .run_traced()
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb);
        let jsonl = |t: &Tracer| {
            t.records()
                .iter()
                .map(|r| r.to_json_line())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(jsonl(&ta), jsonl(&tb), "trace bytes are seed-determined");
        // The run-info record advertises the routing configuration…
        let info = ta.with_tag("run-info").next().expect("run-info");
        let get = |key: &str| {
            info.fields
                .iter()
                .find(|(k, _)| k.as_ref() == key)
                .map(|(_, v)| v.to_string())
        };
        assert_eq!(get("route_policy").as_deref(), Some("random-shallowest"));
        assert!(get("route_ttl").is_some());
        assert_eq!(get("transport").as_deref(), Some("true"));
        // …and the new record kinds appear.
        assert!(ta.with_tag("route").count() > 0, "origin selections traced");
        assert!(ta.with_tag("e2e-deliver").count() > 0, "deliveries traced");
        assert!(ra.e2e_delivered > 0);
        assert!(ra.e2e_delivery_ratio() > 0.0 && ra.e2e_delivery_ratio() <= 1.0);
    }

    #[test]
    fn routed_verdicts_reconcile_with_counters() {
        // A TTL too small for the column plus a tight transport budget
        // forces both new loss classes; monitoring must attribute every
        // one of them, and the path-length histogram must respect the TTL.
        let mut rc = uasn_route::RouteConfig::greedy().with_ttl(2);
        rc.transport = Some(uasn_route::TransportConfig {
            retry_budget: 1,
            base_timeout_us: 5_000_000,
        });
        let cfg = SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: true,
            ..SimConfig::paper_default()
        }
        .with_convergecast(20.0, 10.0)
        .with_route(rc)
        .with_monitoring(true)
        .with_sim_time(SimDuration::from_secs(120));
        let out = Simulation::new(cfg, &blast_factory).unwrap().run_full();
        let verdicts = out.verdicts.expect("monitoring enabled");
        assert_eq!(
            verdicts.count(DropVerdict::TtlExhausted),
            out.report.ttl_dropped
        );
        assert_eq!(
            verdicts.count(DropVerdict::RetryBudgetExhausted),
            out.report.retry_dropped
        );
        assert_eq!(
            verdicts.count(DropVerdict::NoAudibleReceiver),
            out.report.unroutable
        );
        assert!(out.report.ttl_dropped > 0, "ttl 2 truncates deep paths");
        assert!(out.report.retry_dropped > 0, "budget 1 exhausts");
        if let Some(max) = out.report.path_hops.max() {
            assert!(max <= 2, "no delivered path exceeds the TTL, got {max}");
        }
        // Transport events actually fired.
        let count = |label: &str| {
            out.stats
                .kind_counts
                .iter()
                .find(|&&(k, _)| k == label)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert!(count("route-timeout") > 0);
        assert!(count("route-ack") > 0);
    }

    #[test]
    fn bursty_traffic_flows_and_is_deterministic() {
        let cfg = SimConfig {
            sensors: 10,
            sinks: 2,
            forwarding: false,
            ..SimConfig::paper_default()
        }
        .with_bursty_load_kbps(0.3, 5.0, 15.0)
        .with_sim_time(SimDuration::from_secs(60));
        let a = Simulation::new(cfg.clone(), &blast_factory).unwrap().run();
        let b = Simulation::new(cfg, &blast_factory).unwrap().run();
        assert_eq!(a, b);
        assert!(a.sdus_generated > 0, "bursts inject traffic");
        assert!(a.data_bits_received > 0);
    }

    #[test]
    fn drifted_run_info_advertises_the_timing_budget() {
        let sim = Simulation::new(small_cfg().with_clock_drift(50.0), &blast_factory)
            .unwrap()
            .with_tracing(TraceLevel::Info);
        let (_report, tracer) = sim.run_traced();
        let info = tracer.with_tag("run-info").next().expect("run-info record");
        let get = |key: &str| {
            info.fields
                .iter()
                .find(|(k, _)| k.as_ref() == key)
                .map(|(_, v)| v.to_string())
        };
        assert_eq!(get("guard_us").as_deref(), Some("0"));
        let err: u64 = get("clock_error_us").expect("present").parse().unwrap();
        assert!(err > 0, "nonzero drift must advertise a nonzero error");
        // Ideal runs keep the historical record layout.
        let sim = Simulation::new(small_cfg(), &blast_factory)
            .unwrap()
            .with_tracing(TraceLevel::Info);
        let (_report, tracer) = sim.run_traced();
        let info = tracer.with_tag("run-info").next().expect("run-info record");
        assert!(!info
            .fields
            .iter()
            .any(|(k, _)| k.as_ref() == "clock_error_us"));
    }
}
