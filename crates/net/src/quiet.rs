//! The quiet schedule: when a sensor must hold its tongue.
//!
//! Figure 3's "Quiet" state: a sensor that overhears a neighbour negotiation
//! refrains from starting its own (slot-boundary) transmissions until the
//! negotiated exchange is over. The schedule is a set of merged half-open
//! intervals `[from, until)` over simulation time. Extra-communication
//! packets deliberately bypass it — they are the sanctioned use of exactly
//! these windows. Shared by every slotted protocol in the workspace.

use uasn_sim::time::SimTime;

/// A set of merged quiet intervals.
///
/// # Examples
///
/// ```
/// use uasn_net::quiet::QuietSchedule;
/// use uasn_sim::time::SimTime;
///
/// let mut q = QuietSchedule::new();
/// q.add(SimTime::from_secs(2), SimTime::from_secs(5));
/// assert!(!q.is_quiet(SimTime::from_secs(1)));
/// assert!(q.is_quiet(SimTime::from_secs(3)));
/// assert!(!q.is_quiet(SimTime::from_secs(5))); // half-open
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuietSchedule {
    /// Sorted, non-overlapping `[from, until)` intervals.
    intervals: Vec<(SimTime, SimTime)>,
}

impl QuietSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        QuietSchedule::default()
    }

    /// Adds a quiet interval `[from, until)`, merging overlaps.
    ///
    /// Empty or inverted intervals are ignored.
    pub fn add(&mut self, from: SimTime, until: SimTime) {
        if until <= from {
            return;
        }
        let mut merged = (from, until);
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        for &(s, e) in &self.intervals {
            if e < merged.0 || s > merged.1 {
                out.push((s, e));
            } else {
                merged.0 = merged.0.min(s);
                merged.1 = merged.1.max(e);
            }
        }
        out.push(merged);
        out.sort();
        self.intervals = out;
    }

    /// Whether `t` falls in a quiet interval.
    pub fn is_quiet(&self, t: SimTime) -> bool {
        self.intervals.iter().any(|&(s, e)| s <= t && t < e)
    }

    /// Whether any part of `[from, until)` is quiet.
    pub fn overlaps(&self, from: SimTime, until: SimTime) -> bool {
        if until <= from {
            return false;
        }
        self.intervals.iter().any(|&(s, e)| s < until && from < e)
    }

    /// The end of the quiet period covering `t`, if any.
    pub fn quiet_until(&self, t: SimTime) -> Option<SimTime> {
        self.intervals
            .iter()
            .find(|&&(s, e)| s <= t && t < e)
            .map(|&(_, e)| e)
    }

    /// Drops intervals that ended at or before `now`; returns how many were
    /// pruned.
    pub fn prune(&mut self, now: SimTime) -> usize {
        let before = self.intervals.len();
        self.intervals.retain(|&(_, e)| e > now);
        before - self.intervals.len()
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether no quiet intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_is_never_quiet() {
        let q = QuietSchedule::new();
        assert!(!q.is_quiet(t(0)));
        assert!(!q.overlaps(t(0), t(100)));
        assert!(q.is_empty());
    }

    #[test]
    fn single_interval_half_open() {
        let mut q = QuietSchedule::new();
        q.add(t(2), t(5));
        assert!(q.is_quiet(t(2)));
        assert!(q.is_quiet(t(4)));
        assert!(!q.is_quiet(t(5)));
        assert_eq!(q.quiet_until(t(3)), Some(t(5)));
        assert_eq!(q.quiet_until(t(5)), None);
    }

    #[test]
    fn overlapping_intervals_merge() {
        let mut q = QuietSchedule::new();
        q.add(t(2), t(5));
        q.add(t(4), t(8));
        q.add(t(8), t(9)); // touching merges too
        assert_eq!(q.len(), 1);
        assert_eq!(q.quiet_until(t(2)), Some(t(9)));
    }

    #[test]
    fn disjoint_intervals_stay_separate() {
        let mut q = QuietSchedule::new();
        q.add(t(1), t(2));
        q.add(t(5), t(6));
        assert_eq!(q.len(), 2);
        assert!(!q.is_quiet(t(3)));
        assert!(q.overlaps(t(0), t(10)));
        assert!(!q.overlaps(t(2), t(5)));
        assert!(q.overlaps(t(1), t(2)));
    }

    #[test]
    fn inverted_and_empty_intervals_ignored() {
        let mut q = QuietSchedule::new();
        q.add(t(5), t(5));
        q.add(t(7), t(3));
        assert!(q.is_empty());
        assert!(!q.overlaps(t(5), t(5)));
    }

    #[test]
    fn prune_drops_finished_intervals() {
        let mut q = QuietSchedule::new();
        q.add(t(1), t(2));
        q.add(t(3), t(4));
        q.add(t(5), t(10));
        assert_eq!(q.prune(t(4)), 2);
        assert_eq!(q.len(), 1);
        assert!(q.is_quiet(t(6)));
    }

    #[test]
    fn merge_across_many() {
        let mut q = QuietSchedule::new();
        for s in (0..10).step_by(2) {
            q.add(t(s), t(s + 1));
        }
        assert_eq!(q.len(), 5);
        q.add(t(0), t(10));
        assert_eq!(q.len(), 1);
    }
}
