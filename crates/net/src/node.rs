//! Node identity and static node descriptors.

use std::fmt;

use uasn_phy::geometry::Point;
use uasn_phy::mobility::MobilityModel;

/// Index of a node in the network (dense, 0-based).
///
/// # Examples
///
/// ```
/// use uasn_net::node::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Role of a node in the data-gathering topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeRole {
    /// An ordinary sensing node: generates and forwards traffic.
    #[default]
    Sensor,
    /// A surface sink: terminates traffic, generates none.
    Sink,
}

/// Static description of one deployed node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeInfo {
    /// The node's id.
    pub id: NodeId,
    /// Initial position.
    pub position: Point,
    /// Sensor or sink.
    pub role: NodeRole,
    /// How the node drifts during the run.
    pub mobility: MobilityModel,
}

impl NodeInfo {
    /// Creates a static (non-drifting) node.
    pub fn anchored(id: NodeId, position: Point, role: NodeRole) -> Self {
        NodeInfo {
            id,
            position,
            role,
            mobility: MobilityModel::Static,
        }
    }

    /// Whether this node is a surface sink.
    pub fn is_sink(&self) -> bool {
        self.role == NodeRole::Sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn anchored_node_is_static() {
        let n = NodeInfo::anchored(NodeId::new(0), Point::surface(0.0, 0.0), NodeRole::Sink);
        assert!(n.is_sink());
        assert!(!n.mobility.is_mobile());
    }

    #[test]
    fn sensor_is_not_sink() {
        let n = NodeInfo::anchored(
            NodeId::new(1),
            Point::new(0.0, 0.0, 500.0),
            NodeRole::Sensor,
        );
        assert!(!n.is_sink());
    }
}
