//! The MAC protocol interface.
//!
//! Protocols (EW-MAC and the baselines) are event-driven state machines
//! plugged into the network simulator through [`MacProtocol`]. The simulator
//! calls them back on slot boundaries, frame receptions/completions, timer
//! expiry, and traffic arrival; protocols respond by queueing
//! [`MacCommand`]s through the [`MacContext`] handle (send a frame at an
//! instant, arm or cancel a timer, charge maintenance cost).
//!
//! The split keeps protocols pure state machines — trivially unit-testable
//! with a scripted context — while the simulator owns physics, collisions,
//! energy, and metrics.

use std::fmt;

use rand::rngs::StdRng;

use uasn_phy::modem::ModemSpec;
use uasn_sim::time::{SimDuration, SimTime};

use crate::node::NodeId;
use crate::packet::{Frame, Sdu};
use crate::slots::{SlotClock, SlotIndex};

/// MAC-chosen identifier for a timer (unique per node, per protocol's own
/// numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// What a protocol asks the simulator to do.
#[derive(Debug, Clone, PartialEq)]
pub enum MacCommand {
    /// Transmit `frame`, starting at `at` (≥ now). The simulator stamps the
    /// frame timestamp and handles propagation/collisions. If the node's
    /// modem is still busy at `at`, the frame is dropped and counted.
    SendFrame {
        /// The frame to send.
        frame: Frame,
        /// Transmit start instant.
        at: SimTime,
    },
    /// Arm a timer that fires [`MacProtocol::on_timer`] at `at`.
    SetTimer {
        /// Expiry instant.
        at: SimTime,
        /// Token handed back on expiry.
        token: TimerToken,
    },
    /// Cancel a previously armed timer (no-op if already fired).
    CancelTimer {
        /// Token of the timer to cancel.
        token: TimerToken,
    },
    /// Charge `bits` of neighbour-maintenance traffic/storage to this node
    /// (overhead + energy accounting, §5.3).
    ChargeMaintenance {
        /// Maintenance bits.
        bits: u64,
    },
    /// Report that the protocol gave up on an SDU; the simulator uses this
    /// for loss accounting and batch termination.
    SduDropped {
        /// The dropped SDU's id.
        id: u64,
        /// Why the protocol gave up.
        reason: DropReason,
    },
}

/// Why a MAC protocol terminally gave up on an SDU — the causal
/// classification behind the `sdu-drop` trace event and the drop-forensics
/// verdict histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The retry budget ran out with the last failure in the data/ack
    /// phase: the handshake succeeded but the data never got acknowledged.
    RetryExhausted,
    /// The retry budget ran out with the last failure in the handshake
    /// phase: the peer never answered (no CTS / lost contention).
    HandshakeTimeout,
    /// The SDU was refused at queue admission (bounded-queue protocols).
    QueueOverflow,
}

impl DropReason {
    /// Stable label used in trace `reason` fields.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::RetryExhausted => "retry-exhausted",
            DropReason::HandshakeTimeout => "handshake-timeout",
            DropReason::QueueOverflow => "queue-overflow",
        }
    }
}

/// How much neighbour state a protocol maintains — drives the paper's §5.3
/// overhead/energy accounting, charged by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceProfile {
    /// Neighbour-information scope.
    pub scope: NeighborInfoScope,
    /// Extra bits piggybacked on every transmitted frame (timestamps,
    /// delay announcements — §4.3 "added to all packets").
    pub piggyback_bits: u64,
    /// Period of table re-broadcast, if the protocol refreshes its tables
    /// proactively (ROPA/CS-MAC two-hop refresh). `None` = reactive only.
    pub periodic_refresh: Option<SimDuration>,
    /// Active-listening surcharge, milliwatts per audible neighbour: the
    /// continuous cost of monitoring other nodes' exchanges for
    /// opportunistic windows (§5.2's "power for waiting"). Protocols that
    /// track every neighbour's schedule (two-hop designs) pay much more
    /// than ones that only react to their own failed contentions.
    pub listen_mw_per_neighbor: f64,
}

/// Scope of maintained neighbour information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborInfoScope {
    /// No tables at all (S-FAMA).
    None,
    /// One-hop delays only (EW-MAC).
    OneHop,
    /// One-hop plus each neighbour's neighbourhood (ROPA, CS-MAC).
    TwoHop,
}

impl MaintenanceProfile {
    /// The free profile (S-FAMA: "does not require additional computation
    /// or storage").
    pub fn none() -> Self {
        MaintenanceProfile {
            scope: NeighborInfoScope::None,
            piggyback_bits: 0,
            periodic_refresh: None,
            listen_mw_per_neighbor: 0.0,
        }
    }
}

/// A successfully decoded reception, as presented to the protocol.
///
/// Overheard frames (addressed to someone else) are delivered too — the
/// protocols' core mechanisms depend on overhearing.
#[derive(Debug, Clone, PartialEq)]
pub struct Reception<'a> {
    /// The decoded frame.
    pub frame: &'a Frame,
    /// When the first bit arrived.
    pub arrival_start: SimTime,
    /// Measured propagation delay (`arrival_start − frame.timestamp`) — the
    /// paper's §4.3 delay-learning input.
    pub prop_delay: SimDuration,
}

impl Reception<'_> {
    /// Whether the frame was addressed to `me`.
    pub fn addressed_to(&self, me: NodeId) -> bool {
        self.frame.dst == me
    }
}

/// The per-callback handle protocols use to act on the world.
#[derive(Debug)]
pub struct MacContext<'a> {
    now: SimTime,
    node: NodeId,
    clock: SlotClock,
    spec: ModemSpec,
    control_bits: u32,
    rng: &'a mut StdRng,
    commands: &'a mut Vec<MacCommand>,
}

impl<'a> MacContext<'a> {
    /// Creates a context (called by the simulator, and by protocol unit
    /// tests scripting a node directly).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        now: SimTime,
        node: NodeId,
        clock: SlotClock,
        spec: ModemSpec,
        control_bits: u32,
        rng: &'a mut StdRng,
        commands: &'a mut Vec<MacCommand>,
    ) -> Self {
        MacContext {
            now,
            node,
            clock,
            spec,
            control_bits,
            rng,
            commands,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The shared slot clock.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// The slot containing `now`.
    pub fn current_slot(&self) -> SlotIndex {
        self.clock.slot_of(self.now)
    }

    /// Size of a control packet, bits (Table 2: 64).
    pub fn control_bits(&self) -> u32 {
        self.control_bits
    }

    /// Transmit duration of a `bits`-bit frame on this modem.
    pub fn tx_duration(&self, bits: u32) -> SimDuration {
        self.spec.tx_duration(bits)
    }

    /// The control-packet transmit duration ω.
    pub fn omega(&self) -> SimDuration {
        self.spec.tx_duration(self.control_bits)
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a frame for transmission starting now.
    pub fn send_frame_now(&mut self, frame: Frame) {
        let at = self.now;
        self.commands.push(MacCommand::SendFrame { frame, at });
    }

    /// Queues a frame for transmission starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_frame_at(&mut self, frame: Frame, at: SimTime) {
        assert!(at >= self.now, "cannot transmit in the past");
        self.commands.push(MacCommand::SendFrame { frame, at });
    }

    /// Arms a timer at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer_at(&mut self, at: SimTime, token: TimerToken) {
        assert!(at >= self.now, "cannot arm a timer in the past");
        self.commands.push(MacCommand::SetTimer { at, token });
    }

    /// Arms a timer `delay` from now.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: TimerToken) {
        let at = self.now + delay;
        self.commands.push(MacCommand::SetTimer { at, token });
    }

    /// Cancels a timer.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.commands.push(MacCommand::CancelTimer { token });
    }

    /// Charges maintenance bits (overhead and energy accounting).
    pub fn charge_maintenance(&mut self, bits: u64) {
        self.commands.push(MacCommand::ChargeMaintenance { bits });
    }

    /// Reports a terminally dropped SDU whose last failure was in the
    /// data/ack phase (the common retry-exhaustion case).
    pub fn report_drop(&mut self, id: u64) {
        self.report_drop_with(id, DropReason::RetryExhausted);
    }

    /// Reports a terminally dropped SDU with an explicit causal reason.
    pub fn report_drop_with(&mut self, id: u64, reason: DropReason) {
        self.commands.push(MacCommand::SduDropped { id, reason });
    }
}

/// A MAC protocol instance bound to one node.
///
/// All methods receive a [`MacContext`]; implementations must be
/// deterministic given the context's RNG stream.
pub trait MacProtocol: fmt::Debug {
    /// Short protocol name for reports ("EW-MAC", "S-FAMA", …).
    fn name(&self) -> &'static str;

    /// The protocol's neighbour-maintenance cost profile (§5.3 accounting).
    fn maintenance(&self) -> MaintenanceProfile;

    /// Called once before the first event.
    fn on_start(&mut self, _ctx: &mut MacContext<'_>) {}

    /// Oracle initialisation standing in for the Hello phase (§4.3): the
    /// true one-hop propagation delays at deployment time. Protocols with
    /// [`NeighborInfoScope::None`] may ignore it.
    fn install_neighbors(&mut self, _neighbors: &[(NodeId, SimDuration)]) {}

    /// Two-hop oracle initialisation (ROPA/CS-MAC): for each one-hop
    /// neighbour, that neighbour's own delay list.
    fn install_two_hop(&mut self, _tables: &[(NodeId, Vec<(NodeId, SimDuration)>)]) {}

    /// Announces the worst-case timing-error bound of this run (clock error
    /// at both endpoints plus delay-measurement noise). Called once before
    /// the first event when the configured clock model is non-ideal, never
    /// under ideal clocks. Protocols whose safety arguments assume exact
    /// timing (EW-MAC's extra windows) shrink their windows by this bound;
    /// the default ignores it.
    fn install_clock_error(&mut self, _bound: SimDuration) {}

    /// A new slot begins (synchronized network — every node sees the same
    /// boundary).
    fn on_slot_start(&mut self, ctx: &mut MacContext<'_>, slot: SlotIndex);

    /// The traffic layer hands the MAC one SDU for `sdu.next_hop`.
    fn on_enqueue(&mut self, ctx: &mut MacContext<'_>, sdu: Sdu);

    /// A frame was successfully decoded (addressed to this node **or**
    /// overheard).
    fn on_frame_received(&mut self, ctx: &mut MacContext<'_>, rx: &Reception<'_>);

    /// This node finished transmitting `frame`.
    fn on_frame_sent(&mut self, _ctx: &mut MacContext<'_>, _frame: &Frame) {}

    /// A timer armed via the context fired.
    fn on_timer(&mut self, _ctx: &mut MacContext<'_>, _token: TimerToken) {}

    /// SDUs accepted but not yet acknowledged-delivered (diagnostics and
    /// batch-mode progress).
    fn queue_len(&self) -> usize;

    /// A short static label for the protocol's current control state
    /// ("idle", "contending", …), consumed by the time-series sampler.
    /// The default suits stateless MACs.
    fn state_label(&self) -> &'static str {
        "-"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn clock() -> SlotClock {
        SlotClock::new(SimDuration::from_micros(5_333), SimDuration::from_secs(1))
    }

    fn with_ctx<F: FnOnce(&mut MacContext<'_>)>(now: SimTime, f: F) -> Vec<MacCommand> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut commands = Vec::new();
        let mut ctx = MacContext::new(
            now,
            NodeId::new(4),
            clock(),
            ModemSpec::new(12_000.0),
            64,
            &mut rng,
            &mut commands,
        );
        f(&mut ctx);
        commands
    }

    #[test]
    fn context_exposes_clock_and_spec() {
        with_ctx(SimTime::from_secs(3), |ctx| {
            assert_eq!(ctx.node_id(), NodeId::new(4));
            assert_eq!(ctx.current_slot(), 2); // slot len 1.005333 s
            assert_eq!(ctx.omega().as_micros(), 5_333);
            assert_eq!(ctx.tx_duration(2_048).as_micros(), 170_667);
            assert_eq!(ctx.control_bits(), 64);
        });
    }

    #[test]
    fn send_commands_are_queued_in_order() {
        let now = SimTime::from_secs(1);
        let f1 = Frame::control(
            crate::packet::FrameKind::Rts,
            NodeId::new(4),
            NodeId::new(5),
            64,
        );
        let f2 = f1.clone();
        let cmds = with_ctx(now, |ctx| {
            ctx.send_frame_now(f1.clone());
            ctx.send_frame_at(f2.clone(), now + SimDuration::from_secs(1));
        });
        assert_eq!(cmds.len(), 2);
        assert!(matches!(&cmds[0], MacCommand::SendFrame { at, .. } if *at == now));
        assert!(
            matches!(&cmds[1], MacCommand::SendFrame { at, .. } if *at == now + SimDuration::from_secs(1))
        );
    }

    #[test]
    fn timer_commands() {
        let now = SimTime::from_secs(2);
        let cmds = with_ctx(now, |ctx| {
            ctx.set_timer_after(SimDuration::from_millis(500), TimerToken(7));
            ctx.cancel_timer(TimerToken(7));
            ctx.charge_maintenance(96);
        });
        assert_eq!(
            cmds,
            vec![
                MacCommand::SetTimer {
                    at: now + SimDuration::from_millis(500),
                    token: TimerToken(7)
                },
                MacCommand::CancelTimer {
                    token: TimerToken(7)
                },
                MacCommand::ChargeMaintenance { bits: 96 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn sending_in_the_past_panics() {
        let now = SimTime::from_secs(5);
        let f = Frame::control(
            crate::packet::FrameKind::Rts,
            NodeId::new(0),
            NodeId::new(1),
            64,
        );
        with_ctx(now, |ctx| {
            ctx.send_frame_at(f.clone(), SimTime::from_secs(4));
        });
    }

    #[test]
    fn reception_addressing() {
        let f = Frame::control(
            crate::packet::FrameKind::Cts,
            NodeId::new(1),
            NodeId::new(2),
            64,
        );
        let rx = Reception {
            frame: &f,
            arrival_start: SimTime::from_secs(1),
            prop_delay: SimDuration::from_millis(400),
        };
        assert!(rx.addressed_to(NodeId::new(2)));
        assert!(!rx.addressed_to(NodeId::new(3)));
    }

    #[test]
    fn maintenance_profile_none_is_free() {
        let p = MaintenanceProfile::none();
        assert_eq!(p.scope, NeighborInfoScope::None);
        assert_eq!(p.piggyback_bits, 0);
        assert_eq!(p.periodic_refresh, None);
        assert_eq!(p.listen_mw_per_neighbor, 0.0);
    }
}
