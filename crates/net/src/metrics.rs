//! Measurement: the quantities the paper's figures plot.
//!
//! Per-node counters are maintained by the simulator; [`MetricsReport`]
//! aggregates them at the end of a run into exactly the paper's axes:
//! throughput (Eq 2–3, kbps), average power (mW, §5.2), the overhead value
//! (§5.3: transmission + maintenance + retransmission cost), execution time
//! (Fig 8), and the ingredients of the efficiency index (Eq 4 — the
//! harness normalises against S-FAMA).

use std::collections::{HashMap, HashSet};
use std::fmt;

use uasn_sim::hist::LogHistogram;
use uasn_sim::stats::{Accumulator, Histogram, TimeWeighted};
use uasn_sim::time::{SimDuration, SimTime};

/// The causal verdict for one lost SDU (or the frame carrying it),
/// attributed online at the site of the loss — the loss-diagnosis axis
/// (collision vs channel vs queue) the UASN survey frames as the key
/// observable for protocol comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropVerdict {
    /// The MAC queue was full when the SDU arrived.
    QueueOverflow,
    /// The MAC exhausted its retry budget for the SDU.
    MacDrop,
    /// The frame was discarded because the modem was mid-transmission.
    ModemBusy,
    /// The channel's packet-error model destroyed the frame in flight.
    PerLoss,
    /// A handshake (RTS/CTS negotiation) timed out terminally.
    HandshakeTimeout,
    /// No audible next hop existed: the SDU could not be routed at all.
    NoAudibleReceiver,
    /// A relayed SDU exceeded the routing hop-count TTL and was discarded
    /// instead of being forwarded again.
    TtlExhausted,
    /// The end-to-end transport at the origin spent its whole retry
    /// budget without seeing a sink ack.
    RetryBudgetExhausted,
}

impl DropVerdict {
    /// Every verdict, in histogram order.
    pub const ALL: [DropVerdict; 8] = [
        DropVerdict::QueueOverflow,
        DropVerdict::MacDrop,
        DropVerdict::ModemBusy,
        DropVerdict::PerLoss,
        DropVerdict::HandshakeTimeout,
        DropVerdict::NoAudibleReceiver,
        DropVerdict::TtlExhausted,
        DropVerdict::RetryBudgetExhausted,
    ];

    /// The verdict's stable label used in traces, JSON, and reports;
    /// [`DropVerdict::from_label`] inverts it.
    pub fn as_str(self) -> &'static str {
        match self {
            DropVerdict::QueueOverflow => "queue-overflow",
            DropVerdict::MacDrop => "mac-drop",
            DropVerdict::ModemBusy => "modem-busy",
            DropVerdict::PerLoss => "per-loss",
            DropVerdict::HandshakeTimeout => "handshake-timeout",
            DropVerdict::NoAudibleReceiver => "no-audible-receiver",
            DropVerdict::TtlExhausted => "ttl-exhausted",
            DropVerdict::RetryBudgetExhausted => "retry-exhausted",
        }
    }

    /// Parses a label produced by [`DropVerdict::as_str`].
    pub fn from_label(label: &str) -> Option<DropVerdict> {
        DropVerdict::ALL.into_iter().find(|v| v.as_str() == label)
    }
}

impl fmt::Display for DropVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A mergeable per-verdict loss histogram: eight fixed counters, so
/// recording is a single array increment and folding sweep cells is
/// element-wise addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictHistogram {
    counts: [u64; 8],
}

impl VerdictHistogram {
    /// An empty histogram.
    pub fn new() -> VerdictHistogram {
        VerdictHistogram::default()
    }

    /// Counts one loss under `verdict`.
    pub fn record(&mut self, verdict: DropVerdict) {
        self.counts[verdict as usize] += 1;
    }

    /// Adds `count` occurrences of `verdict` (journal reconstruction).
    pub fn add(&mut self, verdict: DropVerdict, count: u64) {
        self.counts[verdict as usize] += count;
    }

    /// Losses attributed to `verdict`.
    pub fn count(&self, verdict: DropVerdict) -> u64 {
        self.counts[verdict as usize]
    }

    /// Total losses across all verdicts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether any loss was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Folds another histogram in (element-wise addition).
    pub fn merge(&mut self, other: &VerdictHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
    }

    /// (verdict, count) pairs in [`DropVerdict::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (DropVerdict, u64)> + '_ {
        DropVerdict::ALL
            .into_iter()
            .zip(self.counts.iter().copied())
    }
}

/// Per-node running counters, updated by the simulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeCounters {
    /// Data bits successfully received and addressed to this node (Eq 2).
    pub data_bits_received: u64,
    /// Data bits delivered anywhere in the network that *originated* at
    /// this node — the per-source allocation behind the fairness index.
    pub origin_bits_delivered: u64,
    /// Of which, bits that arrived via EW-MAC extra communications.
    pub extra_bits_received: u64,
    /// SDUs received (addressed data frames decoded).
    pub sdus_received: u64,
    /// Data bits transmitted.
    pub data_bits_sent: u64,
    /// Data frames transmitted.
    pub data_frames_sent: u64,
    /// Control bits transmitted (all non-data kinds).
    pub control_bits_sent: u64,
    /// Control frames transmitted.
    pub control_frames_sent: u64,
    /// Neighbour-maintenance bits charged (piggyback + refresh + init).
    pub maintenance_bits: u64,
    /// Bits of data frames flagged as retransmissions.
    pub retx_bits: u64,
    /// Retransmitted data frames.
    pub retx_frames: u64,
    /// SDUs generated by the traffic source at this node.
    pub sdus_generated: u64,
    /// SDUs that could not be routed (no shallower neighbour in range).
    pub unroutable: u64,
    /// Relayed SDUs discarded at this node because their hop count hit
    /// the routing TTL.
    pub ttl_dropped: u64,
    /// SDUs this node originated whose end-to-end retry budget ran out.
    pub retry_dropped: u64,
    /// SDUs the MAC gave up on (retry budget exhausted).
    pub sdus_dropped: u64,
    /// Frames dropped because the modem was busy at their transmit time.
    pub tx_dropped: u64,
    /// Receptions corrupted by overlap at this node (from the modem ledger).
    pub collisions: u64,
    /// Receptions corrupted by this node's own transmissions.
    pub half_duplex_losses: u64,
}

impl NodeCounters {
    /// Total overhead bits in the paper's §5.3 sense: control traffic plus
    /// neighbour maintenance plus retransmitted payload.
    pub fn overhead_bits(&self) -> u64 {
        self.control_bits_sent + self.maintenance_bits + self.retx_bits
    }
}

/// Whole-run aggregate handed to the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Protocol under test.
    pub protocol: &'static str,
    /// Nodes in the network (sensors + sinks).
    pub nodes: usize,
    /// Observation window (Eq 3's `T`).
    pub duration: SimDuration,
    /// Eq 3: Σ data bits received / T, in kbps.
    pub throughput_kbps: f64,
    /// Data bits received network-wide.
    pub data_bits_received: u64,
    /// Bits received through extra communications only.
    pub extra_bits_received: u64,
    /// SDUs received network-wide.
    pub sdus_received: u64,
    /// SDUs generated network-wide.
    pub sdus_generated: u64,
    /// Bits delivered to surface sinks (end-to-end goodput numerator).
    pub sink_bits_received: u64,
    /// Mean node power over the run, mW (Figure 9's axis).
    pub avg_power_mw: f64,
    /// Mean channel utilization: the fraction of the observation window a
    /// node's modem spends transmitting or receiving decodable signal —
    /// the paper's "bandwidth utilization" (title, abstract, §5).
    pub channel_utilization: f64,
    /// Total energy, joules.
    pub total_energy_j: f64,
    /// §5.3 overhead bits, network-wide.
    pub overhead_bits: u64,
    /// Total control bits sent.
    pub control_bits_sent: u64,
    /// Total maintenance bits charged.
    pub maintenance_bits: u64,
    /// Total retransmitted data bits.
    pub retx_bits: u64,
    /// Collisions observed across all modems.
    pub collisions: u64,
    /// Half-duplex losses across all modems.
    pub half_duplex_losses: u64,
    /// Frames dropped at busy modems.
    pub tx_dropped: u64,
    /// Unroutable SDUs.
    pub unroutable: u64,
    /// Relayed SDUs discarded at the routing TTL.
    pub ttl_dropped: u64,
    /// SDUs whose end-to-end transport retry budget was exhausted.
    pub retry_dropped: u64,
    /// SDUs terminally dropped by MACs (retry budgets exhausted).
    pub sdus_dropped: u64,
    /// Distinct SDUs that reached a surface sink (first arrivals only) —
    /// the end-to-end delivery numerator.
    pub e2e_delivered: u64,
    /// Mean MAC delivery latency (SDU creation → reception), seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile MAC delivery latency, seconds (bin-midpoint
    /// estimate; `None` when nothing was delivered).
    pub latency_p95_s: Option<f64>,
    /// Time-average number of simultaneously active transmissions — the
    /// conclusions' "parallel transmissions with limited bandwidth".
    pub mean_concurrent_tx: f64,
    /// Jain's fairness index over per-origin delivered bits (sensors that
    /// generated traffic only) — §3.1's rp mechanism exists "to balance
    /// fairness".
    pub fairness_index: f64,
    /// Batch mode: when the last batch SDU reached a sink (Figure 8's
    /// execution time); `None` when not in batch mode or not completed.
    pub completion_time: Option<SimTime>,
    /// Per-hop MAC delivery latency (SDU creation → first reception) in
    /// microseconds — the log-bucketed companion to
    /// [`mean_latency_s`](Self::mean_latency_s) with exact percentile math.
    pub delivery_latency_us: LogHistogram,
    /// End-to-end latency (SDU generation → first sink arrival) in
    /// microseconds.
    pub e2e_latency_us: LogHistogram,
    /// Hops travelled by each SDU that reached a sink (first arrivals
    /// only; 1 = direct source→sink delivery).
    pub path_hops: LogHistogram,
}

impl MetricsReport {
    /// Eq 4 numerator/denominator: throughput per milliwatt. The harness
    /// divides by S-FAMA's value to get the plotted efficiency index.
    pub fn efficiency_raw(&self) -> f64 {
        if self.avg_power_mw <= 0.0 {
            0.0
        } else {
            self.throughput_kbps / self.avg_power_mw
        }
    }

    /// §5.2's comparison basis: energy spent per kilobit of information
    /// successfully moved ("power consumption … when they transmit varied
    /// amounts of information"). Joules per kbit; 0 when nothing was
    /// delivered.
    pub fn energy_per_kbit_j(&self) -> f64 {
        if self.data_bits_received == 0 {
            0.0
        } else {
            self.total_energy_j / (self.data_bits_received as f64 / 1_000.0)
        }
    }

    /// Delivery ratio: received / generated SDUs (per-hop MAC deliveries can
    /// exceed generation under forwarding, so this can exceed 1).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sdus_generated == 0 {
            0.0
        } else {
            self.sdus_received as f64 / self.sdus_generated as f64
        }
    }

    /// End-to-end delivery ratio: distinct SDUs that reached a sink over
    /// SDUs generated. Unlike [`MetricsReport::delivery_ratio`] this
    /// never exceeds 1 — duplicates and intermediate hops don't count.
    pub fn e2e_delivery_ratio(&self) -> f64 {
        if self.sdus_generated == 0 {
            0.0
        } else {
            self.e2e_delivered as f64 / self.sdus_generated as f64
        }
    }

    /// Sink-goodput throughput: bits landed on sinks over the window,
    /// kbps — the multi-hop companion to
    /// [`MetricsReport::throughput_kbps`].
    pub fn sink_throughput_kbps(&self) -> f64 {
        uasn_sim::stats::kbps(self.sink_bits_received, self.duration)
    }
}

/// Run-wide mutable **delivery** measurement state owned by the simulator:
/// the paper's protocol-behaviour axes (latency, throughput, energy,
/// batch completion). Not to be confused with the *performance*
/// observability surface — [`uasn_sim::profile::MetricsRegistry`] — which
/// measures simulator cost (wall time per event kind, cache efficiency),
/// never protocol behaviour.
#[derive(Debug)]
pub struct DeliveryMetrics {
    /// Per-node counters (indexed by node id).
    pub per_node: Vec<NodeCounters>,
    /// Latency accumulator (seconds).
    pub latency: Accumulator,
    /// Latency distribution, 1-second bins over [0, 300) s.
    pub latency_hist: Histogram,
    /// Number of simultaneously active transmissions, integrated over time
    /// (the conclusions' "parallel transmissions" — spatial reuse).
    pub concurrency: TimeWeighted,
    /// Live transmission count backing [`DeliveryMetrics::concurrency`].
    pub active_transmissions: u32,
    /// Bits landed on sink nodes.
    pub sink_bits: u64,
    /// Per-hop MAC delivery latencies, microseconds.
    pub delivery_hist: LogHistogram,
    /// End-to-end (generation → sink) latencies, microseconds.
    pub e2e_hist: LogHistogram,
    /// Hops travelled per sink-delivered SDU (routed runs only; empty
    /// otherwise).
    pub path_hops: LogHistogram,
    /// Generation time per SDU id, consumed on first sink arrival.
    origin_time: HashMap<u64, SimTime>,
    /// Batch tracking: SDU ids generated but not yet MAC-delivered.
    pub batch_outstanding: HashSet<u64>,
    /// Batch arrivals still to be injected by the traffic process.
    pub batch_expected: u32,
    /// Whether batch tracking is active.
    pub batch_mode: bool,
    /// When the batch drained.
    pub completion_time: Option<SimTime>,
}

impl Default for DeliveryMetrics {
    fn default() -> Self {
        DeliveryMetrics {
            per_node: Vec::new(),
            latency: Accumulator::new(),
            latency_hist: Histogram::new(0.0, 300.0, 300),
            concurrency: TimeWeighted::new(SimTime::ZERO, 0.0),
            active_transmissions: 0,
            sink_bits: 0,
            delivery_hist: LogHistogram::new(),
            e2e_hist: LogHistogram::new(),
            path_hops: LogHistogram::new(),
            origin_time: HashMap::new(),
            batch_outstanding: HashSet::new(),
            batch_expected: 0,
            batch_mode: false,
            completion_time: None,
        }
    }
}

impl DeliveryMetrics {
    /// Creates metrics for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        DeliveryMetrics {
            per_node: vec![NodeCounters::default(); nodes],
            ..DeliveryMetrics::default()
        }
    }

    /// Records one delivery latency in seconds.
    pub fn record_latency(&mut self, secs: f64) {
        self.latency.add(secs);
        self.latency_hist.add(secs);
    }

    /// Records one per-hop MAC delivery latency (SDU creation → first
    /// reception), feeding both the float accumulators and the exact
    /// log-bucketed histogram.
    pub fn record_delivery_latency(&mut self, latency: SimDuration) {
        self.record_latency(latency.as_secs_f64());
        self.delivery_hist.record(latency.as_micros());
    }

    /// Remembers when the traffic source generated `sdu_id`, anchoring the
    /// end-to-end latency measured at the sink. Forwarding hops must not
    /// call this — the anchor is the original generation time.
    pub fn record_sdu_generated(&mut self, now: SimTime, sdu_id: u64) {
        self.origin_time.entry(sdu_id).or_insert(now);
    }

    /// A transmission started at `now`.
    pub fn transmission_started(&mut self, now: SimTime) {
        self.active_transmissions += 1;
        self.concurrency.set(now, self.active_transmissions as f64);
    }

    /// A transmission ended at `now`.
    pub fn transmission_ended(&mut self, now: SimTime) {
        self.active_transmissions = self.active_transmissions.saturating_sub(1);
        self.concurrency.set(now, self.active_transmissions as f64);
    }

    /// Declares how many batch arrivals the traffic process will inject.
    pub fn expect_batch(&mut self, total: u32) {
        self.batch_mode = true;
        self.batch_expected = total;
    }

    /// Registers a batch SDU id to await (counts down the expected
    /// arrivals; pass `None` for an arrival that could not be routed).
    pub fn register_batch_sdu(&mut self, id: Option<u64>) {
        self.batch_mode = true;
        self.batch_expected = self.batch_expected.saturating_sub(1);
        if let Some(id) = id {
            self.batch_outstanding.insert(id);
        }
    }

    /// Records an SDU landing on a sink: end-to-end goodput accounting plus
    /// the generation→sink latency for this SDU's first arrival (duplicates
    /// from rebroadcast paths don't re-measure). Returns the measured
    /// end-to-end latency when this was the first arrival.
    pub fn record_sink_arrival(
        &mut self,
        now: SimTime,
        sdu_id: u64,
        bits: u32,
    ) -> Option<SimDuration> {
        self.sink_bits += bits as u64;
        let generated = self.origin_time.remove(&sdu_id)?;
        let e2e = now.duration_since(generated);
        self.e2e_hist.record(e2e.as_micros());
        Some(e2e)
    }

    /// Records a terminal MAC drop: the SDU will never be delivered, so a
    /// pending batch must not wait for it.
    pub fn record_mac_drop(&mut self, now: SimTime, sdu_id: u64) {
        // Identical bookkeeping: the id stops being outstanding.
        self.record_mac_delivery(now, sdu_id);
    }

    /// Records the first successful MAC delivery of an SDU anywhere in the
    /// network. Figure 8's "execution time" is when the last batch SDU has
    /// completed its transmission — the batch drains on first-hop MAC
    /// delivery, not on reaching a sink.
    pub fn record_mac_delivery(&mut self, now: SimTime, sdu_id: u64) {
        if self.batch_mode
            && self.batch_outstanding.remove(&sdu_id)
            && self.batch_expected == 0
            && self.batch_outstanding.is_empty()
        {
            self.completion_time.get_or_insert(now);
        }
    }

    /// Whether every batch SDU has been injected and MAC-delivered.
    pub fn batch_complete(&self) -> bool {
        self.batch_mode && self.batch_expected == 0 && self.batch_outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_integrates_overlapping_transmissions() {
        let mut m = DeliveryMetrics::new(1);
        m.transmission_started(SimTime::ZERO);
        m.transmission_started(SimTime::from_secs(5)); // two in flight
        m.transmission_ended(SimTime::from_secs(10));
        m.transmission_ended(SimTime::from_secs(10));
        // 5 s at 1 + 5 s at 2 = 15 unit-seconds over 20 s = 0.75.
        let avg = m.concurrency.average(SimTime::from_secs(20));
        assert!((avg - 0.75).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn batch_waits_for_all_arrivals() {
        // Delivering the first SDU before the second is even injected must
        // not complete the batch.
        let mut m = DeliveryMetrics::new(1);
        m.expect_batch(2);
        m.register_batch_sdu(Some(1));
        m.record_mac_delivery(SimTime::from_secs(3), 1);
        assert!(!m.batch_complete(), "one arrival still expected");
        m.register_batch_sdu(Some(2));
        m.record_mac_delivery(SimTime::from_secs(8), 2);
        assert!(m.batch_complete());
        assert_eq!(m.completion_time, Some(SimTime::from_secs(8)));
    }

    #[test]
    fn unroutable_batch_arrival_counts_down() {
        let mut m = DeliveryMetrics::new(1);
        m.expect_batch(2);
        m.register_batch_sdu(Some(1));
        m.register_batch_sdu(None); // generated but unroutable
        m.record_mac_delivery(SimTime::from_secs(4), 1);
        assert!(m.batch_complete());
    }
    use uasn_sim::stats::kbps;

    #[test]
    fn overhead_bits_sums_components() {
        let c = NodeCounters {
            control_bits_sent: 100,
            maintenance_bits: 50,
            retx_bits: 25,
            ..NodeCounters::default()
        };
        assert_eq!(c.overhead_bits(), 175);
    }

    #[test]
    fn batch_completion_tracks_last_sdu() {
        let mut m = DeliveryMetrics::new(3);
        m.expect_batch(2);
        m.register_batch_sdu(Some(1));
        m.register_batch_sdu(Some(2));
        assert!(!m.batch_complete());
        m.record_mac_delivery(SimTime::from_secs(10), 1);
        assert!(!m.batch_complete());
        assert_eq!(m.completion_time, None);
        m.record_mac_delivery(SimTime::from_secs(20), 2);
        assert!(m.batch_complete());
        assert_eq!(m.completion_time, Some(SimTime::from_secs(20)));
        m.record_sink_arrival(SimTime::from_secs(21), 1, 2_048);
        assert_eq!(m.sink_bits, 2_048);
    }

    #[test]
    fn sink_arrival_measures_end_to_end_latency_once() {
        let mut m = DeliveryMetrics::new(2);
        m.record_sdu_generated(SimTime::from_secs(2), 7);
        // The anchor is the generation time — later re-registration (e.g. a
        // forwarding hop misusing the API) must not move it.
        m.record_sdu_generated(SimTime::from_secs(5), 7);
        let e2e = m.record_sink_arrival(SimTime::from_secs(12), 7, 1_024);
        assert_eq!(e2e, Some(SimDuration::from_secs(10)));
        assert_eq!(m.e2e_hist.count(), 1);
        assert_eq!(m.e2e_hist.max(), Some(10_000_000));
        // A duplicate arrival still counts bits but not latency.
        assert_eq!(
            m.record_sink_arrival(SimTime::from_secs(13), 7, 1_024),
            None
        );
        assert_eq!(m.sink_bits, 2_048);
        assert_eq!(m.e2e_hist.count(), 1);
        // An SDU never registered (unknown id) measures nothing.
        assert_eq!(m.record_sink_arrival(SimTime::from_secs(14), 99, 8), None);
    }

    #[test]
    fn delivery_latency_feeds_both_representations() {
        let mut m = DeliveryMetrics::new(1);
        m.record_delivery_latency(SimDuration::from_millis(2_500));
        assert_eq!(m.latency.count(), 1);
        assert_eq!(m.delivery_hist.count(), 1);
        assert_eq!(m.delivery_hist.max(), Some(2_500_000));
        assert!((m.latency.mean() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn duplicate_delivery_does_not_complete_twice() {
        let mut m = DeliveryMetrics::new(1);
        m.expect_batch(1);
        m.register_batch_sdu(Some(1));
        m.record_mac_delivery(SimTime::from_secs(5), 1);
        m.record_mac_delivery(SimTime::from_secs(9), 1);
        assert_eq!(m.completion_time, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn non_batch_mode_never_completes() {
        let mut m = DeliveryMetrics::new(1);
        m.record_mac_delivery(SimTime::from_secs(5), 77);
        assert!(!m.batch_complete());
        assert_eq!(m.completion_time, None);
    }

    #[test]
    fn efficiency_and_delivery_ratio() {
        let r = MetricsReport {
            protocol: "X",
            nodes: 10,
            duration: SimDuration::from_secs(300),
            throughput_kbps: 0.3,
            data_bits_received: 90_000,
            extra_bits_received: 0,
            sdus_received: 44,
            sdus_generated: 50,
            sink_bits_received: 0,
            avg_power_mw: 150.0,
            channel_utilization: 0.2,
            total_energy_j: 45.0,
            overhead_bits: 10_000,
            control_bits_sent: 8_000,
            maintenance_bits: 1_000,
            retx_bits: 1_000,
            collisions: 3,
            half_duplex_losses: 0,
            tx_dropped: 0,
            unroutable: 0,
            ttl_dropped: 0,
            retry_dropped: 0,
            sdus_dropped: 0,
            e2e_delivered: 40,
            mean_latency_s: 4.5,
            latency_p95_s: Some(9.5),
            mean_concurrent_tx: 0.4,
            fairness_index: 0.9,
            completion_time: None,
            delivery_latency_us: LogHistogram::new(),
            e2e_latency_us: LogHistogram::new(),
            path_hops: LogHistogram::new(),
        };
        assert!((r.efficiency_raw() - 0.002).abs() < 1e-12);
        assert!((r.delivery_ratio() - 0.88).abs() < 1e-12);
        assert!((r.e2e_delivery_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_power_efficiency_is_zero() {
        let mut m = DeliveryMetrics::new(1);
        m.per_node[0].data_bits_received = 10;
        // Build a degenerate report by hand:
        let r = MetricsReport {
            protocol: "X",
            nodes: 1,
            duration: SimDuration::from_secs(1),
            throughput_kbps: 1.0,
            data_bits_received: 10,
            extra_bits_received: 0,
            sdus_received: 1,
            sdus_generated: 1,
            sink_bits_received: 0,
            avg_power_mw: 0.0,
            channel_utilization: 0.0,
            total_energy_j: 0.0,
            overhead_bits: 0,
            control_bits_sent: 0,
            maintenance_bits: 0,
            retx_bits: 0,
            collisions: 0,
            half_duplex_losses: 0,
            tx_dropped: 0,
            unroutable: 0,
            ttl_dropped: 0,
            retry_dropped: 0,
            sdus_dropped: 0,
            e2e_delivered: 0,
            mean_latency_s: 0.0,
            latency_p95_s: None,
            mean_concurrent_tx: 0.0,
            fairness_index: 0.0,
            completion_time: None,
            delivery_latency_us: LogHistogram::new(),
            e2e_latency_us: LogHistogram::new(),
            path_hops: LogHistogram::new(),
        };
        assert_eq!(r.efficiency_raw(), 0.0);
    }

    #[test]
    fn throughput_unit_helper() {
        // 90 kbit over 300 s = 0.3 kbps — the scale of the paper's Fig 6.
        assert!((kbps(90_000, SimDuration::from_secs(300)) - 0.3).abs() < 1e-12);
    }
}
