//! Topology diagnostics.
//!
//! Static analyses of a deployment that explain *why* the protocols behave
//! as they do on it: hidden-terminal exposure (the collisions RTS/CTS
//! handshakes exist to prevent), the propagation-delay distribution (the
//! waiting resources EW-MAC harvests), and route depth (how many MAC hops
//! Eq 2–3 count per generated packet).

use uasn_phy::channel::AcousticChannel;
use uasn_sim::stats::Accumulator;
use uasn_sim::time::SimDuration;

use crate::node::{NodeId, NodeInfo};
use crate::routing::route_uphill;

/// Summary statistics of a deployment under a given channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyAnalysis {
    /// Total nodes.
    pub nodes: usize,
    /// Audible (directed) links.
    pub links: usize,
    /// Mean audible neighbours per node.
    pub mean_degree: f64,
    /// Hidden-terminal triples: ordered pairs `(a, b)` both audible to some
    /// receiver `r` but not to each other — the configurations where a
    /// plain carrier-sense MAC collides and a handshake MAC must negotiate.
    pub hidden_pairs: usize,
    /// Fraction of potentially interfering pairs that are hidden.
    pub hidden_ratio: f64,
    /// One-hop propagation delay distribution over audible links.
    pub delay_stats: Accumulator,
    /// Mean uphill route length (hops) from each sensor to its terminal
    /// node.
    pub mean_route_hops: f64,
    /// Delay distribution of the links depth routing actually uses
    /// (node → next hop). Under min-depth routing these stay near the
    /// communication range regardless of density — the contention growth
    /// (degree, hidden pairs), not hop shortening, is what squeezes the
    /// reuse protocols in dense networks.
    pub route_delay_stats: Accumulator,
}

/// Analyses `nodes` under `channel`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use uasn_net::analysis::analyze_topology;
/// use uasn_net::topology::Deployment;
/// use uasn_phy::channel::AcousticChannel;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let nodes = Deployment::paper_column()
///     .generate(&mut rng, 30, 2, 1_500.0)
///     .expect("generates");
/// let analysis = analyze_topology(&nodes, &AcousticChannel::paper_default());
/// assert_eq!(analysis.nodes, 32);
/// assert!(analysis.mean_degree > 1.0);
/// ```
pub fn analyze_topology(nodes: &[NodeInfo], channel: &AcousticChannel) -> TopologyAnalysis {
    let n = nodes.len();
    let audible = |i: usize, j: usize| -> bool {
        i != j && channel.is_audible(nodes[i].position, nodes[j].position)
    };

    let mut links = 0;
    let mut delay_stats = Accumulator::new();
    for i in 0..n {
        for j in 0..n {
            if audible(i, j) {
                links += 1;
                let tau: SimDuration =
                    channel.propagation_delay(nodes[i].position, nodes[j].position);
                delay_stats.add(tau.as_secs_f64());
            }
        }
    }

    // Hidden pairs: unordered {a, b}, not audible to each other, sharing at
    // least one common audible receiver.
    let mut hidden = 0;
    let mut share_receiver_pairs = 0;
    for a in 0..n {
        for b in (a + 1)..n {
            let share = (0..n).any(|r| r != a && r != b && audible(a, r) && audible(b, r));
            if share {
                share_receiver_pairs += 1;
                if !audible(a, b) {
                    hidden += 1;
                }
            }
        }
    }

    let positions: Vec<_> = nodes.iter().map(|nd| nd.position).collect();
    let mut route_hops = Accumulator::new();
    let mut route_delay_stats = Accumulator::new();
    for (idx, node) in nodes.iter().enumerate() {
        if !node.is_sink() {
            let route = route_uphill(&positions, NodeId::new(idx as u32), channel.max_range_m());
            route_hops.add((route.len() - 1) as f64);
            for hop in route.windows(2) {
                let tau =
                    channel.propagation_delay(positions[hop[0].index()], positions[hop[1].index()]);
                route_delay_stats.add(tau.as_secs_f64());
            }
        }
    }

    TopologyAnalysis {
        nodes: n,
        links,
        mean_degree: if n == 0 { 0.0 } else { links as f64 / n as f64 },
        hidden_pairs: hidden,
        hidden_ratio: if share_receiver_pairs == 0 {
            0.0
        } else {
            hidden as f64 / share_receiver_pairs as f64
        },
        delay_stats,
        mean_route_hops: route_hops.mean(),
        route_delay_stats,
    }
}

/// Upper bound on the waiting resource a single negotiated exchange leaves
/// idle at a neighbouring loser, per the paper's Fig 2 geometry: the gap
/// between the overheard control packet and the negotiated data reaching
/// the receiver, `|ts| + τ(pair) − τ(loser, peer) − ω`, clamped at zero.
///
/// This is exactly the window `exr_send_time` admits requests into; summed
/// over a topology it estimates how much extra capacity EW-MAC could ever
/// harvest.
pub fn exploitable_window(
    slot_len: SimDuration,
    omega: SimDuration,
    pair_delay: SimDuration,
    loser_delay: SimDuration,
) -> SimDuration {
    let close = slot_len + pair_delay;
    let open = loser_delay + omega;
    if close > open {
        close - open
    } else {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Deployment;
    use rand::SeedableRng;

    fn analysis(sensors: u32, seed: u64) -> TopologyAnalysis {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nodes = Deployment::paper_column()
            .generate(&mut rng, sensors, 3, 1_500.0)
            .expect("generates");
        analyze_topology(&nodes, &AcousticChannel::paper_default())
    }

    #[test]
    fn paper_column_has_hidden_terminals() {
        let a = analysis(60, 1);
        assert!(
            a.hidden_pairs > 0,
            "a 6 km column must hide deep from shallow nodes"
        );
        assert!(a.hidden_ratio > 0.0 && a.hidden_ratio < 1.0);
    }

    #[test]
    fn link_delays_respect_tau_max() {
        let a = analysis(60, 2);
        assert!(a.delay_stats.max().expect("links exist") <= 1.0 + 1e-9);
        assert!(a.delay_stats.min().expect("links exist") > 0.0);
        assert!(
            a.delay_stats.mean() > 0.1,
            "column links are not trivially short"
        );
    }

    #[test]
    fn degree_grows_with_node_count() {
        assert!(analysis(120, 3).mean_degree > analysis(40, 3).mean_degree);
    }

    #[test]
    fn routes_span_multiple_hops() {
        let a = analysis(60, 4);
        assert!(
            a.mean_route_hops >= 2.0,
            "five layers should route in >= 2 hops, got {}",
            a.mean_route_hops
        );
    }

    #[test]
    fn links_are_symmetric_in_count() {
        // Range-cutoff audibility is symmetric, so directed links are even.
        let a = analysis(50, 5);
        assert_eq!(a.links % 2, 0);
    }

    #[test]
    fn exploitable_window_geometry() {
        let slot = SimDuration::from_micros(1_005_333);
        let omega = SimDuration::from_micros(5_333);
        // Far pair, near loser: a big window.
        let w1 = exploitable_window(
            slot,
            omega,
            SimDuration::from_millis(900),
            SimDuration::from_millis(200),
        );
        assert!(w1 > SimDuration::from_secs(1));
        // Near pair, far loser: smaller.
        let w2 = exploitable_window(
            slot,
            omega,
            SimDuration::from_millis(200),
            SimDuration::from_millis(900),
        );
        assert!(w2 < w1);
        // Degenerate: loser farther than slot + pair -> zero, not panic.
        let w3 = exploitable_window(
            SimDuration::from_millis(100),
            omega,
            SimDuration::ZERO,
            SimDuration::from_secs(2),
        );
        assert_eq!(w3, SimDuration::ZERO);
    }

    #[test]
    fn denser_networks_raise_contention_not_hop_delay() {
        // The Fig-7 mechanism, measured statically: packing more nodes into
        // the fixed volume multiplies the audible degree and the
        // hidden-terminal pairs (more overheard exchanges, more quiet, more
        // contention per receiver) while min-depth routing keeps hop delays
        // near the range limit.
        let at = |n: u32| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let nodes = Deployment::paper_column_for(n)
                .generate(&mut rng, n, 3, 1_500.0)
                .unwrap();
            analyze_topology(&nodes, &AcousticChannel::paper_default())
        };
        let sparse = at(60);
        let dense = at(200);
        assert!(dense.mean_degree > 2.0 * sparse.mean_degree);
        assert!(dense.hidden_pairs > 4 * sparse.hidden_pairs);
        // Route hop delays barely move (within 25%).
        let ratio = dense.route_delay_stats.mean() / sparse.route_delay_stats.mean();
        assert!(
            (0.75..1.25).contains(&ratio),
            "routing hop delay moved unexpectedly: {ratio}"
        );
    }
}
