//! # uasn-net — network substrate for the EW-MAC reproduction
//!
//! Sits between the physical layer (`uasn-phy`) and the MAC protocols
//! (`uasn-ewmac`, `uasn-baselines`):
//!
//! * [`node`], [`packet`] — identities, frames (Table 1 kinds), SDUs.
//! * [`slots`] — the synchronized `ω + τmax` slot clock and Eq 5 Ack-slot
//!   arithmetic.
//! * [`topology`] — Figure-1-style layered-column deployment (connectivity
//!   guaranteed) plus the Table-2-literal uniform box.
//! * [`traffic`] — Poisson offered load and Figure 8's batch mode.
//! * [`routing`] — greedy depth routing toward surface sinks.
//! * [`neighbor`] — one-hop (EW-MAC) and two-hop (ROPA/CS-MAC) delay tables.
//! * [`mac`] — the [`mac::MacProtocol`] trait, context, and
//!   maintenance-cost profiles.
//! * [`world`] — the event-driven network simulator
//!   ([`world::Simulation`]).
//! * [`metrics`] — the paper's measurement axes (Eq 2–4, §5.2–§5.3).
//! * [`sampling`] — the periodic time-series sampler behind
//!   [`config::SimConfig::sample_interval`].
//! * [`config`] — Table 2 as a validated builder.
//! * [`analysis`] — static topology diagnostics (hidden terminals, delay
//!   distributions, exploitable waiting windows).
//!
//! # Examples
//!
//! Build and run a network once a protocol crate supplies a factory:
//!
//! ```no_run
//! use uasn_net::config::SimConfig;
//! use uasn_net::world::Simulation;
//! # fn factory(_: uasn_net::node::NodeId) -> Box<dyn uasn_net::mac::MacProtocol> { unimplemented!() }
//!
//! let report = Simulation::new(SimConfig::paper_default(), &factory)
//!     .expect("valid configuration")
//!     .run();
//! println!("{:.3} kbps, {:.1} mW", report.throughput_kbps, report.avg_power_mw);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod error;
pub mod mac;
pub mod metrics;
pub mod neighbor;
pub mod node;
pub mod packet;
pub mod quiet;
pub mod routing;
pub mod sampling;
pub mod slots;
pub mod topology;
pub mod traffic;
pub mod world;

pub use config::SimConfig;
pub use error::BuildNetworkError;
pub use mac::{
    DropReason, MacContext, MacProtocol, MaintenanceProfile, NeighborInfoScope, Reception,
    TimerToken,
};
pub use metrics::{DeliveryMetrics, DropVerdict, MetricsReport, NodeCounters, VerdictHistogram};
pub use node::{NodeId, NodeInfo, NodeRole};
pub use packet::{Frame, FrameKind, Sdu};
pub use quiet::QuietSchedule;
pub use sampling::{NodeSample, Snapshot, TimeSeries};
pub use slots::{SlotClock, SlotIndex};
pub use world::{RunOutput, Simulation};
