//! Depth-based next-hop selection.
//!
//! The paper assumes routing is solved elsewhere ("sensors at greater
//! depths transmit packets to sensors closer to the surface"; localization
//! "has been dealt with by other protocols"). We implement the standard
//! greedy depth routing that realises that assumption: forward to the
//! audible neighbour with the smallest depth, i.e. the one closest to the
//! surface (ties broken by distance, then id for determinism).

use uasn_phy::soa::PositionSource;

use crate::node::NodeId;

/// Selects the next hop for `from` among `positions` (indexed by node id):
/// the strictly-shallower node within `comm_range_m` with minimum depth.
///
/// Returns `None` when the node is stranded (no shallower neighbour in
/// range) — the caller counts the packet as unroutable.
///
/// # Examples
///
/// ```
/// use uasn_net::node::NodeId;
/// use uasn_net::routing::next_hop_uphill;
/// use uasn_phy::geometry::Point;
///
/// let positions = vec![
///     Point::surface(0.0, 0.0),          // n0: sink
///     Point::new(0.0, 0.0, 1_200.0),     // n1
///     Point::new(0.0, 0.0, 2_400.0),     // n2
/// ];
/// assert_eq!(
///     next_hop_uphill(&positions, NodeId::new(2), 1_500.0),
///     Some(NodeId::new(1))
/// );
/// assert_eq!(
///     next_hop_uphill(&positions, NodeId::new(1), 1_500.0),
///     Some(NodeId::new(0))
/// );
/// assert_eq!(next_hop_uphill(&positions, NodeId::new(0), 1_500.0), None);
/// ```
pub fn next_hop_uphill<P: PositionSource + ?Sized>(
    positions: &P,
    from: NodeId,
    comm_range_m: f64,
) -> Option<NodeId> {
    let me = positions.position(from.index());
    let mut best: Option<(usize, f64, f64)> = None; // (idx, depth, dist)
    for idx in 0..positions.node_count() {
        let p = positions.position(idx);
        if idx == from.index() || p.depth() >= me.depth() {
            continue;
        }
        let dist = me.distance(p);
        if dist > comm_range_m {
            continue;
        }
        let candidate = (idx, p.depth(), dist);
        best = Some(match best {
            None => candidate,
            Some(cur) => {
                // min depth, then min distance, then min id
                if (candidate.1, candidate.2, candidate.0) < (cur.1, cur.2, cur.0) {
                    candidate
                } else {
                    cur
                }
            }
        });
    }
    best.map(|(idx, _, _)| NodeId::new(idx as u32))
}

/// The full uphill route from `from` to the first node with no shallower
/// neighbour (a sink if the topology is connected). Includes `from` itself.
///
/// The route is guaranteed to terminate because every hop strictly
/// decreases depth.
pub fn route_uphill<P: PositionSource + ?Sized>(
    positions: &P,
    from: NodeId,
    comm_range_m: f64,
) -> Vec<NodeId> {
    let mut route = vec![from];
    let mut cur = from;
    while let Some(next) = next_hop_uphill(positions, cur, comm_range_m) {
        route.push(next);
        cur = next;
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use uasn_phy::geometry::Point;

    fn column() -> Vec<Point> {
        vec![
            Point::surface(0.0, 0.0),        // n0 sink
            Point::new(100.0, 0.0, 1_100.0), // n1
            Point::new(0.0, 100.0, 2_200.0), // n2
            Point::new(50.0, 50.0, 3_300.0), // n3
        ]
    }

    #[test]
    fn picks_shallowest_in_range() {
        let p = column();
        assert_eq!(
            next_hop_uphill(&p, NodeId::new(3), 1_500.0),
            Some(NodeId::new(2))
        );
        assert_eq!(
            next_hop_uphill(&p, NodeId::new(2), 1_500.0),
            Some(NodeId::new(1))
        );
        assert_eq!(
            next_hop_uphill(&p, NodeId::new(1), 1_500.0),
            Some(NodeId::new(0))
        );
    }

    #[test]
    fn prefers_minimum_depth_over_proximity() {
        let p = vec![
            Point::new(0.0, 0.0, 100.0),    // n0 shallow but 1.4 km away
            Point::new(0.0, 0.0, 1_450.0),  // n1 nearby but deep
            Point::new(0.0, 10.0, 1_500.0), // n2: the sender
        ];
        assert_eq!(
            next_hop_uphill(&p, NodeId::new(2), 1_500.0),
            Some(NodeId::new(0))
        );
    }

    #[test]
    fn tie_on_depth_breaks_by_distance_then_id() {
        let p = vec![
            Point::new(0.0, 0.0, 500.0),       // n0, 1000 m away
            Point::new(600.0, 0.0, 500.0),     // n1, 781 m away -> wins
            Point::new(600.0, 800.0, 1_300.0), // n2: sender
        ];
        assert_eq!(
            next_hop_uphill(&p, NodeId::new(2), 1_500.0),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn stranded_node_has_no_next_hop() {
        let p = vec![
            Point::surface(0.0, 0.0),
            Point::new(0.0, 0.0, 5_000.0), // far below everything
        ];
        assert_eq!(next_hop_uphill(&p, NodeId::new(1), 1_500.0), None);
    }

    #[test]
    fn sink_has_no_next_hop() {
        let p = column();
        assert_eq!(next_hop_uphill(&p, NodeId::new(0), 1_500.0), None);
    }

    #[test]
    fn route_terminates_at_sink() {
        let p = column();
        let route = route_uphill(&p, NodeId::new(3), 1_500.0);
        assert_eq!(
            route,
            vec![
                NodeId::new(3),
                NodeId::new(2),
                NodeId::new(1),
                NodeId::new(0)
            ]
        );
    }

    #[test]
    fn route_from_sink_is_single_node() {
        let p = column();
        assert_eq!(
            route_uphill(&p, NodeId::new(0), 1_500.0),
            vec![NodeId::new(0)]
        );
    }

    #[test]
    fn equal_depth_nodes_do_not_route_to_each_other() {
        let p = vec![Point::new(0.0, 0.0, 500.0), Point::new(100.0, 0.0, 500.0)];
        assert_eq!(next_hop_uphill(&p, NodeId::new(0), 1_500.0), None);
        assert_eq!(next_hop_uphill(&p, NodeId::new(1), 1_500.0), None);
    }
}
